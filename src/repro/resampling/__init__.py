"""Resampling algorithms and policies.

The paper compares two algorithms for sampling-with-replacement from the
discrete weight distribution:

- **Roulette Wheel Selection (RWS)**: Theta(n) prefix-sum initialization,
  Theta(log n) binary-search generation per sample
  (:class:`~repro.resampling.rws.RouletteWheelResampler`).
- **Vose's alias method**: Theta(n) initialization, Theta(1) generation
  (:class:`~repro.resampling.vose.VoseAliasResampler`), including the
  parallel bulk/paired table construction the paper implements on GPUs (where
  "concurrency usually drops steeply towards one").

We additionally provide Murray's scan-free **Metropolis** resampler
(:class:`~repro.resampling.metropolis.MetropolisResampler`, approximate but
collective-free), plus multinomial, systematic, stratified and residual
resamplers (standard particle-filtering alternatives), effective-sample-size
computation, and the resample-when policies discussed in Section IV (always,
ESS threshold, random fixed frequency).
"""

from repro.resampling.base import Resampler, resample_counts
from repro.resampling.metropolis import MetropolisResampler
from repro.resampling.multinomial import MultinomialResampler
from repro.resampling.rws import RouletteWheelResampler, rws_indices, rws_indices_batch
from repro.resampling.vose import (
    VoseAliasResampler,
    alias_sample,
    build_alias_table,
    build_alias_table_parallel,
)
from repro.resampling.systematic import SystematicResampler, StratifiedResampler
from repro.resampling.residual import ResidualResampler
from repro.resampling.ess import (
    AlwaysResample,
    ESSThresholdPolicy,
    RandomFrequencyPolicy,
    effective_sample_size,
)

__all__ = [
    "Resampler",
    "resample_counts",
    "MetropolisResampler",
    "MultinomialResampler",
    "RouletteWheelResampler",
    "rws_indices",
    "rws_indices_batch",
    "VoseAliasResampler",
    "build_alias_table",
    "build_alias_table_parallel",
    "alias_sample",
    "SystematicResampler",
    "StratifiedResampler",
    "ResidualResampler",
    "effective_sample_size",
    "AlwaysResample",
    "ESSThresholdPolicy",
    "RandomFrequencyPolicy",
]
