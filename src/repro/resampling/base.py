"""Resampler interface shared by all algorithms."""

from __future__ import annotations

import abc

import numpy as np

from repro.prng.streams import FilterRNG
from repro.utils.validation import check_positive_int, check_probability_vector


class Resampler(abc.ABC):
    """Sampling-with-replacement from a discrete weight distribution.

    Implementations return *index* arrays; callers apply them to particle
    state (the paper's kernels likewise reorder state vectors after the
    surviving indices are known, preferring non-contiguous reads over
    non-contiguous writes).
    """

    name: str = "base"

    @abc.abstractmethod
    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        """Draw *n_out* indices i with probability proportional to weights[i].

        ``weights`` is 1-D and need not be normalized.
        """

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        """Row-wise resampling for a ``(n_filters, m)`` weight matrix.

        Returns ``(n_filters, n_out)`` indices into each row. The default
        implementation loops over rows; vectorized subclasses override it.
        """
        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        out = np.empty((weights.shape[0], n_out), dtype=np.int64)
        for f in range(weights.shape[0]):
            out[f] = self.resample(weights[f], n_out, rng)
        return out

    @staticmethod
    def _validate(weights: np.ndarray, n_out: int) -> np.ndarray:
        w = check_probability_vector(weights)
        check_positive_int(n_out, "n_out")
        return w


def resample_counts(indices: np.ndarray, n: int) -> np.ndarray:
    """Occurrence count of each ancestor index; useful for invariant checks."""
    return np.bincount(np.asarray(indices).reshape(-1), minlength=n)
