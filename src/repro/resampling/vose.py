"""Vose's alias method: Theta(n) init, Theta(1) generation per sample.

Two table constructions are provided:

- :func:`build_alias_table` - the textbook sequential small/large worklist
  algorithm (Vose 1991), the reference used by the paper's sequential
  centralized filter.
- :func:`build_alias_table_parallel` - a data-parallel construction in the
  spirit of the paper's GPU kernel, which "operates on min(#large, #small)
  particle pairs at a time" and whose "concurrency usually drops steeply
  towards one". Ours alternates two vectorized rounds: a *bulk* prefix-sum
  assignment (each heavy item absorbs every light item whose deficit interval
  falls fully inside its excess segment - this retires almost everything in
  one pass for heavy-tailed particle weights) and a *paired* round (light i
  paired with heavy i) that guarantees progress when bulk assignment stalls.

Both constructions produce exact alias tables: column i keeps probability
``prob[i]`` of returning i and otherwise returns ``alias[i]``, and the total
mass of every index equals its normalized weight.
"""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler
from repro.utils.arrays import normalize_weights
from repro.utils.validation import check_probability_vector


def build_alias_table(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sequential textbook construction. Returns ``(prob, alias)``."""
    w = check_probability_vector(weights)
    n = w.size
    scaled = (w / w.sum()) * n
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    scaled = scaled.copy()
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] -= 1.0 - scaled[s]
        (small if scaled[l] < 1.0 else large).append(l)
    # Leftovers have mass 1 up to rounding.
    for i in small + large:
        prob[i] = 1.0
    return prob, alias


def build_alias_table_parallel(weights: np.ndarray, max_rounds: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Data-parallel exact construction (bulk + paired vectorized rounds)."""
    w = check_probability_vector(weights)
    n = w.size
    scaled = ((w / w.sum()) * n).astype(np.float64)
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = np.flatnonzero(scaled < 1.0)
    large = np.flatnonzero(scaled >= 1.0)
    if max_rounds is None:
        max_rounds = 4 * int(np.ceil(np.log2(n + 1))) + 64

    for _ in range(max_rounds):
        if small.size == 0 or large.size == 0:
            break
        # ---- bulk round: prefix-sum interval containment ------------------
        d = 1.0 - scaled[small]            # light deficits (> 0)
        e = scaled[large] - 1.0            # heavy excesses (>= 0)
        D = np.cumsum(d)
        D0 = D - d
        E = np.cumsum(e)
        E0 = np.concatenate(([0.0], E[:-1]))
        j = np.searchsorted(E, D, side="left")  # candidate heavy per light
        contained = (j < large.size) & (D0 >= E0[np.minimum(j, large.size - 1)])
        if np.any(contained):
            s_idx = small[contained]
            l_pos = j[contained]
            prob[s_idx] = scaled[s_idx]
            alias[s_idx] = large[l_pos]
            absorbed = np.bincount(l_pos, weights=d[contained], minlength=large.size)
            scaled[large] -= absorbed
            small = small[~contained]
        else:
            # ---- paired round: light i donates to heavy i -----------------
            k = min(small.size, large.size)
            s_idx, l_idx = small[:k], large[:k]
            prob[s_idx] = scaled[s_idx]
            alias[s_idx] = l_idx
            scaled[l_idx] -= 1.0 - scaled[s_idx]
            small = small[k:]
        went_small = large[scaled[large] < 1.0]
        large = large[scaled[large] >= 1.0]
        small = np.concatenate([small, went_small])

    # Whatever survives the round cap is within fp noise of mass 1, or is
    # handled exactly by the sequential finish.
    if small.size and large.size:
        sub_w = np.zeros(n)
        rest = np.concatenate([small, large])
        sub_w[rest] = scaled[rest]
        p2, a2 = build_alias_table(sub_w[rest] / sub_w[rest].sum())
        prob[rest] = p2
        alias[rest] = rest[a2]
    else:
        prob[np.concatenate([small, large]).astype(np.int64)] = 1.0
    return prob, alias


def alias_sample(prob: np.ndarray, alias: np.ndarray, u_select: np.ndarray, u_coin: np.ndarray) -> np.ndarray:
    """Theta(1)-per-sample generation: pick a column, flip its biased coin.

    ``prob``/``alias`` are 1-D tables; batched tables go through
    :meth:`VoseAliasResampler.resample_batch`.
    """
    prob = np.asarray(prob)
    if prob.ndim != 1:
        raise ValueError("alias_sample expects a 1-D table")
    n = prob.size
    col = np.minimum((np.asarray(u_select) * n).astype(np.int64), n - 1)
    take_col = np.asarray(u_coin) < prob[col]
    return np.where(take_col, col, alias[col]).astype(np.int64)


class VoseAliasResampler(Resampler):
    """Alias-method resampler.

    Parameters
    ----------
    parallel_build:
        use the data-parallel table construction (GPU-kernel analogue)
        instead of the sequential textbook worklists.
    """

    name = "vose"

    def __init__(self, parallel_build: bool = False):
        self.parallel_build = bool(parallel_build)

    def _build(self, w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.parallel_build:
            return build_alias_table_parallel(w)
        return build_alias_table(w)

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        prob, alias = self._build(normalize_weights(w))
        u = rng.uniform((2, n_out))
        return alias_sample(prob, alias, u[0], u[1])

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        F, m = w.shape
        probs = np.empty((F, m))
        aliases = np.empty((F, m), dtype=np.int64)
        for f in range(F):
            probs[f], aliases[f] = self._build(normalize_weights(w[f]))
        u = rng.uniform((2, F, n_out))
        col = np.minimum((u[0] * m).astype(np.int64), m - 1)
        rows = np.arange(F)[:, None]
        take = u[1] < probs[rows, col]
        return np.where(take, col, aliases[rows, col]).astype(np.int64)
