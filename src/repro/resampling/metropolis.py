"""Metropolis resampler (Murray, 2012) as a pluggable ``Resampler``.

Unlike RWS and the alias method, Metropolis resampling never computes the
weight sum: each output sample runs a short independent Markov chain over
the ancestor indices, accepting a proposed ancestor ``j`` over the current
``i`` with probability ``min(1, w_j / w_i)``. That makes it collective-free
(no prefix sum, no normalization — only ratios), which is exactly the
property that matters on wide SIMT hardware where the scan is the only
cross-lane dependency in the resampling stage.

The ancestor distribution is *approximate*: bias decays geometrically with
the chain length ``B``, so ``B = O(log n)`` steps suffice in practice
(:func:`repro.kernels.metropolis.default_metropolis_steps`). The kernel
bodies live in :mod:`repro.kernels.metropolis`; this module only adapts
them to the :class:`~repro.resampling.base.Resampler` interface.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.metropolis import default_metropolis_steps, metropolis_resample_batch
from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler


class MetropolisResampler(Resampler):
    """Scan-free approximate resampling via per-sample Metropolis chains.

    Parameters
    ----------
    steps:
        chain length ``B``; ``None`` selects
        :func:`~repro.kernels.metropolis.default_metropolis_steps` per call.
    """

    name = "metropolis"

    def __init__(self, steps: int | None = None):
        if steps is not None and steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.steps = steps

    def _steps(self, n: int) -> int:
        return self.steps if self.steps is not None else default_metropolis_steps(n)

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        B = self._steps(w.shape[0])
        u = rng.uniform((2, B, n_out))
        return metropolis_resample_batch(w[None, :], u[0][None], u[1][None])[0]

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        B = self._steps(w.shape[1])
        u = rng.uniform((2, w.shape[0], B, n_out))
        return metropolis_resample_batch(w, u[0], u[1])
