"""Plain multinomial resampling (i.i.d. draws from the weight distribution)."""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler
from repro.utils.arrays import normalize_weights


class MultinomialResampler(Resampler):
    """Baseline multinomial resampler via inverse-CDF on sorted uniforms.

    Statistically identical to RWS (both draw i.i.d. ancestors); kept separate
    because it sorts its uniforms first, which converts the binary search into
    a single merge pass - the standard sequential-machine optimization.
    """

    name = "multinomial"

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        c = np.cumsum(normalize_weights(w))
        c[-1] = 1.0  # guard against fp shortfall
        u = np.sort(rng.uniform((n_out,)))
        return np.searchsorted(c, u, side="right").astype(np.int64)
