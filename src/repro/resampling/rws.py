"""Roulette Wheel Selection: prefix sum + per-sample binary search.

This is the algorithm the paper uses on sub-filters: initialization is a
parallel prefix sum over the local weights (Theta(n)); generation draws one
uniform per output sample, scales it by the total weight, and binary-searches
the cumulative array (Theta(log n) per sample). The batched form resamples
every sub-filter's row in one fused set of array operations, which is exactly
the shape of the GPU kernel (one work group per row).
"""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler
from repro.utils.arrays import normalize_weights


def rws_indices(weights: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Map uniforms ``u`` in [0,1) to ancestor indices for 1-D *weights*."""
    c = np.cumsum(normalize_weights(np.asarray(weights, dtype=np.float64)))
    c[-1] = 1.0
    return np.searchsorted(c, u, side="right").astype(np.int64)


def rws_indices_batch(weights: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Row-wise RWS: ``weights`` is (F, m), ``u`` is (F, k) -> (F, k) indices.

    All rows are searched with a single flattened ``searchsorted`` by shifting
    row r's normalized CDF (which lives in (0, 1]) into the interval
    (r, r+1]; the flattened array is then globally ascending.
    """
    w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    u = np.atleast_2d(np.asarray(u, dtype=np.float64))
    if w.shape[0] != u.shape[0]:
        raise ValueError(f"row mismatch: weights {w.shape} vs uniforms {u.shape}")
    F, m = w.shape
    c = np.cumsum(normalize_weights(w, axis=1), axis=1)
    c[:, -1] = 1.0
    offsets = np.arange(F, dtype=np.float64)[:, None]
    flat_cdf = (c + offsets).reshape(-1)
    flat_u = (u + offsets).reshape(-1)
    pos = np.searchsorted(flat_cdf, flat_u, side="right")
    idx = (pos - np.repeat(np.arange(F) * m, u.shape[1])).astype(np.int64)
    # A uniform numerically equal to the row total can land one past the end.
    np.clip(idx, 0, m - 1, out=idx)
    return idx.reshape(F, -1)


class RouletteWheelResampler(Resampler):
    """RWS resampler; i.i.d. ancestors, batched rows fully vectorized."""

    name = "rws"

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        return rws_indices(w, rng.uniform((n_out,)))

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        u = rng.uniform((w.shape[0], n_out))
        return rws_indices_batch(w, u)
