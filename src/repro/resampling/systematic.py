"""Systematic and stratified resampling (low-variance alternatives).

Not part of the paper's two-algorithm comparison, but standard in the
particle-filtering literature and cheap to vectorize; included so the
framework can ablate resampler choice against RWS/Vose.
"""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler
from repro.utils.arrays import normalize_weights


def _inverse_cdf(weights: np.ndarray, positions: np.ndarray) -> np.ndarray:
    c = np.cumsum(normalize_weights(np.asarray(weights, dtype=np.float64)))
    c[-1] = 1.0
    return np.searchsorted(c, positions, side="right").astype(np.int64)


class SystematicResampler(Resampler):
    """One uniform offset, n_out evenly spaced CDF probes.

    Minimum-variance ancestor counts: every index i appears either
    ``floor(n w_i)`` or ``ceil(n w_i)`` times.
    """

    name = "systematic"

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        u0 = rng.uniform((1,))[0]
        positions = (np.arange(n_out) + u0) / n_out
        return _inverse_cdf(w, positions)

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        from repro.resampling.rws import rws_indices_batch

        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        u0 = rng.uniform((w.shape[0], 1))
        positions = (np.arange(n_out)[None, :] + u0) / n_out
        return rws_indices_batch(w, positions)


class StratifiedResampler(Resampler):
    """One independent uniform per stratum ``[k/n, (k+1)/n)``."""

    name = "stratified"

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = self._validate(weights, n_out)
        positions = (np.arange(n_out) + rng.uniform((n_out,))) / n_out
        return _inverse_cdf(w, positions)

    def resample_batch(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        from repro.resampling.rws import rws_indices_batch

        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        positions = (np.arange(n_out)[None, :] + rng.uniform((w.shape[0], n_out))) / n_out
        return rws_indices_batch(w, positions)
