"""Effective sample size and resample-when policies.

Section IV of the paper: "we have experimented with the suggested metric to
compute the effective sample size as well as a simpler resampling frequency
parameter (each sub-filter randomly decides to resample at a fixed ratio of
the time). ... frequent resampling generally yields better results." All
three options are provided so that trade-off is reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.prng.streams import FilterRNG
from repro.utils.arrays import normalize_weights


def effective_sample_size(weights: np.ndarray, axis: int = -1) -> np.ndarray:
    """ESS = 1 / sum(w_norm^2); equals n for uniform weights, 1 when one
    particle holds all mass. Works row-wise for batched weights."""
    w = normalize_weights(np.asarray(weights, dtype=np.float64), axis=axis)
    return 1.0 / np.sum(w * w, axis=axis)


class ResamplingPolicy(abc.ABC):
    """Decides, per sub-filter and per round, whether to resample."""

    @abc.abstractmethod
    def should_resample(self, weights: np.ndarray, rng: FilterRNG,
                        widths: np.ndarray | None = None) -> np.ndarray:
        """``weights`` is (n_filters, m); returns a bool mask of shape (n_filters,).

        ``widths`` carries each sub-filter's live particle count when the
        population uses the padded width-aware layout (padded slots hold
        zero weight); ``None`` means every row is fully live.
        """


class AlwaysResample(ResamplingPolicy):
    """The paper's default: resample every round."""

    def should_resample(self, weights: np.ndarray, rng: FilterRNG,
                        widths: np.ndarray | None = None) -> np.ndarray:
        return np.ones(np.atleast_2d(weights).shape[0], dtype=bool)


class ESSThresholdPolicy(ResamplingPolicy):
    """Resample a sub-filter only when its ESS falls below ``ratio * m_i``.

    ``m_i`` is the sub-filter's *live* width: under the width-aware layout
    (and for healed populations whose masked particles carry zero weight) a
    row's padded/masked slots must not inflate the threshold. Comparing
    against the padded ``weights.shape[1]`` would make a shrunken sub-filter
    resample every round even when its live particles are perfectly diverse.
    """

    def __init__(self, ratio: float = 0.5):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)

    def should_resample(self, weights: np.ndarray, rng: FilterRNG,
                        widths: np.ndarray | None = None) -> np.ndarray:
        w = np.atleast_2d(weights)
        live = w.shape[1] if widths is None else np.asarray(widths, dtype=np.float64)
        return effective_sample_size(w, axis=1) < self.ratio * live


class RandomFrequencyPolicy(ResamplingPolicy):
    """Each sub-filter independently resamples with probability ``frequency``
    per round — the paper's data-independent alternative that keeps the
    control flow suitable for resource-constrained real-time systems."""

    def __init__(self, frequency: float = 1.0):
        if not 0.0 <= frequency <= 1.0:
            raise ValueError(f"frequency must be in [0, 1], got {frequency}")
        self.frequency = float(frequency)

    def should_resample(self, weights: np.ndarray, rng: FilterRNG,
                        widths: np.ndarray | None = None) -> np.ndarray:
        n = np.atleast_2d(weights).shape[0]
        if self.frequency >= 1.0:
            return np.ones(n, dtype=bool)
        return rng.uniform((n,)) < self.frequency
