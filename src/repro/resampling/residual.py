"""Residual resampling: deterministic integer parts + multinomial remainder."""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG
from repro.resampling.base import Resampler
from repro.resampling.rws import rws_indices
from repro.utils.arrays import normalize_weights


class ResidualResampler(Resampler):
    """Each index i is kept ``floor(n w_i)`` times; the remainder is drawn
    multinomially from the residual weights. Lower variance than multinomial
    at the same cost order."""

    name = "residual"

    def resample(self, weights: np.ndarray, n_out: int, rng: FilterRNG) -> np.ndarray:
        w = normalize_weights(self._validate(weights, n_out))
        expected = n_out * w
        base = np.floor(expected).astype(np.int64)
        n_det = int(base.sum())
        out = np.repeat(np.arange(w.size, dtype=np.int64), base)
        n_rand = n_out - n_det
        if n_rand > 0:
            residual = expected - base
            total = residual.sum()
            if total <= 0:  # all weights were exact multiples of 1/n_out
                extra = rws_indices(w, rng.uniform((n_rand,)))
            else:
                extra = rws_indices(residual / total, rng.uniform((n_rand,)))
            out = np.concatenate([out, extra])
        return out
