"""Small array utilities used throughout the library."""

from __future__ import annotations

import numpy as np


def is_power_of_two(n: int) -> bool:
    """True if *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= *n* (n must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (int(n) - 1).bit_length()


def sanitize_log_weights(log_weights: np.ndarray, states: np.ndarray | None = None) -> int:
    """Neutralize unusable particles in place; returns how many were hit.

    A particle is unusable when its log-weight is NaN (a poisoned or
    miscomputed likelihood) or, if *states* is given, when any coordinate of
    its state is non-finite (corruption on the exchange wire). Both get a
    ``-inf`` log-weight, which every downstream kernel already treats as
    "never select": the shift-exp turns it into exact zero mass.

    ``log_weights`` must be a writable float array of shape ``(..., m)``;
    *states*, when given, is ``(..., m, d)`` with matching leading shape.
    """
    lw = np.asarray(log_weights)
    bad = np.isnan(lw)
    if states is not None:
        bad |= ~np.isfinite(np.asarray(states)).all(axis=-1)
    bad &= ~np.isneginf(lw)  # count only newly neutralized particles
    n = int(bad.sum())
    if n:
        lw[bad] = -np.inf
    return n


def degenerate_rows(log_weights: np.ndarray) -> np.ndarray:
    """Boolean mask of weight rows with *no* finite entry.

    Such a row carries zero usable probability mass — normalization would
    divide by zero and resampling has nothing to select — so the caller
    must rescue it (uniform reset, or rejuvenation from a neighbour).
    """
    return ~np.isfinite(np.asarray(log_weights)).any(axis=-1)


def rescue_degenerate_rows(log_weights: np.ndarray, states: np.ndarray | None = None) -> int:
    """Reset fully-degenerate weight rows to uniform, in place.

    Rows flagged by :func:`degenerate_rows` restart on ``logw = 0`` —
    restricted to particles with fully-finite states when *states* is given
    (corrupt particles stay at ``-inf``). A row whose particles are *all*
    corrupt still gets a plain uniform reset: there is nothing good left to
    prefer, and the estimator-side guards keep the output finite.
    Returns the number of rescued rows.
    """
    lw = np.asarray(log_weights)
    dead = degenerate_rows(lw)
    n = int(dead.sum())
    if not n:
        return 0
    if states is None:
        lw[dead] = 0.0
    else:
        ok = np.isfinite(np.asarray(states)[dead]).all(axis=-1)  # (n, m)
        rows = np.where(ok, 0.0, -np.inf)
        rows[~ok.any(axis=-1)] = 0.0
        lw[dead] = rows
    return n


def normalize_weights(w: np.ndarray, axis: int = -1) -> np.ndarray:
    """Normalize weights along *axis* to sum to one.

    Degenerate rows (all-zero or non-finite total) fall back to uniform
    weights, which is the conventional particle-filter rescue for a particle
    set whose likelihoods all underflowed.
    """
    w = np.asarray(w, dtype=np.float64)
    total = w.sum(axis=axis, keepdims=True)
    bad = ~np.isfinite(total) | (total <= 0)
    n = w.shape[axis]
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(bad, 1.0 / n, w / np.where(bad, 1.0, total))
    return out
