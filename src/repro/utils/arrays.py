"""Small array utilities used throughout the library."""

from __future__ import annotations

import numpy as np


def is_power_of_two(n: int) -> bool:
    """True if *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= *n* (n must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (int(n) - 1).bit_length()


def normalize_weights(w: np.ndarray, axis: int = -1) -> np.ndarray:
    """Normalize weights along *axis* to sum to one.

    Degenerate rows (all-zero or non-finite total) fall back to uniform
    weights, which is the conventional particle-filter rescue for a particle
    set whose likelihoods all underflowed.
    """
    w = np.asarray(w, dtype=np.float64)
    total = w.sum(axis=axis, keepdims=True)
    bad = ~np.isfinite(total) | (total <= 0)
    n = w.shape[axis]
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(bad, 1.0 / n, w / np.where(bad, 1.0, total))
    return out
