"""Shared helpers: argument validation and small array utilities."""

from repro.utils.validation import (
    check_dtype,
    check_positive_int,
    check_power_of_two,
    check_probability_vector,
    check_timeout,
)
from repro.utils.arrays import (
    degenerate_rows,
    is_power_of_two,
    next_power_of_two,
    normalize_weights,
    rescue_degenerate_rows,
    sanitize_log_weights,
)

__all__ = [
    "check_dtype",
    "check_positive_int",
    "check_power_of_two",
    "check_probability_vector",
    "check_timeout",
    "degenerate_rows",
    "is_power_of_two",
    "next_power_of_two",
    "normalize_weights",
    "rescue_degenerate_rows",
    "sanitize_log_weights",
]
