"""Shared helpers: argument validation and small array utilities."""

from repro.utils.validation import (
    check_dtype,
    check_positive_int,
    check_power_of_two,
    check_probability_vector,
)
from repro.utils.arrays import is_power_of_two, next_power_of_two, normalize_weights

__all__ = [
    "check_dtype",
    "check_positive_int",
    "check_power_of_two",
    "check_probability_vector",
    "is_power_of_two",
    "next_power_of_two",
    "normalize_weights",
]
