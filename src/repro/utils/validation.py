"""Argument validation helpers.

All public entry points of the library validate their inputs eagerly so that
configuration errors surface at construction time rather than deep inside a
vectorized kernel where the resulting shape error would be cryptic.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Return *value* if it is a positive integer, else raise ``ValueError``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_power_of_two(value: int, name: str) -> int:
    """Return *value* if it is a positive power of two, else raise."""
    value = check_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value


def check_dtype(dtype) -> np.dtype:
    """Coerce *dtype* to a floating point NumPy dtype (float32 or float64)."""
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dt}")
    return dt


def check_timeout(value, name: str) -> float | None:
    """Validate a deadline: ``None`` (wait forever) or a positive number of
    seconds. Used by the fault-tolerant backend's recv deadlines."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a number or None, got {type(value).__name__}")
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite (or None), got {value}")
    return float(value)


def check_probability_vector(w: np.ndarray, name: str = "weights") -> np.ndarray:
    """Validate that *w* is a 1-D non-negative vector with positive mass."""
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {w.shape}")
    if w.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(w)):
        raise ValueError(f"{name} must be finite")
    if np.any(w < 0):
        raise ValueError(f"{name} must be non-negative")
    if w.sum() <= 0:
        raise ValueError(f"{name} must have positive total mass")
    return w
