"""Distributed particle-filter variants from the related work.

Bashi et al. [10] propose three distribution strategies that the paper's
design space discussion builds on; Bolic et al. [11] add RNA. All four are
implemented on top of the core distributed machinery so they share kernels
(and therefore timing instrumentation) with Algorithm 2:

- **GDPF** — sampling and weighting run per sub-filter, but resampling is one
  *global* operation over the whole population (the centralized bottleneck
  the paper's design removes).
- **LDPF** — purely local resampling, no communication at all (our Algorithm
  2 with t = 0).
- **CDPF** — resampling is central but operates on a small *compressed*
  representative set (the best c of each sub-filter); the results are sent
  back to every node.
- **RNA** — local resampling followed by a deterministic particle exchange
  (exchange after, not before, the local resample).
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import DistributedParticleFilter
from repro.core.parameters import DistributedFilterConfig
from repro.models.base import StateSpaceModel


class GlobalDistributedPF(DistributedParticleFilter):
    """GDPF: global resampling over the concatenated population."""

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig):
        # Exchange is meaningless when resampling is global.
        super().__init__(model, config.with_(topology="none", n_exchange=0))

    def _resample(self, pooled_states, pooled_logw):
        cfg = self.config
        F, m, d = self.states.shape
        flat_logw = self.log_weights.reshape(1, F * m)
        w = np.exp(flat_logw - flat_logw.max())
        idx = self.resampler.resample_batch(w, F * m, self.rng)[0]
        flat = self.states.reshape(F * m, d)
        self.states = np.ascontiguousarray(flat[idx].reshape(F, m, d))
        self.log_weights = np.zeros((F, m), dtype=np.float64)


class LocalDistributedPF(DistributedParticleFilter):
    """LDPF: local resampling, no exchange (t = 0)."""

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig):
        super().__init__(model, config.with_(topology="none", n_exchange=0))


class CompressedDistributedPF(DistributedParticleFilter):
    """CDPF: central resampling over a compressed representative set.

    Each sub-filter contributes its best ``compress`` particles; every
    sub-filter then resamples its m particles from that shared set.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig, compress: int = 4):
        if compress < 1 or compress > config.n_particles:
            raise ValueError(f"compress must be in [1, m], got {compress}")
        super().__init__(model, config.with_(topology="none", n_exchange=0))
        self.compress = int(compress)

    def _resample(self, pooled_states, pooled_logw):
        cfg = self.config
        F, m, d = self.states.shape
        c = self.compress
        # Rows are sorted descending by the sort kernel: best c lead each row.
        comp_states = self.states[:, :c, :].reshape(F * c, d)
        comp_logw = self.log_weights[:, :c].reshape(F * c)
        w = np.exp(comp_logw - comp_logw.max())[None, :]
        idx = self.resampler.resample_batch(np.repeat(w, F, axis=0), m, self.rng)  # (F, m)
        self.states = np.ascontiguousarray(comp_states[idx])
        self.log_weights = np.zeros((F, m), dtype=np.float64)


class RNAExchangePF(DistributedParticleFilter):
    """RNA-style: resample locally first, then exchange deterministically.

    After the local resample all weights are uniform, so each sub-filter
    sends t randomly chosen survivors to each neighbour, which replace t
    randomly chosen local particles. (Bolic et al. use deterministic routing
    schedules; random choice is the topology-agnostic equivalent.)
    """

    def _exchange(self):
        # Disable pre-resampling exchange; RNA exchanges after the resample.
        return self.states, self.log_weights

    def step(self, measurement, control=None):
        estimate = super().step(measurement, control)
        t = self.config.n_exchange
        if t > 0 and self._table.shape[1] > 0 and not self.topology.pooled:
            with self.timer.phase("exchange"):
                F, m, d = self.states.shape
                D = self._table.shape[1]
                send_sel = (self.rng.uniform((F, t)) * m).astype(np.int64)
                send = np.take_along_axis(self.states, send_sel[:, :, None], axis=1)  # (F, t, d)
                src = np.maximum(self._table, 0)
                recv = send[src].reshape(F, D * t, d)  # (F, D*t, d)
                dest = (self.rng.uniform((F, D * t)) * m).astype(np.int64)
                mask = np.repeat(self._mask, t, axis=1)
                rows = np.repeat(np.arange(F)[:, None], D * t, axis=1)
                self.states[rows[mask], dest[mask]] = recv[mask].astype(self.states.dtype)
        return estimate


class RPAProportionalPF(DistributedParticleFilter):
    """RPA (Bolic et al. [11]): resampling with proportional allocation.

    Two-stage resampling with centralized planning: each sub-filter's output
    particle count is allocated proportionally to its share of the global
    weight mass, sub-filters resample their allocation locally, and the
    population is redistributed evenly afterwards. Better estimation than
    RNA at the cost of global coordination every round — exactly the
    centralized step the paper's design avoids.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig):
        super().__init__(model, config.with_(topology="none", n_exchange=0))

    def _resample(self, pooled_states, pooled_logw):
        cfg = self.config
        F, m, d = self.states.shape
        total = F * m
        # Stage 1 (central plan): particles per sub-filter ~ weight share.
        shift = self.log_weights.max()
        w = np.exp(self.log_weights - shift)  # (F, m)
        filter_mass = w.sum(axis=1)
        share = filter_mass / filter_mass.sum()
        alloc = np.floor(share * total).astype(np.int64)
        # Distribute the remainder by largest fractional part.
        rest = total - int(alloc.sum())
        if rest > 0:
            frac = share * total - alloc
            alloc[np.argsort(-frac)[:rest]] += 1
        # Stage 2 (local): each sub-filter draws its allocation from its own
        # weighted set; results are concatenated and redistributed evenly.
        out = np.empty((total, d), dtype=self.states.dtype)
        pos = 0
        for f in range(F):
            k = int(alloc[f])
            if k == 0:
                continue
            idx = self.resampler.resample(w[f], k, self.rng)
            out[pos : pos + k] = self.states[f, idx]
            pos += k
        perm = (self.rng.uniform((total,)).argsort())  # random redistribution
        self.states = np.ascontiguousarray(out[perm].reshape(F, m, d))
        self.log_weights = np.zeros((F, m), dtype=np.float64)
