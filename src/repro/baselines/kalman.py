"""Exact Kalman filter for :class:`~repro.models.LinearGaussianModel`.

The optimal estimator for linear-Gaussian systems; its posterior is the
gold standard the particle filters must converge to in the validation tests.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.timing import PhaseTimer
from repro.models.linear_gaussian import LinearGaussianModel


class KalmanFilter:
    """Standard predict/update Kalman recursion."""

    def __init__(self, model: LinearGaussianModel):
        self.model = model
        self.timer = PhaseTimer()
        self.mean: np.ndarray | None = None
        self.cov: np.ndarray | None = None
        self.k = 0
        #: exact accumulated log marginal likelihood log p(z_{1:k}).
        self.log_evidence = 0.0

    def initialize(self) -> None:
        self.mean = self.model.x0_mean.copy()
        self.cov = self.model.x0_cov.copy()
        self.k = 0
        self.log_evidence = 0.0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self.mean is None:
            self.initialize()
        m = self.model
        # Predict.
        mean = m.A @ self.mean
        if control is not None and m.B is not None:
            mean = mean + m.B @ np.asarray(control)
        cov = m.A @ self.cov @ m.A.T + m.Q
        # Update.
        S = m.C @ cov @ m.C.T + m.R
        K = cov @ m.C.T @ np.linalg.inv(S)
        innov = np.asarray(measurement) - m.C @ mean
        # Exact evidence increment: innovation density N(innov; 0, S).
        sign, logdet = np.linalg.slogdet(2.0 * np.pi * S)
        self.log_evidence += float(-0.5 * (innov @ np.linalg.solve(S, innov) + logdet))
        self.mean = mean + K @ innov
        self.cov = (np.eye(m.state_dim) - K @ m.C) @ cov
        self.k += 1
        return self.mean.copy()
