"""Unscented Kalman filter (Julier & Uhlmann sigma points).

Same interface as the EKF but propagates 2d+1 sigma points through the exact
non-linear functions instead of linearizing — the strongest parametric
baseline before one must reach for particle filters.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.timing import PhaseTimer


class UnscentedKalmanFilter:
    """UKF with the standard (alpha, beta, kappa) scaled sigma-point set."""

    def __init__(self, f, h, Q, R, x0_mean, x0_cov, alpha: float = 1e-1, beta: float = 2.0, kappa: float = 0.0):
        self.f = f
        self.h = h
        self.Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        self.R = np.atleast_2d(np.asarray(R, dtype=np.float64))
        self.x0_mean = np.asarray(x0_mean, dtype=np.float64)
        self.x0_cov = np.atleast_2d(np.asarray(x0_cov, dtype=np.float64))
        d = self.x0_mean.size
        lam = alpha**2 * (d + kappa) - d
        self._lam = lam
        self._d = d
        self.wm = np.full(2 * d + 1, 1.0 / (2 * (d + lam)))
        self.wc = self.wm.copy()
        self.wm[0] = lam / (d + lam)
        self.wc[0] = lam / (d + lam) + (1 - alpha**2 + beta)
        self.timer = PhaseTimer()
        self.mean: np.ndarray | None = None
        self.cov: np.ndarray | None = None
        self.k = 0

    def initialize(self) -> None:
        self.mean = self.x0_mean.copy()
        self.cov = self.x0_cov.copy()
        self.k = 0

    def _sigma_points(self, mean: np.ndarray, cov: np.ndarray) -> np.ndarray:
        d = self._d
        # Symmetrize + jitter for numerical robustness of the Cholesky.
        cov = 0.5 * (cov + cov.T) + 1e-12 * np.eye(d)
        L = np.linalg.cholesky((d + self._lam) * cov)
        pts = np.empty((2 * d + 1, d))
        pts[0] = mean
        pts[1 : d + 1] = mean + L.T
        pts[d + 1 :] = mean - L.T
        return pts

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self.mean is None:
            self.initialize()
        k = self.k
        # Predict: propagate sigma points through f.
        pts = self._sigma_points(self.mean, self.cov)
        fpts = np.stack([np.asarray(self.f(p, control, k), dtype=np.float64) for p in pts])
        mean = self.wm @ fpts
        dx = fpts - mean
        cov = (self.wc[:, None] * dx).T @ dx + self.Q
        # Update: fresh sigma points through h.
        pts = self._sigma_points(mean, cov)
        hpts = np.stack([np.asarray(self.h(p), dtype=np.float64) for p in pts])
        z_mean = self.wm @ hpts
        dz = hpts - z_mean
        dxs = pts - mean
        S = (self.wc[:, None] * dz).T @ dz + self.R
        Cxz = (self.wc[:, None] * dxs).T @ dz
        K = Cxz @ np.linalg.inv(S)
        self.mean = mean + K @ (np.asarray(measurement) - z_mean)
        self.cov = cov - K @ S @ K.T
        self.k += 1
        return self.mean.copy()

    @classmethod
    def for_robot_arm(cls, model, **kwargs) -> "UnscentedKalmanFilter":
        from repro.baselines.ekf import ExtendedKalmanFilter

        ekf = ExtendedKalmanFilter.for_robot_arm(model)
        return cls(f=ekf.f, h=ekf.h, Q=ekf.Q, R=ekf.R, x0_mean=ekf.x0_mean, x0_cov=ekf.x0_cov, **kwargs)
