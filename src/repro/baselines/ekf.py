"""Extended Kalman filter with numerical Jacobians.

Generic over a deterministic transition mean ``f(x, u, k)`` and measurement
mean ``h(x)`` with additive Gaussian noise covariances Q and R. On the
robotic arm the camera equation's strong non-linearity is exactly the regime
where the EKF degrades and the particle filter earns its cost.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.metrics.timing import PhaseTimer


def numerical_jacobian(fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference Jacobian of ``fn`` at ``x``; shape (out_dim, in_dim)."""
    x = np.asarray(x, dtype=np.float64)
    f0 = np.asarray(fn(x))
    J = np.empty((f0.size, x.size))
    for i in range(x.size):
        dx = np.zeros_like(x)
        dx[i] = eps
        J[:, i] = (np.asarray(fn(x + dx)) - np.asarray(fn(x - dx))) / (2 * eps)
    return J


class ExtendedKalmanFilter:
    """First-order linearized Kalman recursion.

    Parameters
    ----------
    f:
        transition mean ``f(x, u, k) -> x'``.
    h:
        measurement mean ``h(x) -> z``.
    Q, R:
        additive process / measurement noise covariances.
    x0_mean, x0_cov:
        initial belief.
    """

    def __init__(self, f, h, Q, R, x0_mean, x0_cov):
        self.f = f
        self.h = h
        self.Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        self.R = np.atleast_2d(np.asarray(R, dtype=np.float64))
        self.x0_mean = np.asarray(x0_mean, dtype=np.float64)
        self.x0_cov = np.atleast_2d(np.asarray(x0_cov, dtype=np.float64))
        self.timer = PhaseTimer()
        self.mean: np.ndarray | None = None
        self.cov: np.ndarray | None = None
        self.k = 0

    def initialize(self) -> None:
        self.mean = self.x0_mean.copy()
        self.cov = self.x0_cov.copy()
        self.k = 0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self.mean is None:
            self.initialize()
        k = self.k
        # Predict through the linearized dynamics.
        F = numerical_jacobian(lambda x: self.f(x, control, k), self.mean)
        mean = np.asarray(self.f(self.mean, control, k), dtype=np.float64)
        cov = F @ self.cov @ F.T + self.Q
        # Update through the linearized measurement.
        H = numerical_jacobian(self.h, mean)
        S = H @ cov @ H.T + self.R
        K = cov @ H.T @ np.linalg.inv(S)
        innov = np.asarray(measurement) - np.asarray(self.h(mean))
        self.mean = mean + K @ innov
        self.cov = (np.eye(mean.size) - K @ H) @ cov
        self.k += 1
        return self.mean.copy()

    @classmethod
    def for_robot_arm(cls, model) -> "ExtendedKalmanFilter":
        """EKF configured for :class:`~repro.models.RobotArmModel`."""
        p = model.params
        K = model.n_joints

        def f(x, u, k):
            out = np.asarray(x, dtype=np.float64).copy()
            uu = np.zeros(K) if u is None else np.asarray(u)
            out[:K] += p.h_s * uu
            out[K : K + 2] += p.h_s * x[K + 2 : K + 4]
            return out

        Q = np.diag(
            np.concatenate([np.full(K, p.sigma_theta**2), np.full(2, p.sigma_xy**2), np.full(2, p.sigma_v**2)])
        )
        R = np.diag(np.concatenate([np.full(K, p.sigma_theta_meas**2), np.full(2, p.sigma_camera**2)]))
        x0_cov = np.diag(
            np.concatenate(
                [np.full(K, p.init_spread_theta**2), np.full(2, p.init_spread_xy**2), np.full(2, p.init_spread_v**2)]
            )
        )
        return cls(f=f, h=model.measurement_mean, Q=Q, R=R, x0_mean=model.initial_mean(), x0_cov=x0_cov)
