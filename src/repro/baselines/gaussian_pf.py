"""Gaussian particle filter (Kotecha & Djuric).

Approximates the posterior by a single Gaussian whose moments are estimated
from weighted particles — no resampling step at all, which is why related
work [12]/[13] found it both accurate for (near-)Gaussian problems and the
fastest parallel variant. It degrades on genuinely multi-modal posteriors,
which is the regime the paper's distributed filter targets.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.utils.validation import check_positive_int


class GaussianParticleFilter:
    """GPF over any :class:`~repro.models.base.StateSpaceModel`."""

    def __init__(self, model: StateSpaceModel, n_particles: int = 1024, rng: str = "numpy", seed: int = 0):
        self.model = model
        self.n_particles = check_positive_int(n_particles, "n_particles")
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(rng, seed), self.timer)
        self.mean: np.ndarray | None = None
        self.cov: np.ndarray | None = None
        self.k = 0

    def initialize(self) -> None:
        pts = self.model.initial_particles(self.n_particles, self.rng)
        self.mean = pts.mean(axis=0)
        self.cov = np.cov(pts.T).reshape(self.model.state_dim, self.model.state_dim)
        self.k = 0

    def _draw(self) -> np.ndarray:
        d = self.model.state_dim
        cov = 0.5 * (self.cov + self.cov.T) + 1e-10 * np.eye(d)
        L = np.linalg.cholesky(cov)
        z = self.rng.normal((self.n_particles, d))
        return self.mean[None, :] + z @ L.T

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self.mean is None:
            self.initialize()
        with self.timer.phase("sampling"):
            pts = self._draw()
            pts = self.model.transition(pts, control, self.k, self.rng)
            logw = self.model.log_likelihood(pts, measurement, self.k)
        with self.timer.phase("estimate"):
            w = np.exp(logw - logw.max())
            total = w.sum()
            if total <= 0 or not np.isfinite(total):
                w = np.full(self.n_particles, 1.0 / self.n_particles)
            else:
                w = w / total
            self.mean = w @ pts
            dx = pts - self.mean
            self.cov = (w[:, None] * dx).T @ dx
        self.k += 1
        return self.mean.copy()
