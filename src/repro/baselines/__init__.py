"""Baseline estimators the paper positions itself against.

Parametric filters (Section I: "for systems where the amount of non-linearity
is limited"): the exact Kalman filter, the extended KF and the unscented KF.
The Gaussian particle filter (related work [12]) approximates the posterior
with a normal distribution and needs no resampling. The distributed-PF
variants of related work [10]/[11] — GDPF (central resampling), LDPF (local
resampling, no exchange), CDPF (compressed central resampling) and RNA-style
(local resampling + post-resampling exchange) — are provided for the
algorithm-comparison ablations.
"""

from repro.baselines.kalman import KalmanFilter
from repro.baselines.ekf import ExtendedKalmanFilter, numerical_jacobian
from repro.baselines.ukf import UnscentedKalmanFilter
from repro.baselines.gaussian_pf import GaussianParticleFilter
from repro.baselines.distributed_variants import (
    CompressedDistributedPF,
    GlobalDistributedPF,
    LocalDistributedPF,
    RNAExchangePF,
    RPAProportionalPF,
)

__all__ = [
    "KalmanFilter",
    "ExtendedKalmanFilter",
    "numerical_jacobian",
    "UnscentedKalmanFilter",
    "GaussianParticleFilter",
    "GlobalDistributedPF",
    "LocalDistributedPF",
    "CompressedDistributedPF",
    "RNAExchangePF",
    "RPAProportionalPF",
]
