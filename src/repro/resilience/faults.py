"""Deterministic fault injection for chaos-testing the distributed filter.

A :class:`FaultPlan` is a reproducible schedule of faults keyed by
``(worker, step)``. Because the plan is data (not callbacks), it pickles
cleanly into worker processes and serializes into experiment records, so a
chaos run that exposed a bug can be replayed bit-for-bit.

Supported fault kinds
---------------------
``kill``
    the worker process exits immediately (no reply is ever sent) — the
    crashed-block case.
``hang``
    the worker sleeps for ``duration`` seconds before proceeding; with a
    duration beyond the master's deadline this exercises the timeout path.
``delay``
    like ``hang`` but intended to stay *under* the deadline — exercises the
    retry/backoff path without losing the worker.
``poison_nan`` / ``poison_neginf``
    a seeded fraction of the worker's sub-filter weight rows is overwritten
    with ``NaN`` / ``-inf`` after weighting — the numerical-degeneracy case.
``corrupt_exchange``
    a seeded fraction of the particles the worker *sends* to its neighbours
    is replaced with ``NaN`` — corruption on the wire.
``slow_heartbeat``
    the worker computes normally but stops publishing liveness heartbeats
    for the round — the healthy-but-silent case that exercises the
    supervisor's failure detector against a worker that would have replied.
``ckpt_corrupt`` / ``ckpt_truncate`` / ``ckpt_partial_write``
    *master-side* durability faults applied to the checkpoint written at
    that step: seeded byte flips in the array payload, truncation of the
    written file, or a simulated SIGKILL between staging and the atomic
    rename (the previous checkpoint must survive). These exercise the
    integrity and atomicity contracts of :mod:`repro.resilience.checkpoint`.

The randomness used to pick poisoned rows / corrupted particles is derived
from ``(plan.seed, fault kind, worker, step)``, never from global state, so
injection is reproducible regardless of scheduling.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

#: exit code used by an injected ``kill`` so tests can recognise it.
KILL_EXIT_CODE = 137

FAULT_KINDS = ("kill", "hang", "delay", "poison_nan", "poison_neginf",
               "corrupt_exchange", "slow_heartbeat",
               "ckpt_corrupt", "ckpt_truncate", "ckpt_partial_write")

#: fault kinds applied by the *master* to the checkpoint it writes, rather
#: than injected into a worker process.
CHECKPOINT_FAULT_KINDS = ("ckpt_corrupt", "ckpt_truncate", "ckpt_partial_write")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: *kind* hits *worker* at filtering round *step*."""

    kind: str
    worker: int
    step: int
    #: sleep length for ``hang`` / ``delay`` faults [s].
    duration: float = 0.0
    #: fraction of rows/particles affected by poison/corrupt faults.
    fraction: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose one of {FAULT_KINDS}")
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


class FaultPlan:
    """A seeded, reproducible schedule of worker faults.

    Build one fluently::

        plan = (FaultPlan(seed=7)
                .kill(worker=1, step=10)
                .hang(worker=2, step=4, duration=60.0)
                .poison_weights(worker=0, step=3, value="nan"))

    or draw a random plan with :meth:`FaultPlan.random`. Plans are
    picklable and round-trip through :meth:`to_dicts` / :meth:`from_dicts`.
    """

    def __init__(self, seed: int = 0, faults: tuple[Fault, ...] = ()):
        self.seed = int(seed)
        self._faults: list[Fault] = []
        self._index: dict[tuple[int, int], list[Fault]] = {}
        for f in faults:
            self.add(f)

    # -- construction -------------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        if not isinstance(fault, Fault):
            raise TypeError(f"expected a Fault, got {type(fault).__name__}")
        self._faults.append(fault)
        self._index.setdefault((fault.worker, fault.step), []).append(fault)
        return self

    def kill(self, worker: int, step: int) -> "FaultPlan":
        return self.add(Fault("kill", worker, step))

    def hang(self, worker: int, step: int, duration: float = 3600.0) -> "FaultPlan":
        return self.add(Fault("hang", worker, step, duration=duration))

    def delay(self, worker: int, step: int, duration: float = 0.05) -> "FaultPlan":
        return self.add(Fault("delay", worker, step, duration=duration))

    def poison_weights(self, worker: int, step: int, value: str = "nan",
                       fraction: float = 1.0) -> "FaultPlan":
        kind = {"nan": "poison_nan", "-inf": "poison_neginf", "neginf": "poison_neginf"}.get(value)
        if kind is None:
            raise ValueError(f"value must be 'nan' or '-inf', got {value!r}")
        return self.add(Fault(kind, worker, step, fraction=fraction))

    def corrupt_exchange(self, worker: int, step: int, fraction: float = 1.0) -> "FaultPlan":
        return self.add(Fault("corrupt_exchange", worker, step, fraction=fraction))

    def slow_heartbeat(self, worker: int, step: int) -> "FaultPlan":
        """Mute *worker*'s liveness beats for the round (compute unaffected)."""
        return self.add(Fault("slow_heartbeat", worker, step))

    def corrupt_checkpoint(self, step: int, fraction: float = 0.01) -> "FaultPlan":
        """Flip a seeded fraction of bytes in the checkpoint written at *step*."""
        return self.add(Fault("ckpt_corrupt", 0, step, fraction=fraction))

    def truncate_checkpoint(self, step: int) -> "FaultPlan":
        """Truncate the checkpoint written at *step* (torn tail)."""
        return self.add(Fault("ckpt_truncate", 0, step))

    def interrupt_checkpoint(self, step: int) -> "FaultPlan":
        """SIGKILL the writer mid-checkpoint at *step*: staging file torn,
        atomic rename never happens, previous checkpoint must survive."""
        return self.add(Fault("ckpt_partial_write", 0, step))

    @classmethod
    def random(cls, seed: int, n_workers: int, n_steps: int, *,
               p_kill: float = 0.0, p_hang: float = 0.0, p_delay: float = 0.0,
               p_poison: float = 0.0, p_corrupt: float = 0.0,
               max_kills: int | None = None,
               hang_duration: float = 3600.0, delay_duration: float = 0.05) -> "FaultPlan":
        """Draw a random plan: each (worker, step) cell independently suffers
        each fault kind with the given probability. ``max_kills`` caps the
        number of killed workers so a chaos run keeps a quorum alive."""
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        kills = 0
        for step in range(n_steps):
            for worker in range(n_workers):
                if p_kill and rng.random() < p_kill:
                    if max_kills is None or kills < max_kills:
                        plan.kill(worker, step)
                        kills += 1
                if p_hang and rng.random() < p_hang:
                    plan.hang(worker, step, duration=hang_duration)
                if p_delay and rng.random() < p_delay:
                    plan.delay(worker, step, duration=delay_duration)
                if p_poison and rng.random() < p_poison:
                    plan.poison_weights(worker, step, value="nan")
                if p_corrupt and rng.random() < p_corrupt:
                    plan.corrupt_exchange(worker, step, fraction=0.5)
        return plan

    # -- queries -------------------------------------------------------------
    def faults_for(self, worker: int, step: int) -> tuple[Fault, ...]:
        """All faults scheduled for *worker* at round *step* (insertion order)."""
        return tuple(self._index.get((int(worker), int(step)), ()))

    def checkpoint_faults_for(self, step: int) -> tuple[Fault, ...]:
        """Master-side checkpoint faults scheduled at *step* (any worker key)."""
        return tuple(f for f in self._faults
                     if f.kind in CHECKPOINT_FAULT_KINDS and f.step == int(step))

    def rng_for(self, fault: Fault) -> np.random.Generator:
        """Deterministic generator for a fault's internal randomness."""
        kind_id = FAULT_KINDS.index(fault.kind)
        return np.random.default_rng([self.seed, kind_id, fault.worker, fault.step])

    @property
    def faults(self) -> tuple[Fault, ...]:
        return tuple(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self):
        return iter(self._faults)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, n_faults={len(self._faults)})"

    # -- serialization -------------------------------------------------------
    def to_dicts(self) -> dict:
        """JSON-ready record of the plan."""
        return {"seed": self.seed, "faults": [asdict(f) for f in self._faults]}

    @classmethod
    def from_dicts(cls, d: dict) -> "FaultPlan":
        return cls(seed=d.get("seed", 0), faults=tuple(Fault(**f) for f in d.get("faults", ())))


# ---------------------------------------------------------------------------
# Worker-side application helpers
# ---------------------------------------------------------------------------


def apply_process_faults(plan: FaultPlan | None, worker: int, step: int) -> None:
    """Apply ``kill`` / ``hang`` / ``delay`` faults before a worker computes.

    ``kill`` exits the process with :data:`KILL_EXIT_CODE` without replying
    (the master sees a dead process / broken pipe, exactly like a real
    crash). ``hang``/``delay`` sleep for their duration, then proceed.
    """
    if plan is None:
        return
    for f in plan.faults_for(worker, step):
        if f.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        elif f.kind in ("hang", "delay"):
            time.sleep(f.duration)


def poison_log_weights(plan: FaultPlan | None, worker: int, step: int,
                       log_weights: np.ndarray) -> int:
    """Apply weight-poisoning faults in place; returns rows poisoned.

    ``log_weights`` is the worker's ``(F_local, m)`` block; a seeded
    fraction of its rows is overwritten with NaN or ``-inf``.
    """
    if plan is None:
        return 0
    poisoned = 0
    for f in plan.faults_for(worker, step):
        if f.kind not in ("poison_nan", "poison_neginf"):
            continue
        n_rows = log_weights.shape[0]
        n_hit = max(1, int(round(f.fraction * n_rows)))
        rows = plan.rng_for(f).choice(n_rows, size=min(n_hit, n_rows), replace=False)
        log_weights[rows] = np.nan if f.kind == "poison_nan" else -np.inf
        poisoned += len(rows)
    return poisoned


def corrupt_send_states(plan: FaultPlan | None, worker: int, step: int,
                        send_states: np.ndarray) -> int:
    """Apply ``corrupt_exchange`` faults in place on the outgoing particle
    buffer ``(F_local, t, d)``; returns particles corrupted."""
    if plan is None:
        return 0
    corrupted = 0
    for f in plan.faults_for(worker, step):
        if f.kind != "corrupt_exchange":
            continue
        flat = send_states.reshape(-1, send_states.shape[-1])
        n = flat.shape[0]
        n_hit = max(1, int(round(f.fraction * n)))
        rows = plan.rng_for(f).choice(n, size=min(n_hit, n), replace=False)
        flat[rows] = np.nan
        corrupted += len(rows)
    return corrupted


# ---------------------------------------------------------------------------
# Stage-pipeline integration
# ---------------------------------------------------------------------------


class FaultInjectionHook:
    """Injects a :class:`FaultPlan` into a worker's stage pipeline.

    Process faults (kill/hang/delay) fire as the sampling stage starts —
    the worker has received its round message but not yet computed, the same
    point the inline injection used. Weight poisoning lands right after the
    sampling stage writes the log-weights, *before* the heal stage gets a
    chance to neutralize it, which is exactly the adversarial ordering the
    chaos suite exercises. Exchange corruption stays at the message boundary
    (it corrupts the serialized send buffer, not pipeline state).

    Implements the :class:`repro.engine.StageHook` interface without
    inheriting so that :mod:`repro.resilience` stays importable standalone.
    """

    def __init__(self, plan: FaultPlan | None, worker_id: int, tracer=None):
        self.plan = plan
        self.worker_id = worker_id
        self.tracer = tracer

    def _count(self, name: str, value: int) -> None:
        if value and self.tracer is not None:
            self.tracer.count(name, value)

    def on_step_start(self, state) -> None:
        pass

    def on_stage_start(self, name: str, state) -> None:
        if name == "sampling":
            if self.plan is not None and self.tracer is not None:
                self._count("faults.injected",
                            len(self.plan.faults_for(self.worker_id, state.k)))
            apply_process_faults(self.plan, self.worker_id, state.k)

    def on_stage_end(self, name: str, state, elapsed: float) -> None:
        if name == "sampling":
            self._count("faults.poisoned_rows", poison_log_weights(
                self.plan, self.worker_id, state.k, state.log_weights))

    def on_step_end(self, state) -> None:
        pass
