"""Reusable deadline / backoff / retry primitives for master↔worker paths.

Every reply the master waits on — phase-1 gathers, phase-2 gathers, the
init/adopt/get_state handshakes, checkpoint snapshots, the farewell on
``close()`` — shares the same waiting discipline: split a total reply
deadline into exponentially growing poll windows, check process liveness at
every window boundary, count windows that expire without a reply as
*retries*, and declare a *timeout* only when the final window expires. That
discipline used to be hand-rolled inside the backend's gather loop; these
primitives express it once so every path (and every future transport) gets
identical semantics and identical telemetry.

- :class:`Backoff` — the window schedule: ``timeout`` split into
  ``max_retries`` windows of doubling length (window *i* spans
  ``timeout * 2**i / (2**n - 1)`` seconds, so the windows sum exactly to
  the deadline). ``timeout=None`` means *poll forever*: an endless train of
  1-second windows that never produces a timeout (liveness is still checked
  at each boundary, so a crashed peer is always detected).
- :class:`Deadline` — one peer's position inside a :class:`Backoff`
  schedule: when its current window is due, and what expiring it means
  (``"retry"``, ``"timeout"``, or ``"poll"`` for the unbounded schedule).
- :class:`RetryPolicy` — the user-facing bundle (``timeout`` +
  ``max_retries``) that validates its inputs once and mints
  :class:`Deadline` instances for each wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int, check_timeout

#: window length [s] of the unbounded (``timeout=None``) schedule.
POLL_FOREVER_WINDOW = 1.0


@dataclass(frozen=True)
class Backoff:
    """An exponential poll-window schedule summing to a total timeout."""

    timeout: float | None
    max_retries: int = 3

    def windows(self) -> tuple[float, ...] | None:
        """The window lengths [s], or ``None`` for the unbounded schedule."""
        if self.timeout is None:
            return None
        n = self.max_retries
        total = float(2**n - 1)
        return tuple(self.timeout * (2**i) / total for i in range(n))


class Deadline:
    """One peer's reply deadline, tracked across backoff windows.

    ``due_at`` is the absolute time the current window expires. Expiring a
    window via :meth:`expire` advances to the next one and classifies the
    expiry; the caller decides what a ``"retry"`` or ``"timeout"`` means
    (bump a counter, raise a typed error, heal the peer out).
    """

    __slots__ = ("_windows", "attempt", "due_at")

    def __init__(self, windows: tuple[float, ...] | None, now: float):
        self._windows = windows
        self.attempt = 0
        first = POLL_FOREVER_WINDOW if windows is None else windows[0]
        self.due_at = now + first

    def due(self, now: float) -> bool:
        return now >= self.due_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.due_at - now)

    def expire(self, now: float) -> str:
        """Consume the current window; returns the expiry kind.

        - ``"poll"``: unbounded schedule — open the next 1 s window.
        - ``"retry"``: a non-final window expired — open the next, longer one.
        - ``"timeout"``: the final window expired — the deadline is spent.
        """
        if self._windows is None:
            self.due_at = now + POLL_FOREVER_WINDOW
            return "poll"
        self.attempt += 1
        if self.attempt >= len(self._windows):
            return "timeout"
        self.due_at = now + self._windows[self.attempt]
        return "retry"


@dataclass(frozen=True)
class RetryPolicy:
    """Validated (timeout, max_retries) bundle; a :class:`Deadline` factory.

    ``timeout=None`` waits forever in 1 s liveness-checked windows. The
    policy is immutable and shared: each wait mints fresh per-peer
    :class:`Deadline` trackers with :meth:`deadline`.
    """

    timeout: float | None = 30.0
    max_retries: int = 3

    def __post_init__(self):
        check_timeout(self.timeout, "timeout")
        check_positive_int(self.max_retries, "max_retries")

    def backoff(self) -> Backoff:
        return Backoff(self.timeout, self.max_retries)

    def windows(self) -> tuple[float, ...] | None:
        return self.backoff().windows()

    def deadline(self, now: float) -> Deadline:
        return Deadline(self.windows(), now)
