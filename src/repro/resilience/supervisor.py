"""Heartbeat supervision: detect dead/hung workers *during* compute phases.

The gather deadline alone notices a failed worker only when its reply is
due — for a long sampling phase that can be seconds after the worker
actually died. Heartbeat supervision closes that gap: workers publish a
monotonic liveness counter out-of-band at every stage boundary (a dedicated
shared-memory slab field for ``transport="shm"``, lightweight ``("beat", n,
code)`` messages on the pipe otherwise), and the master's
:class:`Supervisor` runs a configurable failure detector over those
counters while it waits — declaring a worker dead after
``max_missed`` consecutive ``beat_timeout`` windows without progress,
typically long before the gather deadline would fire.

Detection drives the escalation ladder (each rung recorded in the
supervisor's event log and the run's
:class:`~repro.resilience.monitor.ResilienceReport`):

1. **retry** — the gather's backoff windows absorb transient slowness;
2. **heal**  — a worker declared dead is healed out of the topology
   (``on_failure="heal"``);
3. **respawn** — with ``respawn_dead=True`` the block is re-provisioned
   from donor neighbours at the end of the round;
4. **checkpoint-and-abort** — under ``on_failure="raise"`` (or when no
   live worker remains) a supervisor configured with
   ``checkpoint_on_abort`` saves the survivors' state before the typed
   failure propagates, so the run is resumable rather than lost.

The detector is deliberately beat-driven, not process-driven: a SIGKILLed
worker and a hung worker both stop beating, so both are caught mid-phase;
the backend then classifies the failure (crash vs. heartbeat timeout) by
checking process liveness at declaration time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.utils.validation import check_positive_int, check_timeout

#: heartbeat phase codes published alongside the counter (debug aid).
BEAT_CODES = {"recv": 0, "stage_start": 1, "stage_end": 2, "reply": 3}


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision decision: a miss, a declaration, an escalation."""

    step: int
    worker_id: int
    #: ``beat_miss`` | ``declared_dead`` | ``escalate_heal`` |
    #: ``escalate_respawn`` | ``checkpoint_abort`` | ``recovered``
    kind: str
    detail: str = ""


@dataclass
class _WorkerView:
    """The detector's per-worker memory between checks."""

    count: int = -1
    since: float = 0.0
    missed: int = 0


class Supervisor:
    """Failure detector + escalation log over worker heartbeats.

    Parameters
    ----------
    beat_timeout:
        seconds without heartbeat progress that count as one *miss*.
        Workers beat at every stage boundary, so this bounds the longest
        healthy silent stretch — size it to the slowest expected stage.
    max_missed:
        consecutive misses before a worker is declared dead. Detection
        latency is therefore ~``beat_timeout * max_missed`` seconds.
    checkpoint_on_abort:
        optional path: when a failure is about to propagate out of the
        backend (``on_failure="raise"``), the survivors' state is
        checkpointed here first so the run can be resumed.
    event_cap:
        the event log is a ring buffer of this many most-recent events, so
        a chaotic multi-day soak (one ``beat_miss`` per flap, forever)
        cannot grow master memory without bound. Evicted events are counted
        in :attr:`events_dropped` and reported by :meth:`summary`.
    """

    def __init__(self, beat_timeout: float = 0.5, max_missed: int = 3,
                 checkpoint_on_abort: str | None = None,
                 event_cap: int = 4096):
        timeout = check_timeout(beat_timeout, "beat_timeout")
        if timeout is None:
            raise ValueError("beat_timeout must be a finite number of seconds")
        self.beat_timeout = timeout
        self.max_missed = check_positive_int(max_missed, "max_missed")
        self.checkpoint_on_abort = checkpoint_on_abort
        self.event_cap = check_positive_int(event_cap, "event_cap")
        self.events: deque[SupervisorEvent] = deque(maxlen=self.event_cap)
        self.events_dropped = 0
        self._views: dict[int, _WorkerView] = {}

    def _record(self, event: SupervisorEvent) -> None:
        if len(self.events) == self.event_cap:
            self.events_dropped += 1
        self.events.append(event)

    # -- detector cadence ------------------------------------------------------
    @property
    def check_interval(self) -> float:
        """How often the gather loop should sample heartbeats [s]."""
        return self.beat_timeout / 2.0

    def begin_wait(self, worker: int, count: int, now: float) -> None:
        """(Re)arm the detector for one worker at the start of a wait.

        Resets the miss count and anchors the progress clock *now*, so idle
        time between rounds is never mistaken for a hang.
        """
        self._views[worker] = _WorkerView(count=int(count), since=now)

    def observe(self, worker: int, count: int, now: float, step: int) -> str:
        """Feed one heartbeat sample; returns ``"ok"``, ``"miss"`` or ``"dead"``.

        ``count`` is the worker's current monotonic beat counter. Progress
        (a changed counter) clears the miss streak; ``beat_timeout`` seconds
        without progress scores one miss; ``max_missed`` consecutive misses
        is a death declaration (recorded, with the streak, in the event
        log). Callers must :meth:`begin_wait` each worker before observing.
        """
        view = self._views.setdefault(worker, _WorkerView(count=int(count), since=now))
        if int(count) != view.count:
            if view.missed:
                self._record(SupervisorEvent(
                    step, worker, "recovered",
                    f"heartbeat resumed after {view.missed} missed windows"))
            view.count = int(count)
            view.since = now
            view.missed = 0
            return "ok"
        if now - view.since < self.beat_timeout:
            return "ok"
        view.missed += 1
        view.since = now
        self._record(SupervisorEvent(
            step, worker, "beat_miss",
            f"no heartbeat progress for {self.beat_timeout:g}s "
            f"(miss {view.missed}/{self.max_missed})"))
        if view.missed >= self.max_missed:
            self._record(SupervisorEvent(
                step, worker, "declared_dead",
                f"{view.missed} consecutive heartbeat misses"))
            return "dead"
        return "miss"

    def note_reply(self, worker: int, now: float) -> None:
        """A full reply arrived — the strongest possible progress signal."""
        view = self._views.get(worker)
        if view is not None:
            view.since = now
            view.missed = 0

    # -- escalation ladder -----------------------------------------------------
    def escalate(self, kind: str, worker: int, step: int, detail: str = "") -> None:
        """Record one escalation rung (``heal``/``respawn``/``abort``)."""
        name = {"heal": "escalate_heal", "respawn": "escalate_respawn",
                "abort": "checkpoint_abort"}.get(kind, kind)
        self._record(SupervisorEvent(step, worker, name, detail))

    # -- reporting --------------------------------------------------------------
    @property
    def misses(self) -> int:
        return sum(1 for e in self.events if e.kind == "beat_miss")

    def event_log(self) -> list[dict]:
        """JSON-ready event log."""
        return [{"step": e.step, "worker_id": e.worker_id, "kind": e.kind,
                 "detail": e.detail} for e in self.events]

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return {
            "beat_timeout": self.beat_timeout,
            "max_missed": self.max_missed,
            "n_events": len(self.events),
            "events_dropped": self.events_dropped,
            "event_counts": counts,
        }

    def __repr__(self) -> str:
        return (f"Supervisor(beat_timeout={self.beat_timeout}, "
                f"max_missed={self.max_missed}, n_events={len(self.events)})")


class HeartbeatHook:
    """Worker-side liveness publisher: one beat per stage boundary.

    Attached to the worker's stage pipelines, it bumps the channel's
    monotonic heartbeat counter as each stage starts and ends — so a worker
    grinding through a long sampling phase keeps advertising progress, and
    one that dies (or hangs) mid-stage goes silent immediately. A
    ``slow_heartbeat`` fault in the worker's
    :class:`~repro.resilience.faults.FaultPlan` suppresses the beats for
    that round while the computation proceeds normally — the
    healthy-but-silent case the chaos suite uses to exercise the detector
    on a worker that would have replied anyway.

    Implements the :class:`repro.engine.StageHook` interface structurally
    (no inheritance) like the other resilience hooks.
    """

    def __init__(self, chan, plan=None, worker_id: int = 0):
        self.chan = chan
        self.plan = plan
        self.worker_id = worker_id

    def _muted(self, state) -> bool:
        if self.plan is None:
            return False
        return any(f.kind == "slow_heartbeat"
                   for f in self.plan.faults_for(self.worker_id, state.k))

    def on_step_start(self, state) -> None:
        if not self._muted(state):
            self.chan.beat(BEAT_CODES["recv"])

    def on_stage_start(self, name: str, state) -> None:
        if not self._muted(state):
            self.chan.beat(BEAT_CODES["stage_start"])

    def on_stage_end(self, name: str, state, elapsed: float) -> None:
        if not self._muted(state):
            self.chan.beat(BEAT_CODES["stage_end"])

    def on_step_end(self, state) -> None:
        if not self._muted(state):
            self.chan.beat(BEAT_CODES["reply"])
