"""Typed failures raised by the fault-tolerant distributed backend.

The failure taxonomy mirrors what a cluster deployment has to distinguish:

- a worker that *stopped answering* but whose process is still alive
  (:class:`WorkerTimeoutError` — a hang, a livelock, a long GC pause),
- a worker whose *process died* or whose pipe broke
  (:class:`WorkerCrashedError` — also covers a structured ``("error", tb)``
  reply carrying the remote traceback),
- the terminal state where *no* worker block survives
  (:class:`NoLiveWorkersError` — nothing left to estimate from).

All three derive from :class:`WorkerFailure`, so callers that only care
about "this step lost a worker" can catch the base class.
"""

from __future__ import annotations


class WorkerFailure(RuntimeError):
    """Base class: a worker block failed during a filtering round.

    Attributes
    ----------
    worker_id:
        index of the failed worker block (``-1`` if not attributable).
    step:
        filtering round ``k`` during which the failure was detected.
    """

    def __init__(self, message: str, worker_id: int = -1, step: int = -1):
        super().__init__(message)
        self.worker_id = int(worker_id)
        self.step = int(step)


class WorkerTimeoutError(WorkerFailure):
    """A worker did not reply within the configured deadline but its
    process is still alive — the hung-worker case."""


class WorkerHeartbeatError(WorkerTimeoutError):
    """A worker stopped publishing liveness heartbeats mid-round and the
    supervisor's failure detector declared it dead — detected *during* a
    long compute phase, before the gather deadline would have fired."""


class WorkerCrashedError(WorkerFailure):
    """A worker process died, its pipe broke, or it reported a remote
    exception via a structured ``("error", traceback)`` reply.

    ``remote_traceback`` carries the worker-side traceback text when one
    was received, else ``None``.
    """

    def __init__(self, message: str, worker_id: int = -1, step: int = -1,
                 remote_traceback: str | None = None):
        super().__init__(message, worker_id, step)
        self.remote_traceback = remote_traceback


class NoLiveWorkersError(WorkerFailure):
    """Every worker block is dead; the filter cannot produce estimates."""


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied (missing file,
    schema mismatch, incompatible configuration)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed integrity verification — truncated zip,
    CRC failure, missing manifest, or content-hash mismatch. The previous
    checkpoint (if any) is unaffected: writes are atomic renames."""
