"""Topology healing: reroute the exchange network around dead sub-filters.

The paper's filter is *local by construction* — the only global couplings
are the neighbour exchange and the estimate reduction — so losing a block
of sub-filters does not invalidate the survivors' state. What must change
is the routing: dead sub-filters have to disappear from every neighbour
table (nobody waits on their particles) and, to keep the exchange graph
connected, their former neighbours are bridged together (a ring with a
dead node contracts back into a smaller ring).

:class:`TopologyHealer` maintains that view incrementally: mark blocks
dead as failures are detected, read back the healed ``(table, mask)`` pair
that the routing kernels consume, and — when a block is respawned — ask
for donors: for each dead slot, the nearest *live* sub-filter by hop count
on the original graph, whose particles seed the replacement (the paper's
exchange primitive reused as a recovery primitive).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.topology.base import ExchangeTopology


class TopologyHealer:
    """Tracks dead sub-filters and serves the rerouted exchange topology.

    Parameters
    ----------
    topology:
        the original (fault-free) exchange topology.
    bridge:
        stitch a dead node's neighbours into a cycle so connectivity is
        preserved (see :meth:`ExchangeTopology.healed_view`). ``False``
        simply drops the dead node's edges.
    """

    def __init__(self, topology: ExchangeTopology, bridge: bool = True):
        self.topology = topology
        self.bridge = bool(bridge)
        self.n_filters = topology.n_filters
        self._dead: set[int] = set()
        self._healed = topology
        self._table = topology.neighbor_table()
        self._mask = self._table >= 0

    # -- state ----------------------------------------------------------------
    @property
    def dead(self) -> tuple[int, ...]:
        """Sorted ids of currently-dead sub-filters."""
        return tuple(sorted(self._dead))

    @property
    def n_dead(self) -> int:
        return len(self._dead)

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness vector, shape ``(n_filters,)``."""
        out = np.ones(self.n_filters, dtype=bool)
        if self._dead:
            out[list(self._dead)] = False
        return out

    def is_alive(self, i: int) -> bool:
        return i not in self._dead

    # -- transitions ------------------------------------------------------------
    def mark_dead(self, ids) -> list[int]:
        """Declare sub-filters dead; returns the ids that were newly dead."""
        newly = [int(i) for i in np.atleast_1d(np.asarray(ids, dtype=np.int64))
                 if int(i) not in self._dead]
        for i in newly:
            if not 0 <= i < self.n_filters:
                raise ValueError(f"sub-filter id {i} out of range")
        if newly:
            self._dead.update(newly)
            self._rebuild()
        return newly

    def revive(self, ids) -> list[int]:
        """Bring respawned sub-filters back into the exchange network."""
        back = [int(i) for i in np.atleast_1d(np.asarray(ids, dtype=np.int64))
                if int(i) in self._dead]
        if back:
            self._dead.difference_update(back)
            self._rebuild()
        return back

    def _rebuild(self) -> None:
        if self._dead:
            self._healed = self.topology.healed_view(self._dead, bridge=self.bridge)
        else:
            self._healed = self.topology
        self._table = self._healed.neighbor_table()
        self._mask = self._table >= 0

    # -- views -------------------------------------------------------------------
    def neighbor_table(self) -> tuple[np.ndarray, np.ndarray]:
        """The healed dense ``(table, mask)`` pair for the routing kernels.

        Dead rows are fully masked (they neither send nor receive) and no
        live row references a dead id.
        """
        return self._table, self._mask

    def healed_topology(self) -> ExchangeTopology:
        """The healed topology object (original object when nothing is dead)."""
        return self._healed

    def donor_map(self, ids=None) -> dict[int, int | None]:
        """Nearest live donor for each dead sub-filter.

        Breadth-first search on the *original* graph from each dead node;
        the first live node reached donates its particles when the slot is
        respawned. ``None`` when no live node is reachable (or none exists).
        Ties at equal hop count resolve to the smallest id, so the mapping
        is deterministic.
        """
        targets = self.dead if ids is None else tuple(int(i) for i in ids)
        out: dict[int, int | None] = {}
        for d in targets:
            out[d] = self._nearest_live(d)
        return out

    def _nearest_live(self, start: int) -> int | None:
        if not self._dead:
            return None
        seen = {start}
        queue = deque([start])
        while queue:
            frontier = sorted(v for u in list(queue) for v in self.topology.neighbors(u)
                              if v not in seen)
            queue.clear()
            for v in frontier:
                if v in seen:
                    continue
                if v not in self._dead:
                    return v
                seen.add(v)
                queue.append(v)
        # Disconnected from every live node: fall back to the smallest live id.
        alive = [i for i in range(self.n_filters) if i not in self._dead]
        return alive[0] if alive else None

    def __repr__(self) -> str:
        return (f"TopologyHealer({self.topology!r}, bridge={self.bridge}, "
                f"n_dead={self.n_dead})")
