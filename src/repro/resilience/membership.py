"""Cluster membership: who is in the group, and which sub-filters they own.

The master loop used to track liveness as a bare ``list[bool]`` and
ownership as fixed ``[w*B, (w+1)*B)`` block arithmetic. :class:`Membership`
makes both first-class so the group can *change shape* mid-run:

- every worker has a status (``init`` → ``live`` → ``dead``) driven by the
  spawn/heartbeat/gather machinery;
- every worker owns an explicit, sorted set of global sub-filter ids — the
  shard assignment — which rebalancing may redistribute;
- every transition is recorded in a bounded event log (ring buffer + dropped
  counter, same discipline as the supervisor's), and bumps an ``epoch`` that
  downstream consumers (shard routing tables, telemetry) use to invalidate
  cached views.

:meth:`rebalance` implements the leader-driven ladder's last rung before
checkpoint-and-abort: a dead worker's sub-filters are dealt one at a time,
in ascending id order, to the live worker that currently owns the fewest
(ties to the lowest worker id) — deterministic, so two masters replaying
the same failure history compute the same assignment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MemberEvent:
    """One membership transition, for forensics and tests."""

    step: int
    worker_id: int
    kind: str  # "join" | "leave" | "evict" | "rebalance" | "adopt"
    detail: str = ""

    def as_dict(self) -> dict:
        return {"step": self.step, "worker_id": self.worker_id,
                "kind": self.kind, "detail": self.detail}


class Membership:
    """Worker statuses + the filter→worker ownership map, with an epoch."""

    def __init__(self, n_filters: int, n_workers: int, assignment=None,
                 event_cap: int = 1024):
        self.n_filters = int(n_filters)
        self.n_workers = int(n_workers)
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if assignment is None:
            if self.n_filters % self.n_workers:
                raise ValueError(
                    f"default contiguous assignment needs n_workers "
                    f"({self.n_workers}) to divide n_filters "
                    f"({self.n_filters})")
            block = self.n_filters // self.n_workers
            assignment = np.repeat(np.arange(self.n_workers, dtype=np.int64),
                                   block)
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.n_filters,):
            raise ValueError(
                f"assignment must have shape ({self.n_filters},), "
                f"got {assignment.shape}")
        self._owned: list[np.ndarray] = [
            np.flatnonzero(assignment == w) for w in range(self.n_workers)]
        self.status: list[str] = ["init"] * self.n_workers
        self.epoch = 0
        self.events: deque[MemberEvent] = deque(maxlen=int(event_cap))
        self.events_dropped = 0

    # -- queries --------------------------------------------------------------
    def owned(self, worker: int) -> np.ndarray:
        """Global sub-filter ids *worker* owns, ascending."""
        return self._owned[worker]

    def is_live(self, worker: int) -> bool:
        return self.status[worker] == "live"

    def live_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if self.status[w] == "live"]

    @property
    def n_live(self) -> int:
        return sum(1 for s in self.status if s == "live")

    def owner_of(self) -> np.ndarray:
        """``(n_filters,)`` map filter → owning worker, ``-1`` if unowned."""
        owner = np.full(self.n_filters, -1, dtype=np.int64)
        for w, ids in enumerate(self._owned):
            owner[ids] = w
        return owner

    def assignment(self) -> np.ndarray:
        """Alias of :meth:`owner_of` — the checkpointable shard assignment."""
        return self.owner_of()

    def live_owner_of(self) -> np.ndarray:
        """Like :meth:`owner_of` but ``-1`` for filters on dead workers."""
        owner = np.full(self.n_filters, -1, dtype=np.int64)
        for w, ids in enumerate(self._owned):
            if self.status[w] == "live":
                owner[ids] = w
        return owner

    # -- transitions ----------------------------------------------------------
    def record(self, step: int, worker: int, kind: str, detail: str = "") -> None:
        if len(self.events) == self.events.maxlen:
            self.events_dropped += 1
        self.events.append(MemberEvent(int(step), int(worker), kind, detail))

    def join(self, worker: int, step: int = -1, detail: str = "") -> None:
        self.status[worker] = "live"
        self.record(step, worker, "join", detail)

    def leave(self, worker: int, step: int = -1, detail: str = "",
              kind: str = "leave") -> None:
        self.status[worker] = "dead"
        self.record(step, worker, kind, detail)

    def evict(self, worker: int, step: int = -1, detail: str = "") -> None:
        self.leave(worker, step, detail, kind="evict")

    def set_owned(self, worker: int, ids) -> None:
        """Replace *worker*'s ownership (checkpoint restore path)."""
        self._owned[worker] = np.sort(np.asarray(ids, dtype=np.int64))
        self.epoch += 1

    def rebalance(self, dead_worker: int, step: int = -1) -> dict[int, np.ndarray]:
        """Deal *dead_worker*'s sub-filters to the live workers.

        Returns ``{survivor: adopted_ids}`` (ascending ids per survivor).
        Deterministic: ids are dealt in ascending order, each to the live
        worker owning the fewest filters at that moment, ties to the lowest
        worker id. The dead worker ends up owning nothing.
        """
        orphans = self._owned[dead_worker]
        live = self.live_workers()
        if not live:
            raise ValueError("rebalance needs at least one live worker")
        loads = {w: int(self._owned[w].size) for w in live}
        adopted: dict[int, list[int]] = {w: [] for w in live}
        for f in orphans.tolist():
            w = min(live, key=lambda w: (loads[w], w))
            adopted[w].append(f)
            loads[w] += 1
        self._owned[dead_worker] = np.empty(0, dtype=np.int64)
        out: dict[int, np.ndarray] = {}
        for w, ids in adopted.items():
            if not ids:
                continue
            arr = np.asarray(ids, dtype=np.int64)
            self._owned[w] = np.sort(np.concatenate([self._owned[w], arr]))
            out[w] = arr
            self.record(step, w, "adopt",
                        f"{arr.size} filters from worker {dead_worker}")
        self.epoch += 1
        self.record(step, dead_worker, "rebalance",
                    f"{orphans.size} filters redistributed over "
                    f"{len(out)} survivors")
        return out

    # -- reporting ------------------------------------------------------------
    def event_log(self) -> list[dict]:
        return [e.as_dict() for e in self.events]

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return {
            "n_workers": self.n_workers,
            "statuses": list(self.status),
            "owned_counts": [int(ids.size) for ids in self._owned],
            "epoch": self.epoch,
            "n_events": len(self.events),
            "events_dropped": self.events_dropped,
            "event_counts": counts,
        }
