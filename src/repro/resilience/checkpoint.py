"""Versioned, atomic run checkpoints: npz arrays + embedded JSON manifest.

A checkpoint captures everything a filtering run needs to resume
*bit-identically* at a step boundary: the particle population, the step
counter, every PRNG's internal state, the healed-topology view (dead mask,
respawn lineage) and the run's resilience/telemetry counters. The file
format is a single ``.npz`` zip holding the arrays plus one extra member,
``manifest.json``, carrying the schema version, the writer's git SHA, a
SHA-256 content hash over the array members, and the backend-specific
metadata (``meta``).

Durability contract
-------------------
Writes are **atomic**: the checkpoint is staged to ``<path>.tmp.<pid>``,
fsynced, and ``os.replace``d over the target in one rename. A crash —
including SIGKILL — at any point before the rename leaves the previous
checkpoint untouched; a crash after the rename leaves the new one complete.
There is never a moment where ``<path>`` holds a partial file.

Integrity contract
------------------
``read_checkpoint`` verifies, in order: the zip container parses (truncation
⇒ :class:`~repro.resilience.errors.CheckpointCorruptError`), the manifest
exists and parses, the schema version is supported, and the recomputed
content hash over every array member matches the manifest (bit-flips ⇒
``CheckpointCorruptError`` — zip CRCs alone would miss flips in an entry's
local header). Corruption is always *detected*, never silently loaded.

The chaos hooks (:func:`corrupt_checkpoint_file`, the ``interrupt_write``
flag) exist so the fault-injection suite can prove both contracts against
real byte-level damage.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile

import numpy as np

from repro.resilience.errors import CheckpointCorruptError, CheckpointError

#: bump when the on-disk layout changes incompatibly.
#: v2 (width-aware allocation): adds the optional ``widths`` array, the
#: ``alloc_counters`` state entry and the ``alloc`` policy-state block.
#: v3 (execution-form dispatch): the config record gains the ``execution``
#: and ``dtype_policy`` fields, and the saved ``states``/``log_weights``
#: arrays carry the policy's dtypes (float32 under a float32 policy).
#: v4 (shard-aware topology): the multiprocess meta records the shard
#: ``assignment`` (sub-filter → worker), the config's ``rng_streams``
#: policy and — under ``rng_streams="filter"`` — per-sub-filter RNG states
#: keyed by global filter id, which is what lets a v4 checkpoint resume
#: bit-identically under a *different* worker/shard count.
CHECKPOINT_SCHEMA_VERSION = 4

#: schema versions this build can still read. v1 checkpoints are the
#: fixed-width layout: no ``widths`` array (every row fully live), no
#: allocation-policy state — both default cleanly on load. v2 predates the
#: execution/dtype-policy config fields, which default to the reference
#: forms and mixed dtypes via :func:`normalize_config_record`. v3 predates
#: shard assignments and per-filter RNG streams, which default to the
#: legacy per-worker policy.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: zip member carrying the JSON manifest (alongside the ``*.npy`` arrays).
MANIFEST_MEMBER = "manifest.json"

_FORMAT = "esthera-checkpoint"


def _git_sha() -> str | None:
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() if out.returncode == 0 else None
    except Exception:
        return None


def _content_hash(zf: zipfile.ZipFile) -> str:
    """SHA-256 over the array members (name + bytes, sorted by name)."""
    h = hashlib.sha256()
    for name in sorted(zf.namelist()):
        if name == MANIFEST_MEMBER:
            continue
        h.update(name.encode())
        h.update(zf.read(name))
    return h.hexdigest()


def write_checkpoint(path: str, arrays: dict[str, np.ndarray], meta: dict,
                     *, interrupt_write: bool = False) -> dict | None:
    """Atomically write a checkpoint; returns the manifest written.

    Parameters
    ----------
    path:
        target checkpoint file. The previous file at this path (if any)
        survives until the final atomic rename.
    arrays:
        named arrays stored as npz members.
    meta:
        JSON-serializable backend metadata stored in the manifest under
        ``"meta"`` (step counter, config record, RNG states, ...).
    interrupt_write:
        chaos hook simulating SIGKILL mid-write: the staging file is left
        truncated and the rename never happens — the function returns
        ``None`` and the previous checkpoint at *path* is untouched. Used
        by the ``ckpt_partial_write`` fault.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    with zipfile.ZipFile(tmp) as zf:
        content_hash = _content_hash(zf)
    manifest = {
        "format": _FORMAT,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "content_hash": content_hash,
        "arrays": sorted(arrays),
        "meta": meta,
    }
    with zipfile.ZipFile(tmp, "a") as zf:
        zf.writestr(MANIFEST_MEMBER, json.dumps(manifest))
    if interrupt_write:
        # Simulated SIGKILL between staging and rename: leave a torn tmp
        # file behind and never touch the target.
        size = os.path.getsize(tmp)
        with open(tmp, "r+b") as fh:
            fh.truncate(max(size // 2, 1))
        return None
    with open(tmp, "rb") as fh:
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Persist the rename itself (directory entry) where the OS allows it.
    try:
        dfd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    return manifest


def read_manifest(path: str) -> dict:
    """The manifest alone (no array loading, no hash verification)."""
    try:
        with zipfile.ZipFile(path) as zf:
            if MANIFEST_MEMBER not in zf.namelist():
                raise CheckpointCorruptError(
                    f"checkpoint {path!r} has no {MANIFEST_MEMBER} member")
            raw = zf.read(MANIFEST_MEMBER)
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path!r} does not exist") from None
    except (zipfile.BadZipFile, OSError, EOFError) as e:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is not a readable zip container: {e}") from e
    try:
        manifest = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} manifest is not valid JSON: {e}") from e
    if manifest.get("format") != _FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} has format {manifest.get('format')!r}, "
            f"expected {_FORMAT!r}")
    version = manifest.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path!r} has schema version {version}, this build "
            f"reads versions {SUPPORTED_SCHEMA_VERSIONS}")
    return manifest


def read_checkpoint(path: str, *, verify: bool = True
                    ) -> tuple[dict[str, np.ndarray], dict]:
    """Load ``(arrays, manifest)``, verifying integrity by default.

    Raises :class:`CheckpointError` for a missing file or unsupported
    schema, :class:`CheckpointCorruptError` for any byte-level damage.
    """
    manifest = read_manifest(path)
    try:
        with zipfile.ZipFile(path) as zf:
            if verify:
                actual = _content_hash(zf)
                expected = manifest.get("content_hash")
                if actual != expected:
                    raise CheckpointCorruptError(
                        f"checkpoint {path!r} content hash mismatch "
                        f"(expected {expected}, got {actual})")
            arrays: dict[str, np.ndarray] = {}
            for name in manifest.get("arrays", ()):
                member = f"{name}.npy"
                with zf.open(member) as fh:
                    arrays[name] = np.load(io.BytesIO(fh.read()),
                                           allow_pickle=False)
    except KeyError as e:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is missing an array member: {e}") from e
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as e:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} failed to load: {e}") from e
    return arrays, manifest


# ---------------------------------------------------------------------------
# Single-process filter checkpointing (vectorized filter, sequential oracle).
# ---------------------------------------------------------------------------


def save_filter_checkpoint(filt, path: str, backend: str) -> dict:
    """Checkpoint a single-process filter: population + RNG + step counter.

    The filter's whole future is determined by its
    :class:`~repro.engine.state.FilterState` and the internal state of its
    RNG, so capturing both at a step boundary makes the resumed run
    bit-identical to an uninterrupted one.
    """
    from repro.core.parameters import distributed_config_to_dict

    if filt.states is None:
        raise CheckpointError("cannot checkpoint before the filter initialized")
    arrays, state_meta = filt._state.to_checkpoint()
    meta = {
        "backend": backend,
        "boundary": True,
        "k": int(filt._state.k),
        "config": distributed_config_to_dict(filt.config),
        "rng": filt.rng.state_dict(),
        "state": state_meta,
    }
    alloc_policy = getattr(filt, "alloc_policy", None)
    if alloc_policy is not None and alloc_policy.name != "fixed":
        meta["alloc"] = {"policy": alloc_policy.name,
                         "state": alloc_policy.state_dict()}
    return write_checkpoint(path, arrays, meta)


def normalize_config_record(record: dict) -> dict:
    """A saved distributed-config dict, normalized for comparison.

    Round-tripping through the dataclass fills in fields introduced after
    the checkpoint was written (a schema-v1 record carries no allocation
    fields), so an old fixed-width checkpoint still compares equal to a
    config that only differs in the new defaults.
    """
    from repro.core.parameters import (
        distributed_config_from_dict,
        distributed_config_to_dict,
    )

    try:
        return distributed_config_to_dict(distributed_config_from_dict(record))
    except (TypeError, ValueError):
        return dict(record)


def load_filter_checkpoint(filt, path: str, backend: str) -> dict:
    """Restore a :func:`save_filter_checkpoint` snapshot into *filt*."""
    from repro.core.parameters import distributed_config_to_dict

    arrays, manifest = read_checkpoint(path)
    meta = manifest["meta"]
    if meta.get("backend") != backend:
        raise CheckpointError(
            f"checkpoint was written by backend {meta.get('backend')!r}, "
            f"not {backend!r}")
    saved_cfg = normalize_config_record(meta.get("config", {}))
    if saved_cfg != distributed_config_to_dict(filt.config):
        raise CheckpointError(
            "checkpoint configuration does not match this filter's configuration")
    filt._state.restore_checkpoint(arrays, meta["state"])
    filt.rng.load_state_dict(meta["rng"])
    alloc = meta.get("alloc")
    alloc_policy = getattr(filt, "alloc_policy", None)
    if alloc and alloc_policy is not None:
        if alloc.get("policy") != alloc_policy.name:
            raise CheckpointError(
                f"checkpoint allocation policy {alloc.get('policy')!r} does "
                f"not match this filter's {alloc_policy.name!r}")
        alloc_policy.load_state_dict(alloc.get("state", {}))
    return manifest


# ---------------------------------------------------------------------------
# Chaos hooks: byte-level damage for the fault-injection suite.
# ---------------------------------------------------------------------------


def corrupt_checkpoint_file(path: str, rng: np.random.Generator,
                            mode: str = "corrupt", fraction: float = 0.01) -> int:
    """Damage a written checkpoint in place; returns bytes affected.

    ``mode="corrupt"`` flips a seeded sample of bytes in the middle half of
    the file (where the array payloads live); ``mode="truncate"`` cuts the
    file to 60% of its length. Both must be *detected* by
    :func:`read_checkpoint` — that detection is what the chaos suite
    asserts.
    """
    size = os.path.getsize(path)
    if mode == "truncate":
        new_size = max(int(size * 0.6), 1)
        with open(path, "r+b") as fh:
            fh.truncate(new_size)
        return size - new_size
    if mode != "corrupt":
        raise ValueError(f"mode must be 'corrupt' or 'truncate', got {mode!r}")
    lo, hi = size // 4, max(size * 3 // 4, size // 4 + 1)
    n = max(1, int((hi - lo) * fraction))
    offsets = rng.choice(hi - lo, size=min(n, hi - lo), replace=False) + lo
    with open(path, "r+b") as fh:
        for off in sorted(int(o) for o in offsets):
            fh.seek(off)
            byte = fh.read(1)
            fh.seek(off)
            fh.write(bytes([byte[0] ^ 0xFF]))
    return len(offsets)
