"""Fault tolerance for the distributed particle filter.

The paper's algorithm is *local by construction*: every operation except
the neighbour exchange and the estimate reduction is confined to one
sub-filter. This package turns that structural property into an actual
runtime guarantee — losing a sub-filter block degrades accuracy instead of
halting the system:

- :mod:`repro.resilience.faults` — a seeded, replayable fault-injection
  layer (:class:`FaultPlan`): kill/hang/delay workers, poison weights with
  NaN/-inf, corrupt exchanged particles.
- :mod:`repro.resilience.healing` — :class:`TopologyHealer` reroutes the
  exchange graph around dead sub-filters and names donor neighbours for
  respawned blocks.
- :mod:`repro.resilience.monitor` — :class:`ResilienceReport` accounts for
  every failure, retry, rescue and respawn.
- :mod:`repro.resilience.errors` — the typed failure taxonomy
  (:class:`WorkerTimeoutError`, :class:`WorkerCrashedError`, ...).

See ``docs/robustness.md`` for the failure model and the degraded-accuracy
contract, and ``examples/chaos_tracking.py`` for an end-to-end chaos run.
"""

from repro.resilience.errors import (
    NoLiveWorkersError,
    WorkerCrashedError,
    WorkerFailure,
    WorkerTimeoutError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    KILL_EXIT_CODE,
    Fault,
    FaultInjectionHook,
    FaultPlan,
    apply_process_faults,
    corrupt_send_states,
    poison_log_weights,
)
from repro.resilience.healing import TopologyHealer
from repro.resilience.monitor import HealMonitorHook, ResilienceReport, WorkerFailureEvent

__all__ = [
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "Fault",
    "FaultInjectionHook",
    "FaultPlan",
    "HealMonitorHook",
    "NoLiveWorkersError",
    "ResilienceReport",
    "TopologyHealer",
    "WorkerCrashedError",
    "WorkerFailure",
    "WorkerFailureEvent",
    "WorkerTimeoutError",
    "apply_process_faults",
    "corrupt_send_states",
    "poison_log_weights",
]
