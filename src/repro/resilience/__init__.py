"""Fault tolerance for the distributed particle filter.

The paper's algorithm is *local by construction*: every operation except
the neighbour exchange and the estimate reduction is confined to one
sub-filter. This package turns that structural property into an actual
runtime guarantee — losing a sub-filter block degrades accuracy instead of
halting the system:

- :mod:`repro.resilience.faults` — a seeded, replayable fault-injection
  layer (:class:`FaultPlan`): kill/hang/delay workers, poison weights with
  NaN/-inf, corrupt exchanged particles.
- :mod:`repro.resilience.healing` — :class:`TopologyHealer` reroutes the
  exchange graph around dead sub-filters and names donor neighbours for
  respawned blocks.
- :mod:`repro.resilience.monitor` — :class:`ResilienceReport` accounts for
  every failure, retry, heartbeat miss, rescue, respawn and checkpoint.
- :mod:`repro.resilience.retry` — the shared :class:`RetryPolicy` /
  :class:`Deadline` / :class:`Backoff` waiting discipline every
  master↔worker path runs on.
- :mod:`repro.resilience.supervisor` — :class:`Supervisor` (heartbeat
  failure detector + escalation event log) and the worker-side
  :class:`HeartbeatHook` liveness publisher.
- :mod:`repro.resilience.checkpoint` — atomic, versioned run snapshots
  with bit-identical resume (npz arrays + embedded JSON manifest).
- :mod:`repro.resilience.errors` — the typed failure taxonomy
  (:class:`WorkerTimeoutError`, :class:`WorkerCrashedError`,
  :class:`WorkerHeartbeatError`, :class:`CheckpointError`, ...).

See ``docs/robustness.md`` for the failure model and the degraded-accuracy
contract, and ``examples/chaos_tracking.py`` for an end-to-end chaos run.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    corrupt_checkpoint_file,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.resilience.errors import (
    CheckpointCorruptError,
    CheckpointError,
    NoLiveWorkersError,
    WorkerCrashedError,
    WorkerFailure,
    WorkerHeartbeatError,
    WorkerTimeoutError,
)
from repro.resilience.faults import (
    CHECKPOINT_FAULT_KINDS,
    FAULT_KINDS,
    KILL_EXIT_CODE,
    Fault,
    FaultInjectionHook,
    FaultPlan,
    apply_process_faults,
    corrupt_send_states,
    poison_log_weights,
)
from repro.resilience.healing import TopologyHealer
from repro.resilience.monitor import HealMonitorHook, ResilienceReport, WorkerFailureEvent
from repro.resilience.retry import Backoff, Deadline, RetryPolicy
from repro.resilience.supervisor import HeartbeatHook, Supervisor, SupervisorEvent

__all__ = [
    "CHECKPOINT_FAULT_KINDS",
    "CHECKPOINT_SCHEMA_VERSION",
    "Backoff",
    "CheckpointCorruptError",
    "CheckpointError",
    "Deadline",
    "FAULT_KINDS",
    "Fault",
    "FaultInjectionHook",
    "FaultPlan",
    "HealMonitorHook",
    "HeartbeatHook",
    "KILL_EXIT_CODE",
    "NoLiveWorkersError",
    "ResilienceReport",
    "RetryPolicy",
    "Supervisor",
    "SupervisorEvent",
    "TopologyHealer",
    "WorkerCrashedError",
    "WorkerFailure",
    "WorkerFailureEvent",
    "WorkerHeartbeatError",
    "WorkerTimeoutError",
    "apply_process_faults",
    "corrupt_checkpoint_file",
    "corrupt_send_states",
    "poison_log_weights",
    "read_checkpoint",
    "read_manifest",
    "write_checkpoint",
]
