"""Resilience diagnostics: what failed, when, and what the system did.

Every fault-tolerant run accumulates a :class:`ResilienceReport` so that a
degraded result is *attributable*: which worker blocks died at which round
and why, how many recv retries / timeouts occurred, how many particles were
neutralized for non-finite weights or states, and how many sub-filters were
rejuvenated from neighbours or respawned. ``summary()`` returns a JSON-ready
record for experiment logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkerFailureEvent:
    """One detected worker-block failure."""

    step: int
    worker_id: int
    kind: str  # "timeout" | "crash" | "error"
    detail: str = ""
    #: sub-filter ids the failed block owned.
    filters: tuple[int, ...] = ()


@dataclass
class ResilienceReport:
    """Mutable accumulator of fault-tolerance events for one run."""

    failures: list[WorkerFailureEvent] = field(default_factory=list)
    #: recv attempts that had to wait past one poll window (transient slowness).
    retries: int = 0
    #: recv deadlines that fully expired.
    timeouts: int = 0
    #: particles whose weight was forced to -inf (NaN weight / non-finite state).
    sanitized_particles: int = 0
    #: sub-filter rows rescued after losing every finite weight.
    rejuvenated_filters: int = 0
    #: worker blocks respawned from neighbour donors.
    respawns: int = 0
    #: shared-memory segments reclaimed (closed + unlinked) on the failure
    #: path — i.e. slabs of workers that died mid-run; normal shutdown
    #: reclaims are not counted.
    segments_reclaimed: int = 0
    #: heartbeat windows that expired without liveness progress (transient).
    heartbeat_misses: int = 0
    #: workers declared dead by the heartbeat failure detector.
    heartbeat_failures: int = 0
    #: checkpoints written (including checkpoint-on-abort saves).
    checkpoints_saved: int = 0
    #: checkpoints loaded into this run.
    checkpoints_restored: int = 0
    #: escalation-ladder rungs taken, keyed ``retry``/``heal``/``respawn``/
    #: ``abort`` — how far recovery had to climb, not just that it happened.
    escalations: dict[str, int] = field(default_factory=dict)

    def record_failure(self, step: int, worker_id: int, kind: str,
                       detail: str = "", filters=()) -> WorkerFailureEvent:
        event = WorkerFailureEvent(step=int(step), worker_id=int(worker_id),
                                   kind=str(kind), detail=str(detail),
                                   filters=tuple(int(f) for f in filters))
        self.failures.append(event)
        return event

    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Worker ids with at least one recorded failure (sorted, unique)."""
        return tuple(sorted({e.worker_id for e in self.failures}))

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def merge_worker_stats(self, stats: dict) -> None:
        """Fold a worker's per-round self-healing counters into the report."""
        self.sanitized_particles += int(stats.get("sanitized", 0))
        self.rejuvenated_filters += int(stats.get("rejuvenated", 0))

    def record_escalation(self, rung: str) -> None:
        """Count one climb of the escalation ladder (``heal``, ``respawn``, ...)."""
        self.escalations[rung] = self.escalations.get(rung, 0) + 1

    def summary(self) -> dict:
        """JSON-ready snapshot."""
        return {
            "n_failures": self.n_failures,
            "dead_workers": list(self.dead_workers),
            "failures": [
                {"step": e.step, "worker_id": e.worker_id, "kind": e.kind,
                 "detail": e.detail, "filters": list(e.filters)}
                for e in self.failures
            ],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "sanitized_particles": self.sanitized_particles,
            "rejuvenated_filters": self.rejuvenated_filters,
            "respawns": self.respawns,
            "segments_reclaimed": self.segments_reclaimed,
            "heartbeat_misses": self.heartbeat_misses,
            "heartbeat_failures": self.heartbeat_failures,
            "checkpoints_saved": self.checkpoints_saved,
            "checkpoints_restored": self.checkpoints_restored,
            "escalations": dict(self.escalations),
        }

    @classmethod
    def from_summary(cls, record: dict) -> "ResilienceReport":
        """Rebuild a report from a :meth:`summary` record (checkpoint restore).

        Tolerates records written by older builds: counters absent from the
        record default to zero, so a report survives schema growth.
        """
        report = cls()
        for row in record.get("failures", ()):
            report.record_failure(row.get("step", 0), row.get("worker_id", 0),
                                  row.get("kind", "crash"),
                                  detail=row.get("detail", ""),
                                  filters=row.get("filters", ()))
        for name in ("retries", "timeouts", "sanitized_particles",
                     "rejuvenated_filters", "respawns", "segments_reclaimed",
                     "heartbeat_misses", "heartbeat_failures",
                     "checkpoints_saved", "checkpoints_restored"):
            setattr(report, name, int(record.get(name, 0)))
        report.escalations = {str(k): int(v)
                              for k, v in (record.get("escalations") or {}).items()}
        return report


class HealMonitorHook:
    """Watches the heal stage and keeps per-round self-healing deltas.

    Attached to a pipeline, it snapshots ``state.heal_counters`` when the
    heal stage starts and publishes the round's delta in :attr:`last_round`
    (plus cumulative :attr:`totals`). Multiprocess workers ship
    ``last_round`` back to the master, which folds it into the run's
    :class:`ResilienceReport` via :meth:`ResilienceReport.merge_worker_stats`
    — resilience monitoring as an observer instead of inline bookkeeping.
    """

    def __init__(self, tracer=None):
        self.last_round: dict[str, int] = {}
        self.totals: dict[str, int] = {}
        self._before: dict[str, int] = {}
        self.tracer = tracer

    def on_step_start(self, state) -> None:
        pass

    def on_stage_start(self, name: str, state) -> None:
        if name == "heal":
            self._before = dict(state.heal_counters)

    def on_stage_end(self, name: str, state, elapsed: float) -> None:
        if name != "heal":
            return
        self.last_round = {
            key: int(value) - int(self._before.get(key, 0))
            for key, value in state.heal_counters.items()
        }
        for key, value in self.last_round.items():
            self.totals[key] = self.totals.get(key, 0) + value
            if value and self.tracer is not None:
                self.tracer.count(f"heal.{key}", value)

    def on_step_end(self, state) -> None:
        pass
