"""Resilience diagnostics: what failed, when, and what the system did.

Every fault-tolerant run accumulates a :class:`ResilienceReport` so that a
degraded result is *attributable*: which worker blocks died at which round
and why, how many recv retries / timeouts occurred, how many particles were
neutralized for non-finite weights or states, and how many sub-filters were
rejuvenated from neighbours or respawned. ``summary()`` returns a JSON-ready
record for experiment logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkerFailureEvent:
    """One detected worker-block failure."""

    step: int
    worker_id: int
    kind: str  # "timeout" | "crash" | "error"
    detail: str = ""
    #: sub-filter ids the failed block owned.
    filters: tuple[int, ...] = ()


@dataclass
class ResilienceReport:
    """Mutable accumulator of fault-tolerance events for one run."""

    failures: list[WorkerFailureEvent] = field(default_factory=list)
    #: recv attempts that had to wait past one poll window (transient slowness).
    retries: int = 0
    #: recv deadlines that fully expired.
    timeouts: int = 0
    #: particles whose weight was forced to -inf (NaN weight / non-finite state).
    sanitized_particles: int = 0
    #: sub-filter rows rescued after losing every finite weight.
    rejuvenated_filters: int = 0
    #: worker blocks respawned from neighbour donors.
    respawns: int = 0

    def record_failure(self, step: int, worker_id: int, kind: str,
                       detail: str = "", filters=()) -> WorkerFailureEvent:
        event = WorkerFailureEvent(step=int(step), worker_id=int(worker_id),
                                   kind=str(kind), detail=str(detail),
                                   filters=tuple(int(f) for f in filters))
        self.failures.append(event)
        return event

    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Worker ids with at least one recorded failure (sorted, unique)."""
        return tuple(sorted({e.worker_id for e in self.failures}))

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def merge_worker_stats(self, stats: dict) -> None:
        """Fold a worker's per-round self-healing counters into the report."""
        self.sanitized_particles += int(stats.get("sanitized", 0))
        self.rejuvenated_filters += int(stats.get("rejuvenated", 0))

    def summary(self) -> dict:
        """JSON-ready snapshot."""
        return {
            "n_failures": self.n_failures,
            "dead_workers": list(self.dead_workers),
            "failures": [
                {"step": e.step, "worker_id": e.worker_id, "kind": e.kind,
                 "detail": e.detail, "filters": list(e.filters)}
                for e in self.failures
            ],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "sanitized_particles": self.sanitized_particles,
            "rejuvenated_filters": self.rejuvenated_filters,
            "respawns": self.respawns,
        }
