"""Per-stage observer hooks.

A :class:`StageHook` watches a :class:`~repro.engine.pipeline.StepPipeline`
run without being part of the computation: timing, device cost accounting
and resilience monitoring all attach here instead of living inline in the
backends. Hooks receive the stage name, the live :class:`FilterState` (use
its snapshot accessors; do not mutate) and the measured elapsed seconds.
"""

from __future__ import annotations

from repro.engine.state import FilterState
from repro.metrics.timing import PhaseTimer


class StageHook:
    """Base observer; all callbacks are optional no-ops."""

    def on_step_start(self, state: FilterState) -> None:
        pass

    def on_stage_start(self, name: str, state: FilterState) -> None:
        pass

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        pass

    def on_step_end(self, state: FilterState) -> None:
        pass


class TimerHook(StageHook):
    """Feeds stage durations into a :class:`PhaseTimer`.

    The phase is opened on stage start and closed on stage end through the
    timer's own stack so that nested phases — ``rand`` opened by
    :class:`~repro.metrics.timing.TimingRNG` inside model code — are still
    subtracted from the enclosing stage, exactly as the paper's separate
    PRNG kernel demands.
    """

    def __init__(self, timer: PhaseTimer | None = None):
        self.timer = timer if timer is not None else PhaseTimer()

    def on_stage_start(self, name: str, state: FilterState) -> None:
        self.timer.start(name)

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self.timer.stop()


class KernelTimingHook(StageHook):
    """Aggregates per-kernel wall time across backends.

    :meth:`~repro.engine.stage.ExecutionContext.invoke_kernel` appends
    ``(kernel_name, elapsed)`` events to ``state.kernel_events``; this hook
    drains them at every stage end, so ``kernel_seconds``/``kernel_calls``
    accumulate uniformly whether the pipeline is vectorized, loop-based or a
    multiprocess worker's.
    """

    def __init__(self):
        self.kernel_seconds: dict[str, float] = {}
        self.kernel_calls: dict[str, int] = {}

    def _drain(self, state: FilterState) -> None:
        events = getattr(state, "kernel_events", None)
        if not events:
            return
        for name, elapsed in events:
            self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + elapsed
            self.kernel_calls[name] = self.kernel_calls.get(name, 0) + 1
        events.clear()

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self._drain(state)

    def on_step_end(self, state: FilterState) -> None:
        self._drain(state)


class RecordingHook(StageHook):
    """Records the observed event sequence; used by tests and debugging."""

    def __init__(self):
        self.events: list[tuple] = []

    def on_step_start(self, state: FilterState) -> None:
        self.events.append(("step_start", state.k))

    def on_stage_start(self, name: str, state: FilterState) -> None:
        self.events.append(("start", name))

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self.events.append(("end", name, elapsed))

    def on_step_end(self, state: FilterState) -> None:
        self.events.append(("step_end", state.k))
