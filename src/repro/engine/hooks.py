"""Per-stage observer hooks.

A :class:`StageHook` watches a :class:`~repro.engine.pipeline.StepPipeline`
run without being part of the computation: timing, device cost accounting
and resilience monitoring all attach here instead of living inline in the
backends. Hooks receive the stage name, the live :class:`FilterState` (use
its snapshot accessors; do not mutate) and the measured elapsed seconds.

Since the telemetry refactor, the built-in hooks are thin adapters onto the
:mod:`repro.telemetry` spine: each one keeps its legacy accumulator — the
:class:`PhaseTimer`, the ``kernel_seconds``/``kernel_calls`` dicts — exactly
as before (those accessors are part of the golden-trace contract), and
*additionally* emits spans and counters into an attached
:class:`~repro.telemetry.Tracer`. With no tracer (or a disabled one) the
emission short-circuits to a single attribute check, so the hook path costs
what it did before the spine existed.
"""

from __future__ import annotations

from repro.engine.state import FilterState
from repro.metrics.timing import PhaseTimer


class StageHook:
    """Base observer; all callbacks are optional no-ops.

    A raising hook never aborts or corrupts the filter step: the pipeline
    isolates every callback, counts failures in its ``telemetry_errors``
    counter and warns once per site (see :meth:`StepPipeline.fire`).
    """

    def on_step_start(self, state: FilterState) -> None:
        pass

    def on_stage_start(self, name: str, state: FilterState) -> None:
        pass

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        pass

    def on_step_end(self, state: FilterState) -> None:
        pass


class TimerHook(StageHook):
    """Feeds stage durations into a :class:`PhaseTimer`, and spans into a tracer.

    The phase is opened on stage start and closed on stage end through the
    timer's own stack so that nested phases — ``rand`` opened by
    :class:`~repro.metrics.timing.TimingRNG` inside model code — are still
    subtracted from the enclosing stage, exactly as the paper's separate
    PRNG kernel demands. When a :class:`~repro.telemetry.Tracer` is attached
    and enabled, the same start/stop pair also opens/closes a ``stage`` span
    (and the full step gets a ``step`` span), making this hook the timeline
    adapter for every pipeline-driven backend. The :class:`PhaseTimer`
    remains the legacy accessor: its ``seconds``/``fractions()`` values are
    byte-for-byte what they were before the telemetry spine existed.
    """

    def __init__(self, timer: PhaseTimer | None = None, tracer=None,
                 span_attrs: dict | None = None):
        self.timer = timer if timer is not None else PhaseTimer()
        self.tracer = tracer
        #: extra attributes stamped on every ``step`` span (e.g. the active
        #: execution form / dtype policy). ``None`` keeps step spans
        #: byte-identical to builds that predate execution-form dispatch.
        self.span_attrs = span_attrs

    def on_step_start(self, state: FilterState) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            if self.span_attrs:
                tracer.begin(f"step {state.k}", "step", k=state.k,
                             **self.span_attrs)
            else:
                tracer.begin(f"step {state.k}", "step", k=state.k)

    def on_stage_start(self, name: str, state: FilterState) -> None:
        self.timer.start(name)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(name, "stage")

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self.timer.stop()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.end()

    def on_step_end(self, state: FilterState) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.end()


class KernelTimingHook(StageHook):
    """Aggregates per-kernel wall time across backends.

    :meth:`~repro.engine.stage.ExecutionContext.invoke_kernel` appends
    ``(kernel_name, elapsed, start)`` events to ``state.kernel_events``; this
    hook drains them at every stage end, so ``kernel_seconds``/
    ``kernel_calls`` accumulate uniformly whether the pipeline is vectorized,
    loop-based or a multiprocess worker's. With a tracer attached and
    enabled, every drained event additionally becomes a ``kernel`` span with
    its real timestamps — annotated with the registered cost signature's
    flops/bytes when ``cost_params`` (a
    :class:`~repro.kernels.registry.CostParams` or a zero-arg callable
    returning one) is provided.
    """

    def __init__(self, tracer=None, cost_params=None):
        self.kernel_seconds: dict[str, float] = {}
        self.kernel_calls: dict[str, int] = {}
        self.tracer = tracer
        self.cost_params = cost_params
        self._attr_cache: dict[tuple, dict | None] = {}

    def _cost_attrs(self, name: str) -> dict | None:
        if self.cost_params is None:
            return None
        params = self.cost_params() if callable(self.cost_params) else self.cost_params
        # Keyed by (name, m): under adaptive allocation the live width moves
        # between rounds and each kernel must be charged at the width it
        # actually ran at, not the first round's.
        key = (name, params.m)
        if key not in self._attr_cache:
            from repro.kernels.registry import kernel_cost_attrs

            self._attr_cache[key] = kernel_cost_attrs(name, params)
        return self._attr_cache[key]

    def _drain(self, state: FilterState) -> None:
        events = getattr(state, "kernel_events", None)
        if not events:
            return
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        for event in events:
            name, elapsed = event[0], event[1]
            self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + elapsed
            self.kernel_calls[name] = self.kernel_calls.get(name, 0) + 1
            if tracing and len(event) > 2:
                start = event[2]
                tracer.add(name, "kernel", start, start + elapsed,
                           attrs=self._cost_attrs(name))
        events.clear()

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self._drain(state)

    def on_step_end(self, state: FilterState) -> None:
        self._drain(state)


class AllocationTelemetryHook(StageHook):
    """Publishes per-sub-filter population health into the tracer.

    At every step end it reads the metrics the resample stage captured on
    the :class:`FilterState` — pre-resample per-sub-filter ESS and weight-
    mass share — and the cumulative allocation counters, and emits:

    - ``alloc.particles_migrated`` / ``alloc.width_changes`` — cumulative
      counters (the hook tracks deltas, so re-entrant steps never
      double-count);
    - ``alloc.ess.f<i>`` — gauge: each sub-filter's latest pre-resample ESS;
    - ``alloc.width.f<i>`` — gauge: each sub-filter's live width (only when
      the population is ragged);
    - ``alloc.mass_hhi`` — gauge: the Herfindahl concentration of the
      weight-mass shares (1/F = balanced, 1.0 = one sub-filter holds all
      the mass).

    Unlike spans, counters are always live, but the whole emission is
    skipped when no tracer is attached or the state never captured metrics
    (loop backends without a resample stage run).
    """

    def __init__(self, tracer=None):
        self.tracer = tracer
        self._seen: dict[str, int] = {}

    def on_step_end(self, state: FilterState) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        for key, total in state.alloc_counters.items():
            delta = int(total) - self._seen.get(key, 0)
            if delta:
                tracer.count(f"alloc.{key}", delta)
                self._seen[key] = int(total)
        ess = state.round_ess
        if ess is not None:
            for i, value in enumerate(ess):
                tracer.gauge(f"alloc.ess.f{i}", value)
        share = state.round_mass_share
        if share is not None:
            from repro.allocation.metrics import mass_concentration

            tracer.gauge("alloc.mass_hhi", mass_concentration(share))
        if state.widths is not None and state.ragged:
            for i, w in enumerate(state.widths):
                tracer.gauge(f"alloc.width.f{i}", int(w))


class RecordingHook(StageHook):
    """Records the observed event sequence; used by tests and debugging."""

    def __init__(self):
        self.events: list[tuple] = []

    def on_step_start(self, state: FilterState) -> None:
        self.events.append(("step_start", state.k))

    def on_stage_start(self, name: str, state: FilterState) -> None:
        self.events.append(("start", name))

    def on_stage_end(self, name: str, state: FilterState, elapsed: float) -> None:
        self.events.append(("end", name, elapsed))

    def on_step_end(self, state: FilterState) -> None:
        self.events.append(("step_end", state.k))
