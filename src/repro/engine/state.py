"""The filtering state shared by every execution backend.

:class:`FilterState` is the single mutable container Algorithm 2's stages
operate on: the particle population, the step counter, the numerical
self-healing counters, and the per-round scratch slots (measurement, pooled
candidate sets, estimate) that stages hand to one another. Hooks observe it
through read-only snapshot accessors rather than reaching into backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _fresh_heal_counters() -> dict[str, int]:
    return {"sanitized": 0, "rejuvenated": 0}


def _fresh_alloc_counters() -> dict[str, int]:
    return {"particles_migrated": 0, "width_changes": 0}


@dataclass
class FilterState:
    """Mutable state of one distributed-filter population.

    Attributes
    ----------
    states:
        ``(n_filters, m, state_dim)`` particle states (``None`` before
        :meth:`reset` / the owning filter's ``initialize``).
    log_weights:
        ``(n_filters, m)`` float64 log importance weights.
    k:
        the current time step (number of completed rounds).
    heal_counters:
        cumulative numerical self-healing counters (``sanitized`` particles,
        ``rejuvenated`` sub-filters).
    last_estimate:
        the most recent global estimate.

    The remaining fields are per-round scratch written and read by stages:
    ``measurement``/``control`` (set by the pipeline before the first stage),
    ``estimate`` (written by the estimate stage), ``pooled_states``/
    ``pooled_logw`` (written by the exchange stage, consumed by resampling).
    For the loop-based oracle the pooled slots hold per-sub-filter Python
    lists instead of batched arrays — stages of one backend family agree on
    the representation, the container does not care.
    """

    states: np.ndarray | None = None
    log_weights: np.ndarray | None = None
    k: int = 0
    heal_counters: dict[str, int] = field(default_factory=_fresh_heal_counters)
    last_estimate: np.ndarray | None = None
    #: per-sub-filter live widths ``m_i`` for the padded ``(F, m_max, d)``
    #: layout (``None`` means every row is full — the classic fixed layout).
    #: Live particles occupy slots ``[0, m_i)``; padded slots hold copies of
    #: real particles at ``-inf`` log-weight (see :mod:`repro.allocation`).
    widths: np.ndarray | None = None
    #: cumulative allocation counters (particles migrated between widths,
    #: number of per-sub-filter width changes applied).
    alloc_counters: dict[str, int] = field(default_factory=_fresh_alloc_counters)

    # -- per-round scratch, owned by the stages --------------------------------
    measurement: np.ndarray | None = None
    control: np.ndarray | None = None
    estimate: np.ndarray | None = None
    pooled_states: object = None
    pooled_logw: object = None
    #: per-sub-filter pre-resample health metrics, written by the resample
    #: stage (weights are reset by resampling, so they must be captured
    #: there) and consumed by the allocation stage / telemetry hooks.
    round_ess: np.ndarray | None = None
    round_mass_share: np.ndarray | None = None
    #: bool (F,) mask of rows the resample stage actually resampled.
    resampled_mask: np.ndarray | None = None
    #: ``(kernel_name, elapsed_seconds)`` events appended by
    #: :meth:`~repro.engine.stage.ExecutionContext.invoke_kernel`; drained by
    #: :class:`~repro.engine.hooks.KernelTimingHook` at every stage end.
    kernel_events: list = field(default_factory=list)
    #: keyed pool of reusable work buffers (see :meth:`scratch`); survives
    #: across rounds so the steady-state hot path is allocation-free.
    _scratch: dict = field(default_factory=dict, repr=False)
    #: optional cap (bytes) on the bytes the scratch pool may retain; the
    #: least-recently-used buffers are dropped past it. ``None`` (the
    #: default) keeps the historical unbounded behaviour — long-lived
    #: session servers set a cap so shape churn cannot grow the pool
    #: without bound.
    scratch_cap_bytes: int | None = None
    _scratch_bytes: int = field(default=0, repr=False)
    _scratch_hits: int = field(default=0, repr=False)
    _scratch_misses: int = field(default=0, repr=False)
    _scratch_evictions: int = field(default=0, repr=False)

    def reset(self, states: np.ndarray, log_weights: np.ndarray,
              widths: np.ndarray | None = None) -> None:
        """Install a fresh population and clear counters/scratch."""
        self.states = states
        self.log_weights = log_weights
        self.widths = None if widths is None else np.asarray(widths, dtype=np.int64)
        self.k = 0
        self.heal_counters = _fresh_heal_counters()
        self.alloc_counters = _fresh_alloc_counters()
        self.last_estimate = None
        self._scratch = {}
        self._scratch_bytes = 0
        self.clear_round()

    # -- reusable work buffers --------------------------------------------------
    def scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable uninitialised buffer of the given shape/dtype.

        The pool is keyed by ``(key, shape, dtype)``, so a float32 request
        can never be served a float64 buffer that happens to sit under the
        same name (dtype-policy safety: a recycled buffer of the wrong
        precision would otherwise silently upcast a whole round). Buffers
        persist across rounds, so stages that call this every step allocate
        only on the first round (or when the shape or dtype changes).
        Contents are garbage — callers must overwrite fully.
        """
        dtype = np.dtype(dtype)
        pool_key = (key, tuple(shape), dtype)
        arr = self._scratch.get(pool_key)
        if arr is None:
            self._scratch_misses += 1
            arr = np.empty(shape, dtype=dtype)
            self._scratch[pool_key] = arr
            self._scratch_bytes += arr.nbytes
            self._enforce_scratch_cap(pool_key)
        else:
            self._scratch_hits += 1
            # Refresh recency (dicts preserve insertion order, so the pool
            # doubles as an LRU list: oldest entries sit at the front).
            del self._scratch[pool_key]
            self._scratch[pool_key] = arr
        return arr

    def recycle(self, key: str, arr: np.ndarray) -> None:
        """Donate *arr* as the next buffer served for *key* (ping-pong reuse).

        Used after an out-of-place gather: the freshly filled scratch buffer
        becomes the live array and the *old* live array is recycled here, so
        the next round's :meth:`scratch` never hands back a buffer aliasing
        its own input. The donated array is keyed by its *own* shape and
        dtype — a later :meth:`scratch` call only receives it when both
        match exactly.
        """
        pool_key = (key, arr.shape, arr.dtype)
        old = self._scratch.pop(pool_key, None)
        if old is not None:
            self._scratch_bytes -= old.nbytes
        self._scratch[pool_key] = arr
        self._scratch_bytes += arr.nbytes
        self._enforce_scratch_cap(pool_key)

    def _enforce_scratch_cap(self, keep) -> None:
        """Drop least-recently-used buffers past ``scratch_cap_bytes``.

        Never evicts *keep* (the buffer just handed out or donated): callers
        hold it live this round. Eviction merely forgets a buffer — the
        scratch contract says contents are garbage, so a later request for
        the same key simply allocates fresh.
        """
        cap = self.scratch_cap_bytes
        if cap is None or self._scratch_bytes <= cap:
            return
        for k in list(self._scratch):
            if self._scratch_bytes <= cap:
                break
            if k == keep:
                continue
            self._scratch_bytes -= self._scratch.pop(k).nbytes
            self._scratch_evictions += 1

    def scratch_stats(self) -> dict:
        """Scratch-pool health: ``hits``/``misses``/``evictions`` are
        cumulative across the state's lifetime; ``buffers``/``bytes_held``
        describe what the pool currently retains."""
        return {
            "hits": self._scratch_hits,
            "misses": self._scratch_misses,
            "evictions": self._scratch_evictions,
            "buffers": len(self._scratch),
            "bytes_held": self._scratch_bytes,
        }

    def clear_scratch(self) -> None:
        """Drop every retained buffer (cohort membership changes call this:
        the slab shape changed, so pooled buffers can never be served again)."""
        self._scratch.clear()
        self._scratch_bytes = 0

    def clear_round(self) -> None:
        """Drop per-round scratch (pooled sets, measurement, estimate)."""
        self.measurement = None
        self.control = None
        self.estimate = None
        self.pooled_states = None
        self.pooled_logw = None
        self.round_ess = None
        self.round_mass_share = None
        self.resampled_mask = None
        self.kernel_events = []

    # -- snapshot accessors for hooks -----------------------------------------
    @property
    def initialized(self) -> bool:
        return self.states is not None

    @property
    def n_filters(self) -> int:
        if self.states is None:
            return 0
        return self.states.shape[0]

    @property
    def n_particles(self) -> int:
        if self.states is None:
            return 0
        return self.states.shape[1]

    @property
    def ragged(self) -> bool:
        """True when at least one sub-filter is narrower than the padding."""
        return self.widths is not None and bool(
            (self.widths != self.states.shape[1]).any())

    @property
    def live_particles(self) -> int:
        """Total live particles across sub-filters (excludes padding)."""
        if self.states is None:
            return 0
        if self.widths is None:
            return self.states.shape[0] * self.states.shape[1]
        return int(self.widths.sum())

    def effective_widths(self) -> np.ndarray:
        """The ``(F,)`` width vector, materializing full rows when unset."""
        if self.widths is not None:
            return self.widths
        return np.full(self.n_filters, self.n_particles, dtype=np.int64)

    def population(self) -> tuple[np.ndarray, np.ndarray]:
        """The live ``(states, log_weights)`` arrays (views, not copies)."""
        return self.states, self.log_weights

    # -- checkpoint serialization ----------------------------------------------
    def to_checkpoint(self) -> tuple[dict, dict]:
        """``(arrays, meta)`` capturing the durable filtering state.

        Per-round scratch (measurement, pooled sets, kernel events, buffer
        pool) is deliberately excluded: checkpoints are taken at step
        boundaries, where scratch is dead by contract.
        """
        if self.states is None:
            raise ValueError("cannot checkpoint an uninitialized FilterState")
        arrays = {"states": self.states, "log_weights": self.log_weights}
        if self.widths is not None:
            arrays["widths"] = self.widths
        if self.last_estimate is not None:
            arrays["last_estimate"] = np.asarray(self.last_estimate)
        meta = {"k": int(self.k), "heal_counters": dict(self.heal_counters)}
        if any(self.alloc_counters.values()):
            meta["alloc_counters"] = dict(self.alloc_counters)
        return arrays, meta

    def restore_checkpoint(self, arrays: dict, meta: dict) -> None:
        """Install a checkpointed population; inverse of :meth:`to_checkpoint`.

        Schema-v1 checkpoints carry no ``widths`` array: the population is
        the classic fixed-width layout and ``widths`` stays ``None``.
        """
        widths = arrays.get("widths")
        self.reset(np.ascontiguousarray(arrays["states"]),
                   np.ascontiguousarray(arrays["log_weights"]),
                   widths=None if widths is None else np.ascontiguousarray(widths))
        self.k = int(meta["k"])
        self.heal_counters = {k: int(v) for k, v in meta["heal_counters"].items()}
        if "alloc_counters" in meta:
            self.alloc_counters = {k: int(v) for k, v in meta["alloc_counters"].items()}
        if "last_estimate" in arrays:
            self.last_estimate = np.asarray(arrays["last_estimate"])

    def snapshot(self) -> "FilterState":
        """A deep copy safe to retain across stages (for hooks/debugging)."""
        out = FilterState(
            states=None if self.states is None else self.states.copy(),
            log_weights=None if self.log_weights is None else self.log_weights.copy(),
            k=self.k,
            heal_counters=dict(self.heal_counters),
            last_estimate=None if self.last_estimate is None else np.array(self.last_estimate),
            widths=None if self.widths is None else self.widths.copy(),
            alloc_counters=dict(self.alloc_counters),
        )
        return out
