"""Vectorized (batched-NumPy) implementations of the Algorithm 2 stages.

These are the canonical kernel bodies: every operation runs on the full
``(n_filters, m, state_dim)`` population at once, the same shape as the
paper's one-work-group-per-sub-filter device kernels. The stage classes
dispatch through ``ctx.owner``'s legacy kernel methods when the owner
provides them, which keeps the related-work subclasses
(:mod:`repro.baselines.distributed_variants`) overriding ``_exchange`` /
``_resample`` / ``_heal_population`` working unchanged; contexts without an
owner (multiprocess workers) run the module-level kernel functions directly.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.core.estimator import global_estimate
from repro.engine.stage import ExecutionContext
from repro.engine.state import FilterState
from repro.utils.arrays import (
    degenerate_rows,
    rescue_degenerate_rows,
    sanitize_log_weights,
)


def _row_scope(rng, rows):
    """Scope a row-striped RNG to a row subset; no-op for plain RNGs.

    Row-subset draws (the masked resample path) must consume only the
    affected rows' streams when the RNG stripes draws per row — that is
    what keeps per-sub-filter streams shard-invariant. Plain generators
    (every pre-shard golden trace) take the exact same path as before.
    """
    scope = getattr(rng, "scoped_rows", None)
    if scope is None:
        return nullcontext(rng)
    return scope(rows)

# ---------------------------------------------------------------------------
# Kernel bodies
# ---------------------------------------------------------------------------


def sample_weight(ctx: ExecutionContext, state: FilterState) -> None:
    """Sampling + importance weighting (one fused kernel in the paper).

    With ``frim_redraws > 0`` the FRIM strategy of related work [19] keeps
    each particle's best of a bounded number of draws.
    """
    cfg = ctx.config
    if cfg.frim_redraws > 0:
        from repro.core.frim import frim_sample

        state.states, loglik = frim_sample(
            ctx.model, state.states, state.measurement, state.control, state.k, ctx.rng,
            redraws=cfg.frim_redraws, quantile=cfg.frim_quantile,
        )
        state.states = state.states.astype(ctx.dtype, copy=False)
    else:
        state.states = ctx.model.transition(state.states, state.control, state.k, ctx.rng)
        loglik = ctx.model.log_likelihood(state.states, state.measurement, state.k)
    np.add(state.log_weights, loglik, out=state.log_weights)
    if state.ragged:
        # Padded slots stay at exactly -inf even if the model emitted a NaN
        # log-likelihood for their (copied) states.
        from repro.allocation.migrate import apply_width_mask

        apply_width_mask(state.log_weights, state.widths)


def heal_population(ctx: ExecutionContext, state: FilterState) -> None:
    """Numerical self-healing after weighting (docs/robustness.md).

    NaN log-weights and particles whose state went non-finite are masked to
    ``-inf`` (zero mass). A sub-filter left with *no* finite weight is
    rejuvenated by cloning a live topological neighbour's particles and
    restarting on uniform weights — the paper's exchange primitive reused as
    a recovery primitive. Deterministic (no RNG draws), so a healthy run is
    bit-identical with healing on or off.
    """
    n_bad = sanitize_log_weights(state.log_weights, state.states)
    if n_bad:
        state.heal_counters["sanitized"] += n_bad
    dead = degenerate_rows(state.log_weights)
    if not dead.any():
        return
    alive = ~dead
    table, mask = ctx.table, ctx.mask
    for f in np.flatnonzero(dead):
        donors = table[f][mask[f]]
        donors = donors[alive[donors]]
        if donors.size:
            state.states[f] = state.states[int(donors[0])]
        elif alive.any():
            state.states[f] = state.states[int(np.flatnonzero(alive)[0])]
        # else: every sub-filter is degenerate — keep own states and
        # restart all of them on uniform weights.
        ok = np.isfinite(state.states[f]).all(axis=-1)
        state.log_weights[f] = np.where(ok, 0.0, -np.inf) if ok.any() else 0.0
        if state.widths is not None:
            # The rejuvenated row keeps its own live width; the donor's
            # particles beyond it are padding again.
            state.log_weights[f, int(state.widths[f]):] = -np.inf
        state.heal_counters["rejuvenated"] += 1


def heal_local(ctx: ExecutionContext, state: FilterState) -> None:
    """Topology-free self-healing for a worker's local block.

    Without neighbour access, fully-degenerate rows restart on uniform
    weights; fresh neighbour particles arrive through the exchange boundary,
    completing the rejuvenation.
    """
    state.heal_counters["sanitized"] += sanitize_log_weights(state.log_weights, state.states)
    rescued = rescue_degenerate_rows(state.log_weights, state.states)
    state.heal_counters["rejuvenated"] += rescued
    if rescued and state.ragged:
        # Rejuvenation restarts whole rows on uniform weight; their padded
        # slots must drop back to zero mass.
        from repro.allocation.migrate import apply_width_mask

        apply_width_mask(state.log_weights, state.widths)


def sort_by_weight(ctx: ExecutionContext, state: FilterState) -> None:
    """Local sort by weight, descending (the paper's bitonic sort kernel).

    Dispatched through the kernel registry; the registered batch form is the
    stable descending argsort, so the permutation — and the golden traces —
    are bit-identical to a direct ``np.argsort`` call.
    """
    order = ctx.invoke_kernel(state, "sort", state.log_weights)
    F, m = state.log_weights.shape
    d = state.states.shape[-1]
    # Gather through flat indices into recycled scratch: same permutation as
    # take_along_axis (bit-identical), but zero allocations in steady state.
    flat = state.scratch("sort.flat", (F, m), np.intp)
    np.add(order, np.arange(F, dtype=np.intp).reshape(F, 1) * m, out=flat, casting="unsafe")
    new_logw = state.scratch("sort.logw", (F, m), state.log_weights.dtype)
    np.take(state.log_weights.reshape(-1), flat, out=new_logw)
    new_states = state.scratch("sort.states", (F, m, d), state.states.dtype)
    np.take(
        np.ascontiguousarray(state.states).reshape(F * m, d), flat, axis=0, out=new_states
    )
    # Ping-pong: the old live arrays become next round's scratch, so the
    # gather above never reads and writes the same buffer.
    state.recycle("sort.logw", state.log_weights)
    state.recycle("sort.states", state.states)
    state.log_weights = new_logw
    state.states = new_states


def estimate(ctx: ExecutionContext, state: FilterState) -> None:
    """Global estimate: local reduction then global reduction."""
    state.estimate = global_estimate(state.states, state.log_weights, ctx.config.estimator)
    state.last_estimate = state.estimate


def top_t(ctx: ExecutionContext, state: FilterState, t: int) -> tuple[np.ndarray, np.ndarray]:
    """Each sub-filter's t best (or weight-sampled) particles."""
    cfg = ctx.config
    if cfg.exchange_select == "sample":
        w = np.exp(state.log_weights - state.log_weights.max(axis=1, keepdims=True))
        sel = ctx.resampler.resample_batch(w, t, ctx.rng)  # (F, t)
    elif cfg.selection == "sort":
        # Rows are already sorted descending.
        F = cfg.n_filters
        sel = np.broadcast_to(np.arange(t), (F, t))
    else:
        # Local-max selection: argpartition the t best, then order them.
        m = state.log_weights.shape[1]
        part = np.argpartition(-state.log_weights, min(t, m - 1), axis=1)[:, :t]
        part_w = np.take_along_axis(state.log_weights, part, axis=1)
        inner = np.argsort(-part_w, axis=1)
        sel = np.take_along_axis(part, inner, axis=1)
    send_states = np.take_along_axis(state.states, sel[:, :, None], axis=1)
    send_logw = np.take_along_axis(state.log_weights, sel, axis=1)
    return send_states, send_logw


def exchange_pool(ctx: ExecutionContext, state: FilterState) -> tuple[np.ndarray, np.ndarray]:
    """Pool each sub-filter's particles with its neighbours' contributions."""
    cfg = ctx.config
    t = cfg.n_exchange
    if t == 0 or ctx.table.shape[1] == 0:
        return state.states, state.log_weights
    send_states, send_logw = top_t(ctx, state, t)

    F, m = state.log_weights.shape
    d = state.states.shape[-1]
    if ctx.topology.pooled:
        # All-to-All: a global pool; everyone reads back the same t best.
        recv_states, recv_logw = ctx.invoke_kernel(
            state, "route_pooled", send_states, send_logw, t
        )
    else:
        # Pairwise: gather each neighbour's sent particles straight into
        # recycled scratch (the kernel honours ``out=``).
        width = ctx.table.shape[1] * t
        recv_states, recv_logw = ctx.invoke_kernel(
            state, "route_pairwise", send_states, send_logw, ctx.table, ctx.mask,
            out_states=state.scratch("exch.recv_states", (F, width, d), send_states.dtype),
            out_logw=state.scratch("exch.recv_logw", (F, width), send_logw.dtype),
        )

    # Pool = [own | received], assembled in reusable buffers instead of a
    # fresh np.concatenate pair every round.
    width = recv_logw.shape[1]
    pooled_states = state.scratch("exch.pooled_states", (F, m + width, d), state.states.dtype)
    pooled_states[:, :m] = state.states
    pooled_states[:, m:] = recv_states
    pooled_logw = state.scratch("exch.pooled_logw", (F, m + width),
                                state.log_weights.dtype)
    pooled_logw[:, :m] = state.log_weights
    pooled_logw[:, m:] = recv_logw
    return pooled_states, pooled_logw


def _capture_alloc_metrics(state: FilterState, local_w: np.ndarray,
                           local_peak: np.ndarray) -> None:
    """Stash pre-resample ESS and weight-mass share on the state.

    Resampling resets the live weights, so the allocation stage (and the
    allocation telemetry hook) must read these here. Pure reductions over
    arrays the resample stage already materialized — no RNG, no mutation —
    so golden traces are untouched.
    """
    w = np.where(np.isfinite(local_w), local_w, 0.0)
    s1 = w.sum(axis=1)
    s2 = np.einsum("fm,fm->f", w, w)
    with np.errstate(invalid="ignore", divide="ignore"):
        state.round_ess = np.where(s2 > 0.0, (s1 * s1) / np.where(s2 > 0.0, s2, 1.0), 0.0)
        lse = np.where(s1 > 0.0, local_peak[:, 0] + np.log(np.where(s1 > 0.0, s1, 1.0)),
                       -np.inf)
    g = lse.max()
    if np.isfinite(g):
        share = np.exp(lse - g)
        state.round_mass_share = share / share.sum()
    else:
        state.round_mass_share = np.full(lse.shape, 1.0 / max(lse.shape[0], 1))


def resample(ctx: ExecutionContext, state: FilterState) -> None:
    """Resample each flagged sub-filter down to m particles from its pool."""
    cfg = ctx.config
    pooled_states, pooled_logw = state.pooled_states, state.pooled_logw
    row_max = pooled_logw.max(axis=1, keepdims=True)
    w = state.scratch("res.w", pooled_logw.shape, np.float64)
    np.subtract(pooled_logw, row_max, out=w)
    np.exp(w, out=w)  # padded -inf entries become 0
    local_w = state.scratch("res.local_w", state.log_weights.shape, np.float64)
    local_peak = state.log_weights.max(axis=1, keepdims=True)
    np.subtract(state.log_weights, local_peak, out=local_w)
    np.exp(local_w, out=local_w)
    _capture_alloc_metrics(state, local_w, local_peak)
    mask = ctx.policy.should_resample(local_w, ctx.rng, widths=state.widths)
    state.resampled_mask = mask
    if not mask.any():
        return
    F, m = state.log_weights.shape
    d = state.states.shape[-1]

    def roughen(new_states: np.ndarray) -> np.ndarray:
        # Gordon/Salmond/Smith roughening: per-dimension jitter scaled by
        # the population's sample range and n^(-1/d) — restores diversity
        # lost to resampling duplicates (sample impoverishment).
        span = (
            state.states.reshape(-1, d).max(axis=0) - state.states.reshape(-1, d).min(axis=0)
        ).astype(np.float64)
        scale = cfg.roughening * span * cfg.total_particles ** (-1.0 / d)
        jitter = ctx.rng.normal(new_states.shape, dtype=np.float64) * scale
        np.add(new_states, jitter.astype(new_states.dtype, copy=False), out=new_states)
        return new_states

    if mask.all():
        # Fast path (the "always" policy): every row resamples, so gather
        # through flat indices into recycled scratch — no fancy-index copies
        # of the pooled set and no per-round allocations.
        idx = ctx.resampler.resample_batch(w, m, ctx.rng)  # (F, m)
        pool_m = pooled_logw.shape[1]
        flat = state.scratch("res.flat", (F, m), np.intp)
        np.add(
            idx, np.arange(F, dtype=np.intp).reshape(F, 1) * pool_m, out=flat,
            casting="unsafe",
        )
        new_states = state.scratch("res.states", (F, m, d), state.states.dtype)
        np.take(
            np.ascontiguousarray(pooled_states).reshape(F * pool_m, d), flat, axis=0,
            out=new_states,
        )
        if cfg.roughening > 0.0:
            new_states = roughen(new_states)
        state.recycle("res.states", state.states)
        state.states = new_states
        state.log_weights.fill(0.0)
        if state.ragged:
            from repro.allocation.migrate import apply_width_mask

            apply_width_mask(state.log_weights, state.widths)
        return

    with _row_scope(ctx.rng, np.flatnonzero(mask)):
        idx = ctx.resampler.resample_batch(w[mask], m, ctx.rng)  # (F', m)
        new_states = np.take_along_axis(pooled_states[mask], idx[:, :, None], axis=1)
        if cfg.roughening > 0.0:
            new_states = roughen(new_states)
    state.states[mask] = new_states
    state.log_weights[mask] = 0.0
    if state.ragged:
        from repro.allocation.migrate import apply_width_mask

        apply_width_mask(state.log_weights, state.widths)


def allocate(ctx: ExecutionContext, state: FilterState) -> None:
    """Re-apportion particle widths across sub-filters (post-resample).

    Under the fixed policy (or with no policy attached) this returns
    immediately without touching state, weights or RNG — the bit-parity
    contract. Adaptive policies decide new widths from the pre-resample
    metrics the resample stage stashed, then migrate particles: growth slots
    are drawn from the round's pooled candidate set (own + received — the
    exchange plumbing) where available, so new particles arrive through the
    topology.
    """
    policy = getattr(ctx, "alloc_policy", None)
    if policy is None or policy.name == "fixed":
        return
    if state.round_ess is None or state.round_mass_share is None:
        return
    widths = state.effective_widths()
    new_widths = policy.decide(widths, state.round_ess, state.round_mass_share)
    if np.array_equal(new_widths, widths):
        state.widths = np.asarray(widths, dtype=np.int64)
        return
    resampled = state.resampled_mask
    if resampled is None:
        resampled = np.zeros(state.n_filters, dtype=bool)
    pooled_states, pooled_logw = state.pooled_states, state.pooled_logw
    migrated = ctx.invoke_kernel(
        state, "migrate_resize", state.states, state.log_weights,
        widths, new_widths, pooled_states, pooled_logw, resampled,
        ctx.resampler, ctx.rng,
    )
    state.widths = np.asarray(new_widths, dtype=np.int64)
    state.alloc_counters["particles_migrated"] += int(migrated)
    state.alloc_counters["width_changes"] += int((new_widths != widths).sum())


# ---------------------------------------------------------------------------
# Stage classes
# ---------------------------------------------------------------------------


class SampleWeightStage:
    """Propagate every particle through the model and weight it."""

    name = "sampling"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        sample_weight(ctx, state)


class HealStage:
    """Neighbour-aware self-healing; skipped when ``config.self_heal`` is off."""

    name = "heal"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        if not ctx.config.self_heal:
            return
        owner = ctx.owner
        if owner is not None:
            owner._heal_population()
        else:
            heal_population(ctx, state)


class LocalHealStage:
    """Topology-free self-healing for worker blocks (always on)."""

    name = "heal"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        heal_local(ctx, state)


class SortStage:
    """Local sort by weight; a no-op under ``selection='max'`` unless forced.

    Multiprocess workers force the sort: their top-t boundary extraction is a
    plain slice of the sorted rows.
    """

    name = "sort"

    def __init__(self, force: bool = False):
        self.force = force

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        if self.force or ctx.config.selection == "sort":
            sort_by_weight(ctx, state)


class EstimateStage:
    """Reduce the population to the global estimate."""

    name = "estimate"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        estimate(ctx, state)


class ExchangeStage:
    """Neighbour exchange -> per-sub-filter pooled candidate sets."""

    name = "exchange"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        owner = ctx.owner
        if owner is not None:
            state.pooled_states, state.pooled_logw = owner._exchange()
        else:
            state.pooled_states, state.pooled_logw = exchange_pool(ctx, state)


class ResampleStage:
    """Local resampling from the pooled weighted set."""

    name = "resample"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        owner = ctx.owner
        if owner is not None:
            owner._resample(state.pooled_states, state.pooled_logw)
        else:
            resample(ctx, state)


class AllocationStage:
    """Adaptive width re-apportionment; a strict no-op under ``fixed``."""

    name = "allocate"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        allocate(ctx, state)


def build_vector_pipeline(hooks=()) -> "StepPipeline":
    """The full vectorized round as an ordered stage list."""
    from repro.engine.pipeline import StepPipeline

    return StepPipeline(
        [SampleWeightStage(), HealStage(), SortStage(), EstimateStage(),
         ExchangeStage(), ResampleStage(), AllocationStage()],
        hooks=hooks,
    )
