"""The fused execution form: one filtering round as a single compiled pass.

The reference pipeline runs Algorithm 2 as seven hooked stages, each a
handful of batched-NumPy calls over the ``(F, m, d)`` population. At the
paper's CPU-class shapes (tens of sub-filters holding tens of particles) a
round is interpreter-bound: stage/hook bookkeeping and per-call NumPy
dispatch dominate the arithmetic. This module is the ``compiled`` form of
that round — the whole sampling → weight → sort → estimate → exchange →
resample sequence fused into one kernel body that

- composes the sort permutation into the final resample gather instead of
  materializing the sorted ``(F, m, d)`` state array;
- reads the global max-weight estimate off the sorted rows' leading column
  instead of re-scanning the full population;
- inlines the roulette-wheel resampler (normalize → prefix sum → one
  flattened binary search) with the end-of-row clip folded into the flat
  gather bounds;
- preallocates every buffer, index table and array view in a per-shape
  :class:`_FusedPlan`, so the steady-state round is a straight line of
  ``out=``-form ufunc and ``.take`` calls with no wrappers, no allocation
  and no scratch-pool lookups;
- draws from the underlying generator directly, skipping the per-call
  ``rand``-phase accounting wrapper (the compiled form reports kernel time
  as one ``fused_step`` event instead of the per-phase breakdown);
- skips the per-round allocation metrics and resampling-policy machinery
  that the gated envelope (fixed allocation, ``always`` policy) makes
  statically decidable;
- runs as one pipeline stage, so per-step hook traffic collapses from
  seven stages' worth to one.

**Bit-parity contract.** On a healthy round the fused body performs the
same floating-point operations in the same order and draws the RNG in the
same sequence as the reference stages (``model.transition`` then the
resampler's row uniforms), so estimates and populations are bit-identical
to the reference pipeline at equal dtype policy. The fused fast path only
runs inside the envelope checked by :func:`fused_pipeline_applicable`; when
a round turns unhealthy (any non-finite weight or state after weighting)
the stage falls back to the reference kernel bodies *for that round*,
preserving parity on degenerate traces too.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.stage import ExecutionContext
from repro.engine.state import FilterState
from repro.engine import vector_stages
from repro.kernels.exchange import route_pooled
from repro.metrics.timing import TimingRNG

__all__ = [
    "FusedStepStage",
    "build_fused_pipeline",
    "fused_envelope_ok",
    "fused_pipeline_applicable",
    "fused_step_batch",
]


def fused_envelope_ok(cfg) -> bool:
    """True when *cfg* is inside the fused form's statically-safe envelope.

    The fused body hard-codes the paper-default round: fixed allocation,
    top-``t``-after-sort exchange, resample-every-round with the RWS
    resampler, max-weight estimate, no FRIM redraws, no roughening.
    Anything else runs the reference stages (same results, just not fused).
    """
    return (
        cfg.allocation == "fixed"
        and cfg.frim_redraws == 0
        and cfg.roughening == 0.0
        and cfg.exchange_select == "best"
        and cfg.selection == "sort"
        and cfg.resample_policy == "always"
        and cfg.estimator == "max_weight"
        and cfg.resampler == "rws"
    )


def fused_pipeline_applicable(filt) -> bool:
    """Whether *filt* may run the fused pipeline instead of the reference one.

    Requires the compiled execution policy, a config inside
    :func:`fused_envelope_ok`, and that *filt* did not subclass any of the
    kernel override points (``_heal_population``/``_top_t``/``_exchange``/
    ``_resample``) — the related-work variants must keep their overrides on
    the hot path, so they always get the reference stage sequence.
    """
    cfg = filt.config
    if getattr(cfg, "execution", "reference") != "compiled":
        return False
    if not fused_envelope_ok(cfg):
        return False
    from repro.core.distributed import DistributedParticleFilter

    for method in ("_heal_population", "_top_t", "_exchange", "_resample"):
        if getattr(type(filt), method) is not getattr(DistributedParticleFilter, method):
            return False
    return True


class _FusedPlan:
    """Preallocated buffers, index tables and views for one problem shape.

    Built on the first fused round (and whenever the shape, dtypes,
    exchange width or routing table change — the ``key`` comparison), then
    reused every round: the steady-state fused body touches no allocator
    and no scratch-pool dictionary.
    """

    __slots__ = (
        "key", "neg", "flat", "sorted_logw", "col0", "logw_obj", "logw_flat",
        "sel_flat", "send_states", "send_logw", "recv_states", "recv_logw",
        "recv_states4", "recv_logw3", "pool_states", "pool_own", "pool_recv",
        "pool_logw", "pool_logw_own", "pool_logw_recv", "ext", "ext_own",
        "ext_flat", "w", "w_flat", "w_last", "row_max", "total",
        "mapped", "spare",
        "off_m", "off_f", "lo", "hi", "src", "all_valid", "pooled",
        "t", "width", "pool_m",
    )

    def __init__(self, key, F, m, d, t, sdt, wdt, table, mask, pooled):
        self.key = key
        self.t = t
        self.pooled = pooled
        self.logw_obj = None
        self.logw_flat = None
        self.neg = np.empty((F, m), dtype=wdt)
        self.flat = np.empty((F, m), dtype=np.intp)
        self.sorted_logw = np.empty((F, m), dtype=wdt)
        self.col0 = self.sorted_logw[:, 0]
        self.mapped = np.empty((F, m), dtype=np.intp)
        self.spare = np.empty((F, m, d), dtype=sdt)
        self.off_m = (np.arange(F, dtype=np.intp) * m).reshape(F, 1)
        self.off_f = np.arange(F, dtype=np.float64).reshape(F, 1)
        # row_max carries the pool's weight dtype: the reference subtraction
        # picks its ufunc loop from the *input* dtypes, so a float64 buffer
        # here would change float32-policy rounding and break bit-parity.
        self.row_max = np.empty((F, 1), dtype=wdt)
        self.total = np.empty((F, 1), dtype=np.float64)
        if t == 0 or table is None or table.shape[1] == 0:
            # No exchange: the pool is the (unsorted) local population and
            # the position→storage map is the sort permutation itself.
            width = 0
            self.src = None
            self.all_valid = True
        elif pooled:
            width = t
            self.src = None
            self.all_valid = True
        else:
            self.src = np.maximum(table, 0)
            self.all_valid = bool(mask.all())
            width = table.shape[1] * t
        self.width = width
        pool_m = m + width
        self.pool_m = pool_m
        if width:
            self.sel_flat = self.flat[:, :t]  # flat == order + row*m, so its
            # leading columns are exactly the flat top-t indices
            self.send_states = np.empty((F, t, d), dtype=sdt)
            self.send_logw = self.sorted_logw[:, :t]
            self.recv_states = np.empty((F, width, d), dtype=sdt)
            self.recv_logw = np.empty((F, width), dtype=wdt)
            D = width // t
            self.recv_states4 = self.recv_states.reshape(F, D, t, d)
            self.recv_logw3 = self.recv_logw.reshape(F, D, t)
            self.pool_states = np.empty((F, pool_m, d), dtype=sdt)
            self.pool_own = self.pool_states[:, :m]
            self.pool_recv = self.pool_states[:, m:]
            self.pool_logw = np.empty((F, pool_m), dtype=wdt)
            self.pool_logw_own = self.pool_logw[:, :m]
            self.pool_logw_recv = self.pool_logw[:, m:]
            self.ext = np.empty((F, pool_m), dtype=np.intp)
            self.ext_own = self.ext[:, :m]
            self.ext[:, m:] = np.arange(m, pool_m, dtype=np.intp)
            self.ext_flat = self.ext.reshape(-1)
        self.w = np.empty((F, pool_m), dtype=np.float64)
        self.w_flat = self.w.reshape(-1)
        self.w_last = self.w[:, -1]
        self.lo = (np.arange(F, dtype=np.intp) * pool_m).reshape(F, 1)
        self.hi = self.lo + (pool_m - 1)


def _get_plan(ctx: ExecutionContext, state: FilterState,
              F: int, m: int, d: int) -> _FusedPlan:
    cfg = ctx.config
    table = ctx.table
    pooled = bool(ctx.topology is not None and ctx.topology.pooled)
    key = (F, m, d, cfg.n_exchange, state.states.dtype, state.log_weights.dtype,
           None if table is None else id(table), pooled)
    plan = getattr(state, "_fused_plan", None)
    if plan is None or plan.key != key:
        plan = _FusedPlan(key, F, m, d, cfg.n_exchange, state.states.dtype,
                          state.log_weights.dtype, table, ctx.mask, pooled)
        state._fused_plan = plan
    return plan


def fused_step_batch(ctx: ExecutionContext, state: FilterState) -> bool:
    """One fused filtering round over the full ``(F, m, d)`` population.

    Returns ``True`` when the fused fast path completed the round, and
    ``False`` when the post-weighting health guard tripped — the caller
    (:class:`FusedStepStage`) then finishes the round through the reference
    stage bodies, so degenerate rounds heal exactly as they always did.
    """
    rng = ctx.rng
    if isinstance(rng, TimingRNG):
        rng = rng.inner  # same stream, no per-call phase accounting
    # -- sampling + weighting (identical draws to the reference stage) -----
    state.states = ctx.model.transition(state.states, state.control, state.k, rng)
    loglik = ctx.model.log_likelihood(state.states, state.measurement, state.k)
    logw = state.log_weights
    np.add(logw, loglik, out=logw)
    states = state.states
    F, m = logw.shape
    d = states.shape[-1]
    plan = _get_plan(ctx, state, F, m, d)

    # -- health guard: the reference heal pass is a bit-exact no-op iff
    #    every weight and every state component is finite. Any non-finite
    #    element makes its array's sum non-finite, so two reductions replace
    #    per-element masks; a finite-but-overflowing sum merely falls back
    #    to the (bit-identical) reference path. ----------------------------
    if not math.isfinite(float(logw.sum()) + float(states.sum())):
        return False

    # -- sort: permutation only. The sorted *weights* are materialized (the
    #    resampler consumes them); the sorted *states* never are — the
    #    permutation is composed into the final resample gather instead. ----
    np.negative(logw, out=plan.neg)
    order = plan.neg.argsort(axis=1, kind="stable")  # stable descending
    np.add(order, plan.off_m, out=plan.flat)
    sorted_logw = plan.sorted_logw
    logw_flat = plan.logw_flat
    if plan.logw_obj is not logw:
        plan.logw_obj = logw
        logw_flat = plan.logw_flat = logw.reshape(-1)
    logw_flat.take(plan.flat, out=sorted_logw)

    # -- estimate: rows are sorted descending, so each row's best particle
    #    sits in column 0 and the global max-weight winner is the argmax of
    #    that column (first occurrence — same tie-break as the reference
    #    flat scan over the sorted population). A cohort context stripes the
    #    reduction per session block: each block of ``cohort_block_rows``
    #    rows is an independent filter and yields its own estimate row, with
    #    the same first-occurrence tie-break the block would see alone. -----
    block = getattr(ctx, "cohort_block_rows", None)
    if block is None:
        lead = int(plan.col0.argmax())
        est = states[lead, order[lead, 0]].astype(np.float64)
    else:
        n_blocks = F // block
        leads = np.ascontiguousarray(plan.col0).reshape(n_blocks, block).argmax(axis=1)
        rows = leads + np.arange(n_blocks, dtype=np.intp) * block
        est = states[rows, order[rows, 0]].astype(np.float64)

    # -- exchange: send each row's top-t (columns 0..t of the sort), pool
    #    [own | received]. The own block stays in *unsorted* particle order;
    #    only its weights enter the pool sorted, and the ``ext`` map below
    #    translates pooled positions back to unsorted storage. -------------
    if plan.width == 0:
        pool_m = m
        pooled_src = states
        pooled_logw = sorted_logw
        ext_flat = order.reshape(-1)
    else:
        states.reshape(F * m, d).take(plan.sel_flat, axis=0, out=plan.send_states)
        if plan.pooled:
            recv_states, recv_logw = route_pooled(plan.send_states, plan.send_logw,
                                                  plan.t)
            np.copyto(plan.recv_states, recv_states)
            np.copyto(plan.recv_logw, recv_logw)
        else:
            plan.send_states.take(plan.src, axis=0, out=plan.recv_states4)
            plan.send_logw.take(plan.src, axis=0, out=plan.recv_logw3)
            if not plan.all_valid:
                plan.recv_logw3[~ctx.mask] = -np.inf
        pool_m = plan.pool_m
        pooled_src = plan.pool_states
        pooled_logw = plan.pool_logw
        np.copyto(plan.pool_own, states)
        np.copyto(plan.pool_recv, plan.recv_states)
        np.copyto(plan.pool_logw_own, sorted_logw)
        np.copyto(plan.pool_logw_recv, plan.recv_logw)
        np.copyto(plan.ext_own, order)
        ext_flat = plan.ext_flat

    # -- resample ("always" policy): every row draws m ancestors from its
    #    pooled weighted set via the inlined RWS kernel. Operation-for-
    #    operation the reference path (float64 reduce regardless of the
    #    carried weight dtype; normalize → prefix sum → row-shifted flat
    #    binary search → clip), so the RNG consumption and the ancestor
    #    indices are bit-identical. ----------------------------------------
    w = plan.w
    row_max = pooled_logw.max(axis=1, keepdims=True, out=plan.row_max)
    np.subtract(pooled_logw, row_max, out=w)
    np.exp(w, out=w)
    total = w.sum(axis=1, keepdims=True, out=plan.total)  # >= 1: exp(0) peak
    np.divide(w, total, out=w)
    np.add.accumulate(w, axis=1, out=w)
    plan.w_last.fill(1.0)
    np.add(w, plan.off_f, out=w)  # row r's CDF shifted into (r, r+1]
    u = rng.uniform((F, m))
    np.add(u, plan.off_f, out=u)
    pos = plan.w_flat.searchsorted(u.reshape(-1), side="right").reshape(F, m)
    np.minimum(pos, plan.hi, out=pos)  # the RWS end-of-row clip, folded
    np.maximum(pos, plan.lo, out=pos)  # into per-row flat bounds
    ext_flat.take(pos, out=plan.mapped)
    np.add(plan.mapped, plan.lo, out=plan.mapped)
    new_states = plan.spare
    if new_states is states or new_states.shape != states.shape \
            or new_states.dtype != states.dtype:
        # External code replaced the live population array (checkpoint
        # restore, tests poking at ``.states``); never gather into an alias.
        new_states = np.empty_like(states)
    if not pooled_src.flags.c_contiguous:
        pooled_src = np.ascontiguousarray(pooled_src)
    pooled_src.reshape(F * pool_m, d).take(plan.mapped, axis=0, out=new_states)
    plan.spare = states
    state.states = new_states
    logw.fill(0.0)

    state.estimate = est
    state.last_estimate = est
    state.pooled_states = None
    state.pooled_logw = None
    return True


class FusedStepStage:
    """The whole round as one stage, dispatched through the kernel registry.

    Invokes the ``fused_step`` kernel (whose compiled form is
    :func:`fused_step_batch`); when the health guard declines the fast path,
    the remainder of the round runs through the reference kernel bodies so
    degenerate rounds stay bit-identical to the reference pipeline.
    """

    name = "fused"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        if not ctx.invoke_kernel(state, "fused_step", ctx, state):
            self._reference_remainder(ctx, state)

    @staticmethod
    def _reference_remainder(ctx: ExecutionContext, state: FilterState) -> None:
        """Finish an unhealthy round exactly as the reference stages would.

        Sampling + weighting already ran (the fused body and the reference
        stage perform them identically); everything from healing onward is
        replayed through the canonical bodies, honouring owner overrides the
        same way the stage classes do.
        """
        owner = ctx.owner
        if ctx.config.self_heal:
            if owner is not None:
                owner._heal_population()
            else:
                vector_stages.heal_population(ctx, state)
        vector_stages.sort_by_weight(ctx, state)
        vector_stages.estimate(ctx, state)
        if owner is not None:
            state.pooled_states, state.pooled_logw = owner._exchange()
            owner._resample(state.pooled_states, state.pooled_logw)
        else:
            state.pooled_states, state.pooled_logw = vector_stages.exchange_pool(ctx, state)
            vector_stages.resample(ctx, state)
        # Allocation is "fixed" inside the fused envelope — a strict no-op.


def build_fused_pipeline(hooks=()) -> "StepPipeline":
    """The fused round as a single-stage pipeline (hooks still attach)."""
    from repro.engine.pipeline import StepPipeline

    return StepPipeline([FusedStepStage()], hooks=hooks)
