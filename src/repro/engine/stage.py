"""The stage protocol: Algorithm 2 as an ordered list of named kernels.

One filtering round is the fixed kernel sequence

    sampling -> heal -> sort -> estimate -> exchange -> resample

(the paper's Section V kernel pipeline plus the numerical self-healing pass
added in docs/robustness.md). A :class:`Stage` is one element of that
sequence; every backend — vectorized, loop-based oracle, multiprocess
workers, device-simulated — supplies stage *implementations* but shares the
stage *names*, so per-stage timings, device cost accounting and resilience
monitoring are comparable across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine.state import FilterState

#: Canonical stage names, in execution order. Hooks key their per-stage
#: accounting by these names; the device cost model's kernel names are a
#: subset (``heal`` is free on-device, ``rand`` is folded into ``sampling``).
#: ``allocate`` — adaptive width re-apportionment — is a strict no-op under
#: the fixed allocation policy.
STAGE_NAMES = ("sampling", "heal", "sort", "estimate", "exchange", "resample",
               "allocate")


@runtime_checkable
class Stage(Protocol):
    """One kernel of the filtering round.

    ``run`` mutates *state* in place; anything a stage must pass to a later
    stage travels through the :class:`FilterState` scratch slots.
    """

    name: str

    def run(self, ctx: "ExecutionContext", state: FilterState) -> None: ...


@dataclass
class ExecutionContext:
    """Everything a stage needs besides the mutable state.

    The context is built once by the owning filter and shared by all its
    stages: the model, the configuration, the RNG stream, the resampler and
    resampling policy, and the routing tables of the exchange topology.

    ``owner`` is the filter object driving the pipeline, when there is one.
    Vectorized stages dispatch through the owner's legacy kernel methods
    (``_heal_population``/``_exchange``/``_resample``) when present so that
    subclasses overriding those methods — the related-work variants in
    :mod:`repro.baselines.distributed_variants` — keep working unchanged.
    Contexts without an owner (multiprocess workers) run the canonical
    kernel bodies directly.
    """

    model: object
    config: object
    rng: object
    resampler: object
    policy: object
    dtype: np.dtype
    topology: object = None
    table: np.ndarray | None = None
    mask: np.ndarray | None = None
    owner: object = None
    registry: object = None
    #: the :class:`~repro.allocation.AllocationPolicy` deciding per-round
    #: widths; ``None`` (or the fixed policy) keeps widths frozen.
    alloc_policy: object = None
    #: the :class:`~repro.kernels.forms.ExecutionPolicy` selecting which
    #: execution form each kernel dispatch resolves to; ``None`` means the
    #: historical behaviour (always the reference batch form).
    exec_policy: object = None
    #: the resolved :class:`~repro.core.dtypes.DtypePolicy` for this run;
    #: ``None`` means the historical mixed behaviour (state at ``dtype``,
    #: float64 weights and reductions).
    dtype_policy: object = None

    def __post_init__(self):
        self._form_cache: dict[str, object] = {}

    def kernel_registry(self):
        """The kernel registry stages dispatch through (lazily defaulted)."""
        if self.registry is None:
            from repro.kernels.registry import default_registry

            self.registry = default_registry()
        return self.registry

    def weight_dtype(self) -> np.dtype:
        """The dtype carried log-weights use under the active dtype policy."""
        if self.dtype_policy is None:
            return np.dtype(np.float64)
        return self.dtype_policy.weight

    def kernel_impl(self, name: str):
        """The callable the active execution policy selects for *name*.

        Selection walks the policy's form preference once per kernel name
        and is then cached — ``invoke_kernel`` stays one dict lookup on the
        hot path. Without a policy (or when selection yields nothing) this
        is exactly the old ``registry.batch(name)`` resolution, including
        its ``ValueError`` for kernels with no batch implementation.
        """
        impl = self._form_cache.get(name)
        if impl is None:
            registry = self.kernel_registry()
            if self.exec_policy is None:
                impl = registry.batch(name)
            else:
                selected = self.exec_policy.select(registry.get(name))
                impl = registry.batch(name) if selected is None else selected[1]
            self._form_cache[name] = impl
        return impl

    def invoke_kernel(self, state: FilterState, name: str, *args, **kwargs):
        """Run a registered kernel and record ``(name, elapsed, start)``.

        Pure routing — the returned value is exactly what the selected
        implementation returns — plus a timing event appended to
        ``state.kernel_events``, which a
        :class:`~repro.engine.hooks.KernelTimingHook` drains into per-kernel
        seconds (and, when tracing, kernel spans with real timestamps) on
        every backend uniformly. Which implementation runs is decided by
        the context's :class:`~repro.kernels.forms.ExecutionPolicy` (see
        :meth:`kernel_impl`); the event contract is form-independent.
        """
        impl = self.kernel_impl(name)
        start = time.perf_counter()
        out = impl(*args, **kwargs)
        state.kernel_events.append((name, time.perf_counter() - start, start))
        return out
