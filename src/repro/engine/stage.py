"""The stage protocol: Algorithm 2 as an ordered list of named kernels.

One filtering round is the fixed kernel sequence

    sampling -> heal -> sort -> estimate -> exchange -> resample

(the paper's Section V kernel pipeline plus the numerical self-healing pass
added in docs/robustness.md). A :class:`Stage` is one element of that
sequence; every backend — vectorized, loop-based oracle, multiprocess
workers, device-simulated — supplies stage *implementations* but shares the
stage *names*, so per-stage timings, device cost accounting and resilience
monitoring are comparable across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine.state import FilterState

#: Canonical stage names, in execution order. Hooks key their per-stage
#: accounting by these names; the device cost model's kernel names are a
#: subset (``heal`` is free on-device, ``rand`` is folded into ``sampling``).
#: ``allocate`` — adaptive width re-apportionment — is a strict no-op under
#: the fixed allocation policy.
STAGE_NAMES = ("sampling", "heal", "sort", "estimate", "exchange", "resample",
               "allocate")


@runtime_checkable
class Stage(Protocol):
    """One kernel of the filtering round.

    ``run`` mutates *state* in place; anything a stage must pass to a later
    stage travels through the :class:`FilterState` scratch slots.
    """

    name: str

    def run(self, ctx: "ExecutionContext", state: FilterState) -> None: ...


@dataclass
class ExecutionContext:
    """Everything a stage needs besides the mutable state.

    The context is built once by the owning filter and shared by all its
    stages: the model, the configuration, the RNG stream, the resampler and
    resampling policy, and the routing tables of the exchange topology.

    ``owner`` is the filter object driving the pipeline, when there is one.
    Vectorized stages dispatch through the owner's legacy kernel methods
    (``_heal_population``/``_exchange``/``_resample``) when present so that
    subclasses overriding those methods — the related-work variants in
    :mod:`repro.baselines.distributed_variants` — keep working unchanged.
    Contexts without an owner (multiprocess workers) run the canonical
    kernel bodies directly.
    """

    model: object
    config: object
    rng: object
    resampler: object
    policy: object
    dtype: np.dtype
    topology: object = None
    table: np.ndarray | None = None
    mask: np.ndarray | None = None
    owner: object = None
    registry: object = None
    #: the :class:`~repro.allocation.AllocationPolicy` deciding per-round
    #: widths; ``None`` (or the fixed policy) keeps widths frozen.
    alloc_policy: object = None

    def kernel_registry(self):
        """The kernel registry stages dispatch through (lazily defaulted)."""
        if self.registry is None:
            from repro.kernels.registry import default_registry

            self.registry = default_registry()
        return self.registry

    def invoke_kernel(self, state: FilterState, name: str, *args, **kwargs):
        """Run a registered batch kernel and record ``(name, elapsed, start)``.

        Pure routing — the returned value is exactly what the registered
        implementation returns — plus a timing event appended to
        ``state.kernel_events``, which a
        :class:`~repro.engine.hooks.KernelTimingHook` drains into per-kernel
        seconds (and, when tracing, kernel spans with real timestamps) on
        every backend uniformly.
        """
        impl = self.kernel_registry().batch(name)
        start = time.perf_counter()
        out = impl(*args, **kwargs)
        state.kernel_events.append((name, time.perf_counter() - start, start))
        return out
