"""The stage-pipeline engine: Algorithm 2 expressed once, executed everywhere.

The paper maps the same kernel sequence (sample -> weight -> heal -> sort ->
estimate -> exchange -> resample) onto GPGPU work-groups and CPU cores;
this package is that idea as a library layer:

- :class:`FilterState` — the mutable population + per-round scratch,
- :class:`Stage` / :data:`STAGE_NAMES` — the protocol and canonical names,
- :class:`StepPipeline` — the ordered stage list with observer hooks,
- :class:`StageHook` / :class:`TimerHook` — timing, device cost accounting
  and resilience monitoring attach here instead of living inline,
- :mod:`~repro.engine.vector_stages` — the batched-NumPy kernel bodies,
- :mod:`~repro.engine.loop_stages` — the per-particle oracle bodies.

Backends are thin façades: the vectorized filter runs the full vector
pipeline, the sequential oracle runs the loop pipeline, multiprocess
workers run the local-only stage subset with exchange routed through the
message-passing boundary, and the device-simulated filter attaches a cost
hook to whichever pipeline it wraps.
"""

from repro.engine.hooks import (
    AllocationTelemetryHook,
    KernelTimingHook,
    RecordingHook,
    StageHook,
    TimerHook,
)
from repro.engine.pipeline import StepPipeline
from repro.engine.stage import STAGE_NAMES, ExecutionContext, Stage
from repro.engine.state import FilterState
from repro.engine.fused import FusedStepStage, build_fused_pipeline
from repro.engine.loop_stages import build_loop_pipeline
from repro.engine.vector_stages import build_vector_pipeline

__all__ = [
    "FusedStepStage",
    "build_fused_pipeline",
    "ExecutionContext",
    "FilterState",
    "AllocationTelemetryHook",
    "KernelTimingHook",
    "RecordingHook",
    "STAGE_NAMES",
    "Stage",
    "StageHook",
    "StepPipeline",
    "TimerHook",
    "build_loop_pipeline",
    "build_vector_pipeline",
]
