"""Loop-based reference implementations of the Algorithm 2 stages.

Every operation is written per sub-filter, per particle, exactly following
the paper's pseudocode — no batching, no clever indexing. These stages
implement the same :class:`~repro.engine.stage.Stage` protocol and stage
names as the vectorized kernels, so the sequential oracle runs through the
very same :class:`~repro.engine.pipeline.StepPipeline` (and therefore gets
the same per-stage timing/observability) while remaining an independent,
deliberately naive implementation to validate the optimized one against.

Config parity: the loop stages implement ``frim_redraws``, ``roughening``
and ``exchange_select="sample"`` — previously the oracle silently ignored
them and diverged from the vectorized filter.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import global_estimate
from repro.engine.stage import ExecutionContext
from repro.engine.state import FilterState


class LoopSampleWeightStage:
    """Sample and weight, one particle at a time (Algorithm 2 lines 3-7)."""

    name = "sampling"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        cfg = ctx.config
        if cfg.frim_redraws > 0:
            self._run_frim(ctx, state)
            return
        widths = state.effective_widths()
        for f in range(cfg.n_filters):
            # Only the live region is propagated; padded slots keep their
            # (real, copied) states and stay at -inf weight.
            for i in range(int(widths[f])):
                state.states[f, i] = ctx.model.transition(
                    state.states[f, i], state.control, state.k, ctx.rng
                )
                state.log_weights[f, i] += float(
                    ctx.model.log_likelihood(state.states[f, i][None, :], state.measurement, state.k)[0]
                )

    def _run_frim(self, ctx: ExecutionContext, state: FilterState) -> None:
        """FRIM sampling, per particle: bounded redraws keeping the best.

        Mirrors :func:`repro.core.frim.frim_sample` — the per-sub-filter
        threshold is the q-quantile of the first draw's log-likelihoods, and
        only particles below it are eligible for replacement.
        """
        cfg = ctx.config
        for f in range(cfg.n_filters):
            prev = state.states[f].copy()
            ll = np.empty(cfg.n_particles)
            for i in range(cfg.n_particles):
                state.states[f, i] = ctx.model.transition(prev[i], state.control, state.k, ctx.rng)
                ll[i] = float(
                    ctx.model.log_likelihood(state.states[f, i][None, :], state.measurement, state.k)[0]
                )
            thresh = float(np.quantile(ll, cfg.frim_quantile))
            for _ in range(cfg.frim_redraws):
                below = [i for i in range(cfg.n_particles) if ll[i] < thresh]
                if not below:
                    break
                for i in below:
                    cand = ctx.model.transition(prev[i], state.control, state.k, ctx.rng)
                    cand_ll = float(
                        ctx.model.log_likelihood(cand[None, :], state.measurement, state.k)[0]
                    )
                    if cand_ll > ll[i]:
                        state.states[f, i] = cand
                        ll[i] = cand_ll
            for i in range(cfg.n_particles):
                state.log_weights[f, i] += ll[i]


class LoopHealStage:
    """Per-sub-filter numerical self-healing, straight from the definition."""

    name = "heal"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        if not ctx.config.self_heal:
            return
        F, m = state.log_weights.shape
        for f in range(F):
            for i in range(m):
                unusable = np.isnan(state.log_weights[f, i]) or not np.isfinite(state.states[f, i]).all()
                if unusable and not np.isneginf(state.log_weights[f, i]):
                    state.log_weights[f, i] = -np.inf
                    state.heal_counters["sanitized"] += 1
        alive = [f for f in range(F) if np.isfinite(state.log_weights[f]).any()]
        for f in range(F):
            if np.isfinite(state.log_weights[f]).any():
                continue
            donors = [q for q in ctx.topology.neighbors(f) if q in alive]
            if donors:
                state.states[f] = state.states[donors[0]]
            elif alive:
                state.states[f] = state.states[alive[0]]
            ok = np.isfinite(state.states[f]).all(axis=-1)
            state.log_weights[f] = np.where(ok, 0.0, -np.inf) if ok.any() else 0.0
            if state.widths is not None:
                # The rejuvenated row keeps its own live width.
                state.log_weights[f, int(state.widths[f]):] = -np.inf
            state.heal_counters["rejuvenated"] += 1


class LoopSortStage:
    """Sort each sub-filter by weight, descending (line 8)."""

    name = "sort"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        for f in range(ctx.config.n_filters):
            # One row at a time through the registered sort kernel — the
            # same stable descending argsort the vectorized stage uses.
            order = ctx.invoke_kernel(state, "sort", state.log_weights[f][None, :])[0]
            state.states[f] = state.states[f][order]
            state.log_weights[f] = state.log_weights[f][order]


class LoopEstimateStage:
    """Global estimate (line 9): local reductions then the global reduction."""

    name = "estimate"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        state.estimate = global_estimate(state.states, state.log_weights, ctx.config.estimator)
        state.last_estimate = state.estimate


class LoopExchangeStage:
    """Exchange with neighbours (lines 10-14).

    Collects everyone's contribution against the pre-exchange state, then
    appends to the recipients. The pooled slots hold, per sub-filter, a list
    of ``(state, log_weight)`` tuples.
    """

    name = "exchange"

    def _contribution(self, ctx, state, f, t) -> list[tuple[np.ndarray, float]]:
        """Sub-filter *f*'s sent particles: top-t or weight-sampled t."""
        if ctx.config.exchange_select == "sample":
            w = np.exp(state.log_weights[f] - state.log_weights[f].max())
            idx = ctx.resampler.resample(w, t, ctx.rng)
            return [(state.states[f, int(i)].copy(), float(state.log_weights[f, int(i)])) for i in idx]
        # Rows are sorted descending: the first t are the best.
        return [(state.states[f, i].copy(), float(state.log_weights[f, i])) for i in range(t)]

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        cfg = ctx.config
        t = cfg.n_exchange
        incoming: list[list[tuple[np.ndarray, float]]] = [[] for _ in range(cfg.n_filters)]
        if t > 0:
            if ctx.topology.pooled:
                contributions = []
                for f in range(cfg.n_filters):
                    contributions += self._contribution(ctx, state, f, t)
                contributions.sort(key=lambda p: -p[1])
                best = contributions[:t]
                for f in range(cfg.n_filters):
                    incoming[f] += [(s.copy(), w) for s, w in best]
            else:
                for f in range(cfg.n_filters):
                    sent = self._contribution(ctx, state, f, t)
                    for q in ctx.topology.neighbors(f):
                        incoming[q] += [(s.copy(), w) for s, w in sent]
        state.pooled_states = [[s for s, _ in inc] for inc in incoming]
        state.pooled_logw = [[w for _, w in inc] for inc in incoming]


class LoopResampleStage:
    """Local resampling from the pooled set (lines 15-19), plus roughening."""

    name = "resample"

    def run(self, ctx: ExecutionContext, state: FilterState) -> None:
        cfg = ctx.config
        if cfg.roughening > 0.0:
            # Jitter scale from the pre-resample population's per-dimension
            # sample range (Gordon, Salmond & Smith 1993).
            d = ctx.model.state_dim
            flat = state.states.reshape(-1, d)
            span = (flat.max(axis=0) - flat.min(axis=0)).astype(np.float64)
            scale = cfg.roughening * span * cfg.total_particles ** (-1.0 / d)
        self._capture_metrics(state)
        widths = state.effective_widths()
        resampled = np.zeros(cfg.n_filters, dtype=bool)
        for f in range(cfg.n_filters):
            m_f = int(widths[f])
            logw = state.log_weights[f]
            w_local = np.exp(logw - logw.max())
            if not bool(ctx.policy.should_resample(
                    w_local[None, :], ctx.rng, widths=np.array([m_f]))[0]):
                continue
            resampled[f] = True
            inc_states = state.pooled_states[f] if state.pooled_states else []
            inc_logw = state.pooled_logw[f] if state.pooled_logw else []
            pool_states = list(state.states[f]) + list(inc_states)
            pool_logw = np.concatenate([logw, np.asarray(inc_logw)]) if inc_logw else logw
            w = np.exp(pool_logw - pool_logw.max())
            idx = ctx.resampler.resample(w, m_f, ctx.rng)
            new_states = np.stack([pool_states[i] for i in idx]).astype(state.states.dtype)
            if cfg.roughening > 0.0:
                jitter = ctx.rng.normal(new_states.shape, dtype=np.float64) * scale
                new_states = new_states + jitter.astype(new_states.dtype)
            state.states[f, :m_f] = new_states
            state.log_weights[f, :m_f] = 0.0
            state.log_weights[f, m_f:] = -np.inf
            # Leave the full candidate set behind for the allocation stage:
            # a growing row draws its new slots from this pool.
            if state.pooled_states is not None:
                state.pooled_states[f] = pool_states
                state.pooled_logw[f] = pool_logw
        state.resampled_mask = resampled

    @staticmethod
    def _capture_metrics(state: FilterState) -> None:
        """Pre-resample ESS / weight-mass share for the allocation stage."""
        from repro.allocation.metrics import subfilter_ess, weight_mass_share

        state.round_ess = subfilter_ess(state.log_weights)
        state.round_mass_share = weight_mass_share(state.log_weights)


def build_loop_pipeline(hooks=()) -> "StepPipeline":
    """The full loop-based (oracle) round as an ordered stage list.

    The allocation stage is the shared (array-level) implementation — width
    apportionment is a per-sub-filter decision with no per-particle inner
    loop, so there is nothing to write more naively.
    """
    from repro.engine.pipeline import StepPipeline
    from repro.engine.vector_stages import AllocationStage

    return StepPipeline(
        [LoopSampleWeightStage(), LoopHealStage(), LoopSortStage(),
         LoopEstimateStage(), LoopExchangeStage(), LoopResampleStage(),
         AllocationStage()],
        hooks=hooks,
    )
