"""The step pipeline: Algorithm 2 expressed once, executed by every backend.

:class:`StepPipeline` runs an ordered list of :class:`~repro.engine.stage.Stage`
objects over a :class:`~repro.engine.state.FilterState`, firing
:class:`~repro.engine.hooks.StageHook` callbacks around every stage. The
vectorized filter runs the full six-stage round; multiprocess workers run
the local-only subset (sampling/heal/sort, then resample) with the exchange
routed through the master's message-passing boundary via
:meth:`run_stages`.

Hook error isolation: observers must never break the computation they
observe. Every hook callback is individually guarded — a raising hook (or a
raising telemetry exporter downstream of one) leaves the stage sequence, the
other hooks, and the filtering output untouched; the failure is counted in
:attr:`StepPipeline.telemetry_errors` and warned once per
``HookClass.method`` site.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.engine.hooks import StageHook
from repro.engine.stage import Stage
from repro.engine.state import FilterState
from repro.telemetry.tracer import warn_hook_error_once


_HOOK_METHODS = ("on_step_start", "on_stage_start", "on_stage_end", "on_step_end")


class _HookList(list):
    """A hook list that invalidates its pipeline's dispatch table on mutation.

    Tests (and embedders) mutate ``pipeline.hooks`` in place — ``insert``,
    ``append``, wholesale replacement — so the prebuilt per-callback dispatch
    below can never trust its cache across a mutation. Every mutating method
    drops the cache; :meth:`StepPipeline.fire` rebuilds lazily.
    """

    __slots__ = ("_owner",)

    def __init__(self, iterable, owner):
        super().__init__(iterable)
        self._owner = owner

    def _invalidate(self):
        self._owner._dispatch = None

    def append(self, x):
        super().append(x)
        self._invalidate()

    def extend(self, xs):
        super().extend(xs)
        self._invalidate()

    def insert(self, i, x):
        super().insert(i, x)
        self._invalidate()

    def remove(self, x):
        super().remove(x)
        self._invalidate()

    def pop(self, i=-1):
        out = super().pop(i)
        self._invalidate()
        return out

    def clear(self):
        super().clear()
        self._invalidate()

    def __setitem__(self, i, x):
        super().__setitem__(i, x)
        self._invalidate()

    def __delitem__(self, i):
        super().__delitem__(i)
        self._invalidate()

    def __iadd__(self, xs):
        out = super().__iadd__(xs)
        self._invalidate()
        return out

    def sort(self, **kw):
        super().sort(**kw)
        self._invalidate()


class StepPipeline:
    """Ordered stage list + observer hooks for one filtering round."""

    def __init__(self, stages: Sequence[Stage], hooks: Iterable[StageHook] = ()):
        self.stages = list(stages)
        self._hooks = _HookList(hooks, self)
        self._dispatch: dict | None = None
        #: hook callbacks that raised and were suppressed (observers must
        #: never abort the filter step they observe).
        self.telemetry_errors = 0

    @property
    def hooks(self) -> list:
        return self._hooks

    @hooks.setter
    def hooks(self, value) -> None:
        self._hooks = _HookList(value, self)
        self._dispatch = None

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def add_hook(self, hook: StageHook) -> StageHook:
        """Attach *hook*; returns it for chaining."""
        self._hooks.append(hook)
        return hook

    def remove_hook(self, hook: StageHook) -> None:
        self._hooks.remove(hook)

    # -- hook dispatch ---------------------------------------------------------
    def _rebuild_dispatch(self) -> dict:
        """Bound callbacks per event, skipping base-class no-op overrides.

        A hook that inherits :class:`StageHook`'s empty callback for an event
        contributes nothing to it; filtering those out here keeps the per-step
        ``fire`` loop to the callbacks that actually observe something.
        """
        dispatch = {}
        for method in _HOOK_METHODS:
            base = getattr(StageHook, method)
            dispatch[method] = [
                (h, getattr(h, method)) for h in self._hooks
                if getattr(type(h), method, None) is not base
                and hasattr(h, method)
            ]
        self._dispatch = dispatch
        return dispatch

    def fire(self, method: str, *args) -> None:
        """Invoke ``hook.<method>(*args)`` on every hook, isolating failures."""
        dispatch = self._dispatch
        if dispatch is None:
            dispatch = self._rebuild_dispatch()
        callbacks = dispatch.get(method)
        if callbacks is None:  # non-standard event name: dispatch dynamically
            callbacks = [(h, getattr(h, method)) for h in self._hooks]
        for h, cb in callbacks:
            try:
                cb(*args)
            except Exception:
                self.telemetry_errors += 1
                warn_hook_error_once(f"{type(h).__name__}.{method}")

    # -- execution -------------------------------------------------------------
    def run_stages(self, ctx, state: FilterState) -> None:
        """Execute the stage list once (no step bookkeeping).

        This is the partial-round entry point: multiprocess workers call it
        for their local stage subset while the master owns the step counter
        and the exchange routing.
        """
        fire = self.fire
        for stage in self.stages:
            name = stage.name
            fire("on_stage_start", name, state)
            begin = time.perf_counter()
            stage.run(ctx, state)
            elapsed = time.perf_counter() - begin
            fire("on_stage_end", name, state, elapsed)

    def run(self, ctx, state: FilterState, measurement: np.ndarray,
            control: np.ndarray | None = None) -> np.ndarray:
        """One full filtering round; returns the global estimate."""
        state.measurement = measurement
        state.control = control
        self.fire("on_step_start", state)
        self.run_stages(ctx, state)
        self.fire("on_step_end", state)
        state.k += 1
        return state.estimate
