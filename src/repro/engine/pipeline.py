"""The step pipeline: Algorithm 2 expressed once, executed by every backend.

:class:`StepPipeline` runs an ordered list of :class:`~repro.engine.stage.Stage`
objects over a :class:`~repro.engine.state.FilterState`, firing
:class:`~repro.engine.hooks.StageHook` callbacks around every stage. The
vectorized filter runs the full six-stage round; multiprocess workers run
the local-only subset (sampling/heal/sort, then resample) with the exchange
routed through the master's message-passing boundary via
:meth:`run_stages`.

Hook error isolation: observers must never break the computation they
observe. Every hook callback is individually guarded — a raising hook (or a
raising telemetry exporter downstream of one) leaves the stage sequence, the
other hooks, and the filtering output untouched; the failure is counted in
:attr:`StepPipeline.telemetry_errors` and warned once per
``HookClass.method`` site.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.engine.hooks import StageHook
from repro.engine.stage import Stage
from repro.engine.state import FilterState
from repro.telemetry.tracer import warn_hook_error_once


class StepPipeline:
    """Ordered stage list + observer hooks for one filtering round."""

    def __init__(self, stages: Sequence[Stage], hooks: Iterable[StageHook] = ()):
        self.stages = list(stages)
        self.hooks = list(hooks)
        #: hook callbacks that raised and were suppressed (observers must
        #: never abort the filter step they observe).
        self.telemetry_errors = 0

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def add_hook(self, hook: StageHook) -> StageHook:
        """Attach *hook*; returns it for chaining."""
        self.hooks.append(hook)
        return hook

    def remove_hook(self, hook: StageHook) -> None:
        self.hooks.remove(hook)

    # -- hook dispatch ---------------------------------------------------------
    def fire(self, method: str, *args) -> None:
        """Invoke ``hook.<method>(*args)`` on every hook, isolating failures."""
        for h in self.hooks:
            try:
                getattr(h, method)(*args)
            except Exception:
                self.telemetry_errors += 1
                warn_hook_error_once(f"{type(h).__name__}.{method}")

    # -- execution -------------------------------------------------------------
    def run_stages(self, ctx, state: FilterState) -> None:
        """Execute the stage list once (no step bookkeeping).

        This is the partial-round entry point: multiprocess workers call it
        for their local stage subset while the master owns the step counter
        and the exchange routing.
        """
        fire = self.fire
        for stage in self.stages:
            name = stage.name
            fire("on_stage_start", name, state)
            begin = time.perf_counter()
            stage.run(ctx, state)
            elapsed = time.perf_counter() - begin
            fire("on_stage_end", name, state, elapsed)

    def run(self, ctx, state: FilterState, measurement: np.ndarray,
            control: np.ndarray | None = None) -> np.ndarray:
        """One full filtering round; returns the global estimate."""
        state.measurement = measurement
        state.control = control
        self.fire("on_step_start", state)
        self.run_stages(ctx, state)
        self.fire("on_step_end", state)
        state.k += 1
        return state.estimate
