"""Centralized particle filter (Algorithm 1) — the reference implementation.

One flat particle population: sample from the transition, weight against the
measurement, estimate, resample. This is the paper's sequential C reference,
used both for correctness validation of the distributed filter and as the
accuracy baseline in Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import global_estimate
from repro.core.parameters import CentralizedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng


def _logsumexp(x: np.ndarray) -> float:
    m = x.max()
    if not np.isfinite(m):
        return float(m)
    return float(m + np.log(np.exp(x - m).sum()))


class CentralizedParticleFilter:
    """Algorithm 1: particle filter with resampling over one population.

    Parameters
    ----------
    model:
        the dynamical system.
    config:
        filter parameters; see :class:`CentralizedFilterConfig`.
    """

    def __init__(self, model: StateSpaceModel, config: CentralizedFilterConfig | None = None):
        self.model = model
        self.config = config or CentralizedFilterConfig()
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(self.config.rng, self.config.seed), self.timer)
        self.resampler = make_resampler(self.config.resampler)
        self.policy = make_policy(self.config.resample_policy, self.config.resample_arg)
        self.dtype = np.dtype(self.config.dtype)
        self.k = 0
        self.states: np.ndarray | None = None
        self.log_weights: np.ndarray | None = None
        #: accumulated log marginal likelihood log p(z_{1:k}) (up to the
        #: model's likelihood normalization constants) — the quantity
        #: econometrics applications (paper ref. [3]) run PFs to obtain.
        self.log_evidence = 0.0

    # -- lifecycle ----------------------------------------------------------
    def initialize(self) -> None:
        """Draw the initial population from the model prior."""
        n = self.config.n_particles
        self.states = self.model.initial_particles(n, self.rng, dtype=self.dtype)
        self.log_weights = np.zeros(n, dtype=np.float64)
        self.k = 0
        self.log_evidence = 0.0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        """One predict/update/resample round; returns the state estimate."""
        if self.states is None:
            self.initialize()
        with self.timer.phase("sampling"):
            self.states = self.model.transition(self.states, control, self.k, self.rng)
            loglik = self.model.log_likelihood(self.states, measurement, self.k)
            prev = self.log_weights
            self.log_weights = prev + loglik.astype(np.float64)
            # Evidence increment: log p(z_k | z_{1:k-1}) ~= the weighted mean
            # likelihood, computed as a difference of log-sum-exps.
            self.log_evidence += float(
                _logsumexp(self.log_weights) - _logsumexp(prev)
            )

        with self.timer.phase("estimate"):
            estimate = global_estimate(self.states, self.log_weights, self.config.estimator)

        shifted = np.exp(self.log_weights - self.log_weights.max())
        if bool(self.policy.should_resample(shifted[None, :], self.rng)[0]):
            with self.timer.phase("resample"):
                idx = self.resampler.resample(shifted, self.config.n_particles, self.rng)
                self.states = np.ascontiguousarray(self.states[idx])
                self.log_weights = np.zeros(self.config.n_particles, dtype=np.float64)

        self.k += 1
        return estimate

    # -- introspection ---------------------------------------------------------
    @property
    def n_particles(self) -> int:
        return self.config.n_particles

    def effective_sample_size(self) -> float:
        from repro.resampling import effective_sample_size

        w = np.exp(self.log_weights - self.log_weights.max())
        return float(effective_sample_size(w))
