"""Filter run driver: feeds a ground-truth measurement sequence to a filter
and collects estimates, per-step errors and kernel timings."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.error import time_averaged_error
from repro.models.base import GroundTruth, StateSpaceModel


@dataclass
class FilterRun:
    """Results of driving one filter over one ground-truth sequence."""

    estimates: np.ndarray  # (T, state_dim)
    errors: np.ndarray  # (T,) model-specific scalar error per step
    wall_seconds: float
    kernel_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return self.estimates.shape[0]

    @property
    def update_rate_hz(self) -> float:
        """Achieved state estimations per second (the paper's Fig. 3 metric)."""
        return self.n_steps / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    def mean_error(self, warmup: int = 0) -> float:
        return time_averaged_error(self.errors, warmup=warmup)


def run_filter(filter_obj, model: StateSpaceModel, truth: GroundTruth) -> FilterRun:
    """Drive *filter_obj* through every measurement of *truth*.

    The filter must expose ``initialize()``, ``step(z, u)`` and a ``timer``
    (both core filters and all baselines do).
    """
    filter_obj.initialize()
    if hasattr(filter_obj, "timer"):
        filter_obj.timer.reset()
    T = truth.n_steps
    estimates = np.empty((T, model.state_dim))
    errors = np.empty(T)
    has_controls = truth.controls.shape[1] > 0
    start = time.perf_counter()
    for k in range(T):
        u = truth.controls[k] if has_controls else None
        estimates[k] = filter_obj.step(truth.measurements[k], u)
        errors[k] = model.estimate_error(estimates[k], truth.states[k])
    wall = time.perf_counter() - start
    kernel_seconds = dict(getattr(filter_obj, "timer", None).seconds) if hasattr(filter_obj, "timer") else {}
    return FilterRun(estimates=estimates, errors=errors, wall_seconds=wall, kernel_seconds=kernel_seconds)


def average_error(
    make_filter,
    make_truth,
    model: StateSpaceModel,
    n_runs: int = 10,
    warmup: int = 10,
) -> float:
    """Mean time-averaged error over *n_runs* independent runs.

    ``make_filter(run_index)`` and ``make_truth(run_index)`` build a fresh
    filter and ground truth per run (vary the seeds!), mirroring the paper's
    "averages from 100 runs over 200 time steps".
    """
    errs = []
    for r in range(n_runs):
        run = run_filter(make_filter(r), model, make_truth(r))
        errs.append(run.mean_error(warmup=warmup))
    return float(np.mean(errs))
