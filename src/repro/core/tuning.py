"""Configuration rules of thumb, codified.

Sections VII-E and IX distil the paper's sweeps into guidance:

- "in small filtering setups, limited communication and a low connectivity
  network provide the best results. High particle settings tend to perform
  better with a more connected network and increased communication."
- "it is important to use a design that effectively combines more (and not
  larger) sub-filters."
- Sub-filter size is platform-bound: ~512 per GPU work group, ~64 per CPU
  core (Table II).
- "accuracy can improve a lot by exchanging even one particle per pair."

:func:`recommend_config` turns a particle budget + platform into a
:class:`~repro.core.parameters.DistributedFilterConfig` following those rules.
"""

from __future__ import annotations

from repro.core.parameters import DistributedFilterConfig
from repro.device.spec import DeviceSpec, get_platform
from repro.utils.arrays import next_power_of_two
from repro.utils.validation import check_positive_int

#: Network size below which the ring's diversity preservation wins; above it
#: the torus's faster propagation wins (the Fig. 6 crossover region).
_TORUS_THRESHOLD = 256


def recommend_config(
    total_particles: int,
    platform: str | DeviceSpec = "gtx-580",
    **overrides,
) -> DistributedFilterConfig:
    """A good distributed-filter configuration for a particle budget.

    Parameters
    ----------
    total_particles:
        the overall particle budget (m * N); rounded up to a power of two.
    platform:
        Table III platform name or a :class:`DeviceSpec`; decides the
        sub-filter size class (GPU work group vs CPU core).
    overrides:
        any :class:`DistributedFilterConfig` field to force.

    The paper's rules applied: platform-sized sub-filters, scale the *count*
    of sub-filters with the budget, ring below ~256 sub-filters and 2D torus
    above, always exchange one particle per neighbour pair, resample every
    round with RWS.
    """
    check_positive_int(total_particles, "total_particles")
    dev = platform if isinstance(platform, DeviceSpec) else get_platform(platform)
    total = next_power_of_two(total_particles)
    m_max = 512 if dev.device_type == "gpu" else 64
    # More (not larger) sub-filters: cap m, but keep at least 4 sub-filters
    # so the network exists, and at least 4 particles per sub-filter so each
    # local filter is a filter at all.
    m = min(m_max, max(total // 4, 4))
    n_filters = max(total // m, 1)
    topology = "torus" if n_filters >= _TORUS_THRESHOLD else "ring"
    cfg = DistributedFilterConfig(
        n_particles=m,
        n_filters=n_filters,
        topology=topology,
        n_exchange=1,
        resampler="rws",
        resample_policy="always",
    )
    return cfg.with_(**overrides) if overrides else cfg


def expected_update_rate(cfg: DistributedFilterConfig, platform: str | DeviceSpec, state_dim: int = 9) -> float:
    """Predicted update rate [Hz] of a configuration on a platform."""
    from repro.device.costmodel import filter_round_cost

    dev = platform if isinstance(platform, DeviceSpec) else get_platform(platform)
    scheme = cfg.topology if isinstance(cfg.topology, str) else "ring"
    return filter_round_cost(
        dev, cfg.n_particles, cfg.n_filters, state_dim,
        n_exchange=cfg.n_exchange, scheme=scheme,
        resampler=cfg.resampler if cfg.resampler in ("rws", "vose") else "rws",
    ).update_rate_hz
