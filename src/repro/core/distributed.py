"""The distributed particle filter (Algorithm 2) — the paper's contribution.

A network of ``N`` small sub-filters of ``m`` particles each. Every round,
each sub-filter independently samples, weights, sorts its particles, and then
exchanges its best ``t`` particles with its topological neighbours before
resampling *locally* from the pooled (own + received) weighted set. All
operations are local to a sub-filter except the neighbour exchange and the
final estimate reduction, which is what makes the design scale with core
count instead of core size.

This class is a thin façade: the round itself is the shared
:class:`~repro.engine.pipeline.StepPipeline` over the vectorized stage
implementations in :mod:`repro.engine.vector_stages` — every kernel operates
on the full ``(n_filters, m, state_dim)`` population in batched NumPy, the
same shape as the paper's one-work-group-per-sub-filter device kernels.
Timing attaches as a :class:`~repro.engine.hooks.TimerHook` rather than
inline code; further observers (device cost accounting, resilience
monitoring) hook into ``self.pipeline`` the same way.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import (
    allocation_capacity,
    make_allocation_policy,
    pad_population,
)
from repro.core.estimator import local_estimates
from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.engine import (
    AllocationTelemetryHook,
    ExecutionContext,
    FilterState,
    KernelTimingHook,
    TimerHook,
    build_vector_pipeline,
)
from repro.engine import vector_stages
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.telemetry import Tracer
from repro.topology import resolve_topology


class DistributedParticleFilter:
    """Algorithm 2 over an exchange topology.

    Parameters
    ----------
    model:
        the dynamical system (vectorized over leading batch dims).
    config:
        the (m, N, X, t, ...) parameter set; see
        :class:`~repro.core.parameters.DistributedFilterConfig`.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig | None = None):
        self.model = model
        self.config = config or DistributedFilterConfig()
        cfg = self.config
        self.topology = resolve_topology(cfg.topology, cfg.n_filters)
        self._table = self.topology.neighbor_table()
        self._mask = self._table >= 0
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(cfg.rng, cfg.seed), self.timer)
        self.resampler = make_resampler(cfg.resampler)
        self.policy = make_policy(cfg.resample_policy, cfg.resample_arg)
        self.alloc_policy = make_allocation_policy(cfg)
        from repro.core.dtypes import resolve_dtype_policy
        from repro.kernels.forms import ExecutionPolicy

        self.dtype_policy = resolve_dtype_policy(cfg.dtype_policy, cfg.dtype)
        self.exec_policy = ExecutionPolicy.from_config(cfg.execution)
        self.dtype = self.dtype_policy.state
        self._state = FilterState()
        self._ctx = ExecutionContext(
            model=model, config=cfg, rng=self.rng, resampler=self.resampler,
            policy=self.policy, dtype=self.dtype, topology=self.topology,
            table=self._table, mask=self._mask, owner=self,
            alloc_policy=self.alloc_policy,
            exec_policy=self.exec_policy, dtype_policy=self.dtype_policy,
        )
        # Telemetry: span recording is off until an exporter is attached (or
        # ``tracer.enabled`` is set); the hooks below then emit step/stage/
        # kernel spans without touching the legacy timer/kernel_seconds path.
        self.tracer = Tracer()
        self.kernel_hook = KernelTimingHook(
            tracer=self.tracer, cost_params=self._cost_params)
        # Non-default execution/dtype policies are stamped onto every step
        # span; default runs emit byte-identical telemetry to older builds.
        span_attrs = None
        if cfg.execution != "reference" or cfg.dtype_policy != "mixed":
            span_attrs = {"execution": cfg.execution,
                          "dtype_policy": cfg.dtype_policy}
        hooks = [TimerHook(self.timer, tracer=self.tracer, span_attrs=span_attrs),
                 self.kernel_hook]
        from repro.engine.fused import build_fused_pipeline, fused_pipeline_applicable

        if fused_pipeline_applicable(self):
            # The fused envelope requires fixed allocation, so the allocation
            # telemetry hook would have nothing to report every round.
            self.pipeline = build_fused_pipeline(hooks=hooks)
        else:
            hooks.append(AllocationTelemetryHook(tracer=self.tracer))
            self.pipeline = build_vector_pipeline(hooks=hooks)
        if cfg.execution != "reference":
            # Trigger any JIT compilation (numba, when present) during
            # construction so the first timed step pays no warm-up cost.
            from repro.kernels.registry import default_registry

            self.exec_policy.warm_up(default_registry())

    def _cost_params(self):
        """The shape the kernel cost signatures are evaluated at (span attrs).

        Under adaptive allocation the population is ragged, so kernels are
        charged at the *actual* mean live width — the cost of a round tracks
        the particles that exist, not the padded capacity.
        """
        from repro.kernels.registry import CostParams

        cfg = self.config
        m = cfg.n_particles
        if self._state.widths is not None:
            m = max(1, round(self._state.live_particles / cfg.n_filters))
        return CostParams(m=m, state_dim=self.model.state_dim,
                          n_groups=cfg.n_filters, dtype_bytes=self.dtype.itemsize,
                          n_exchange=cfg.n_exchange)

    @property
    def telemetry_errors(self) -> int:
        """Hook/exporter callbacks that raised and were isolated."""
        return self.pipeline.telemetry_errors

    # -- state delegation ------------------------------------------------------
    # The population lives in the engine's FilterState; these properties keep
    # the long-standing public attribute surface (and the related-work
    # subclasses that assign to it) working unchanged.
    @property
    def states(self) -> np.ndarray | None:  # (F, m, d)
        return self._state.states

    @states.setter
    def states(self, value) -> None:
        self._state.states = value

    @property
    def log_weights(self) -> np.ndarray | None:  # (F, m)
        return self._state.log_weights

    @log_weights.setter
    def log_weights(self, value) -> None:
        self._state.log_weights = value

    @property
    def k(self) -> int:
        return self._state.k

    @k.setter
    def k(self, value: int) -> None:
        self._state.k = value

    @property
    def last_estimate(self) -> np.ndarray | None:
        return self._state.last_estimate

    @last_estimate.setter
    def last_estimate(self, value) -> None:
        self._state.last_estimate = value

    @property
    def heal_counters(self) -> dict[str, int]:
        """Numerical self-healing counters: particles masked for non-finite
        weight/state, and sub-filters rejuvenated after total degeneracy."""
        return self._state.heal_counters

    # -- lifecycle ----------------------------------------------------------
    def initialize(self) -> None:
        """Draw every sub-filter's population from the model prior.

        Adaptive allocation starts from the paper's equal split, padded out
        to the policy's capacity ``m_max``; the fixed policy keeps the exact
        dense ``(F, m, d)`` layout (no padding, ``widths`` unset).
        """
        cfg = self.config
        flat = self.model.initial_particles(cfg.total_particles, self.rng, dtype=self.dtype)
        states = np.ascontiguousarray(
            flat.reshape(cfg.n_filters, cfg.n_particles, self.model.state_dim))
        log_weights = np.zeros((cfg.n_filters, cfg.n_particles),
                               dtype=self.dtype_policy.weight)
        capacity = allocation_capacity(cfg)
        widths = None
        if capacity != cfg.n_particles:
            states, log_weights = pad_population(states, log_weights, capacity)
            widths = np.full(cfg.n_filters, cfg.n_particles, dtype=np.int64)
        self._state.reset(states, log_weights, widths=widths)

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        """One distributed filtering round; returns the global estimate."""
        if self._state.states is None:
            self.initialize()
        return self.pipeline.run(self._ctx, self._state, measurement, control)

    # -- kernels --------------------------------------------------------------
    # Default bodies live in repro.engine.vector_stages; these thin methods
    # are the override points the related-work variants
    # (repro.baselines.distributed_variants) subclass.
    def _heal_population(self) -> None:
        vector_stages.heal_population(self._ctx, self._state)

    def _top_t(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        return vector_stages.top_t(self._ctx, self._state, t)

    def _exchange(self) -> tuple[np.ndarray, np.ndarray]:
        return vector_stages.exchange_pool(self._ctx, self._state)

    def _resample(self, pooled_states: np.ndarray, pooled_logw: np.ndarray) -> None:
        self._state.pooled_states = pooled_states
        self._state.pooled_logw = pooled_logw
        vector_stages.resample(self._ctx, self._state)

    # -- checkpoint / restore ---------------------------------------------------
    def save_checkpoint(self, path: str) -> dict:
        """Atomically write a snapshot resumable bit-identically; see
        :mod:`repro.resilience.checkpoint` for the format and guarantees."""
        from repro.resilience.checkpoint import save_filter_checkpoint

        return save_filter_checkpoint(self, path, backend="vectorized")

    def load_checkpoint(self, path: str) -> dict:
        """Restore a :meth:`save_checkpoint` snapshot (population + RNG +
        step counter); the next :meth:`step` continues the original trace."""
        from repro.resilience.checkpoint import load_filter_checkpoint

        return load_filter_checkpoint(self, path, backend="vectorized")

    # -- introspection ---------------------------------------------------------
    @property
    def widths(self) -> np.ndarray | None:
        """Per-sub-filter live widths ``m_i`` (``None`` under fixed layout)."""
        return self._state.widths

    @property
    def live_particles(self) -> int:
        """Total live particles across sub-filters (excludes padding)."""
        return self._state.live_particles

    def weight_mass_share(self) -> np.ndarray:
        """Each sub-filter's share of the global weight mass, shape (F,)."""
        from repro.allocation import weight_mass_share

        return weight_mass_share(self.log_weights)

    @property
    def n_filters(self) -> int:
        return self.config.n_filters

    @property
    def total_particles(self) -> int:
        return self.config.total_particles

    @property
    def kernel_seconds(self) -> dict[str, float]:
        """Cumulative wall time of registered kernels dispatched this run."""
        return self.kernel_hook.kernel_seconds

    def local_estimates(self) -> np.ndarray:
        """Per-sub-filter estimates, shape ``(n_filters, state_dim)``."""
        return local_estimates(self.states, self.log_weights, self.config.estimator)

    def ess_per_filter(self) -> np.ndarray:
        from repro.resampling import effective_sample_size

        w = np.exp(self.log_weights - self.log_weights.max(axis=1, keepdims=True))
        return effective_sample_size(w, axis=1)
