"""The distributed particle filter (Algorithm 2) — the paper's contribution.

A network of ``N`` small sub-filters of ``m`` particles each. Every round,
each sub-filter independently samples, weights, sorts its particles, and then
exchanges its best ``t`` particles with its topological neighbours before
resampling *locally* from the pooled (own + received) weighted set. All
operations are local to a sub-filter except the neighbour exchange and the
final estimate reduction, which is what makes the design scale with core
count instead of core size.

The implementation is batched: every kernel operates on the full
``(n_filters, m, state_dim)`` population in vectorized NumPy, the same shape
as the paper's one-work-group-per-sub-filter device kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import global_estimate, local_estimates
from repro.kernels.exchange import route_pairwise, route_pooled
from repro.utils.arrays import degenerate_rows, sanitize_log_weights
from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.topology import ExchangeTopology, make_topology

_NEG_INF = -np.inf


class DistributedParticleFilter:
    """Algorithm 2 over an exchange topology.

    Parameters
    ----------
    model:
        the dynamical system (vectorized over leading batch dims).
    config:
        the (m, N, X, t, ...) parameter set; see
        :class:`~repro.core.parameters.DistributedFilterConfig`.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig | None = None):
        self.model = model
        self.config = config or DistributedFilterConfig()
        cfg = self.config
        if isinstance(cfg.topology, ExchangeTopology):
            if cfg.topology.n_filters != cfg.n_filters:
                raise ValueError(
                    f"topology has {cfg.topology.n_filters} filters, config says {cfg.n_filters}"
                )
            self.topology = cfg.topology
        else:
            self.topology = make_topology(str(cfg.topology), cfg.n_filters)
        self._table = self.topology.neighbor_table()
        self._mask = self._table >= 0
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(cfg.rng, cfg.seed), self.timer)
        self.resampler = make_resampler(cfg.resampler)
        self.policy = make_policy(cfg.resample_policy, cfg.resample_arg)
        self.dtype = np.dtype(cfg.dtype)
        self.k = 0
        self.states: np.ndarray | None = None  # (F, m, d)
        self.log_weights: np.ndarray | None = None  # (F, m)
        self.last_estimate: np.ndarray | None = None
        #: numerical self-healing counters: particles masked for non-finite
        #: weight/state, and sub-filters rejuvenated after total degeneracy.
        self.heal_counters = {"sanitized": 0, "rejuvenated": 0}

    # -- lifecycle ----------------------------------------------------------
    def initialize(self) -> None:
        """Draw every sub-filter's population from the model prior."""
        cfg = self.config
        flat = self.model.initial_particles(cfg.total_particles, self.rng, dtype=self.dtype)
        self.states = np.ascontiguousarray(flat.reshape(cfg.n_filters, cfg.n_particles, self.model.state_dim))
        self.log_weights = np.zeros((cfg.n_filters, cfg.n_particles), dtype=np.float64)
        self.k = 0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        """One distributed filtering round; returns the global estimate."""
        if self.states is None:
            self.initialize()
        cfg = self.config

        # 1) Sampling + importance weighting (one fused kernel in the paper).
        #    With frim_redraws > 0 the FRIM strategy of related work [19]
        #    keeps each particle's best of a bounded number of draws.
        with self.timer.phase("sampling"):
            if cfg.frim_redraws > 0:
                from repro.core.frim import frim_sample

                self.states, loglik = frim_sample(
                    self.model, self.states, measurement, control, self.k, self.rng,
                    redraws=cfg.frim_redraws, quantile=cfg.frim_quantile,
                )
                self.states = self.states.astype(self.dtype, copy=False)
            else:
                self.states = self.model.transition(self.states, control, self.k, self.rng)
                loglik = self.model.log_likelihood(self.states, measurement, self.k)
            self.log_weights = self.log_weights + loglik.astype(np.float64)
            if cfg.self_heal:
                self._heal_population()

        # 2) Local sort by weight (descending), or the cheaper local max.
        with self.timer.phase("sort"):
            if cfg.selection == "sort":
                order = np.argsort(-self.log_weights, axis=1, kind="stable")
                self.log_weights = np.take_along_axis(self.log_weights, order, axis=1)
                self.states = np.take_along_axis(self.states, order[:, :, None], axis=1)

        # 3) Global estimate: local reduction then global reduction.
        with self.timer.phase("estimate"):
            estimate = global_estimate(self.states, self.log_weights, cfg.estimator)
            self.last_estimate = estimate

        # 4) Neighbour exchange -> per-sub-filter pooled candidate sets.
        with self.timer.phase("exchange"):
            pooled_states, pooled_logw = self._exchange()

        # 5) Local resampling from the pooled weighted set.
        with self.timer.phase("resample"):
            self._resample(pooled_states, pooled_logw)

        self.k += 1
        return estimate

    # -- kernels --------------------------------------------------------------
    def _heal_population(self) -> None:
        """Numerical self-healing after weighting (docs/robustness.md).

        NaN log-weights and particles whose state went non-finite are masked
        to ``-inf`` (zero mass). A sub-filter left with *no* finite weight is
        rejuvenated by cloning a live topological neighbour's particles and
        restarting on uniform weights — the paper's exchange primitive
        reused as a recovery primitive. Deterministic (no RNG draws), so a
        healthy run is bit-identical with healing on or off.
        """
        n_bad = sanitize_log_weights(self.log_weights, self.states)
        if n_bad:
            self.heal_counters["sanitized"] += n_bad
        dead = degenerate_rows(self.log_weights)
        if not dead.any():
            return
        alive = ~dead
        for f in np.flatnonzero(dead):
            donors = self._table[f][self._mask[f]]
            donors = donors[alive[donors]]
            if donors.size:
                self.states[f] = self.states[int(donors[0])]
            elif alive.any():
                self.states[f] = self.states[int(np.flatnonzero(alive)[0])]
            # else: every sub-filter is degenerate — keep own states and
            # restart all of them on uniform weights.
            ok = np.isfinite(self.states[f]).all(axis=-1)
            self.log_weights[f] = np.where(ok, 0.0, -np.inf) if ok.any() else 0.0
            self.heal_counters["rejuvenated"] += 1

    def _top_t(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Each sub-filter's t best (or weight-sampled) particles."""
        cfg = self.config
        if cfg.exchange_select == "sample":
            w = np.exp(self.log_weights - self.log_weights.max(axis=1, keepdims=True))
            sel = self.resampler.resample_batch(w, t, self.rng)  # (F, t)
        elif cfg.selection == "sort":
            # Rows are already sorted descending.
            F = cfg.n_filters
            sel = np.broadcast_to(np.arange(t), (F, t))
        else:
            # Local-max selection: argpartition the t best, then order them.
            part = np.argpartition(-self.log_weights, min(t, cfg.n_particles - 1), axis=1)[:, :t]
            part_w = np.take_along_axis(self.log_weights, part, axis=1)
            inner = np.argsort(-part_w, axis=1)
            sel = np.take_along_axis(part, inner, axis=1)
        send_states = np.take_along_axis(self.states, sel[:, :, None], axis=1)
        send_logw = np.take_along_axis(self.log_weights, sel, axis=1)
        return send_states, send_logw

    def _exchange(self) -> tuple[np.ndarray, np.ndarray]:
        """Pool each sub-filter's particles with its neighbours' contributions."""
        cfg = self.config
        t = cfg.n_exchange
        if t == 0 or self._table.shape[1] == 0:
            return self.states, self.log_weights
        send_states, send_logw = self._top_t(t)

        if self.topology.pooled:
            # All-to-All: a global pool; everyone reads back the same t best.
            recv_states, recv_logw = route_pooled(send_states, send_logw, t)
        else:
            # Pairwise: gather each neighbour's sent particles.
            recv_states, recv_logw = route_pairwise(send_states, send_logw, self._table, self._mask)

        pooled_states = np.concatenate([self.states, recv_states.astype(self.states.dtype, copy=False)], axis=1)
        pooled_logw = np.concatenate([self.log_weights, recv_logw], axis=1)
        return pooled_states, pooled_logw

    def _resample(self, pooled_states: np.ndarray, pooled_logw: np.ndarray) -> None:
        """Resample each flagged sub-filter down to m particles."""
        cfg = self.config
        row_max = pooled_logw.max(axis=1, keepdims=True)
        w = np.exp(pooled_logw - row_max)  # padded -inf entries become 0
        local_w = np.exp(self.log_weights - self.log_weights.max(axis=1, keepdims=True))
        mask = self.policy.should_resample(local_w, self.rng)
        if not mask.any():
            return
        idx = self.resampler.resample_batch(w[mask], cfg.n_particles, self.rng)  # (F', m)
        new_states = np.take_along_axis(pooled_states[mask], idx[:, :, None], axis=1)
        if cfg.roughening > 0.0:
            # Gordon/Salmond/Smith roughening: per-dimension jitter scaled by
            # the population's sample range and n^(-1/d) — restores diversity
            # lost to resampling duplicates (sample impoverishment).
            d = self.model.state_dim
            span = (self.states.reshape(-1, d).max(axis=0) - self.states.reshape(-1, d).min(axis=0)).astype(np.float64)
            scale = cfg.roughening * span * cfg.total_particles ** (-1.0 / d)
            jitter = self.rng.normal(new_states.shape, dtype=np.float64) * scale
            new_states = new_states + jitter.astype(new_states.dtype)
        self.states[mask] = new_states
        self.log_weights[mask] = 0.0

    # -- introspection ---------------------------------------------------------
    @property
    def n_filters(self) -> int:
        return self.config.n_filters

    @property
    def total_particles(self) -> int:
        return self.config.total_particles

    def local_estimates(self) -> np.ndarray:
        """Per-sub-filter estimates, shape ``(n_filters, state_dim)``."""
        return local_estimates(self.states, self.log_weights, self.config.estimator)

    def ess_per_filter(self) -> np.ndarray:
        from repro.resampling import effective_sample_size

        w = np.exp(self.log_weights - self.log_weights.max(axis=1, keepdims=True))
        return effective_sample_size(w, axis=1)
