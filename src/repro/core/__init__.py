"""Core particle filters: the paper's distributed algorithm and the
centralized reference, plus configuration, estimators and the run driver."""

from repro.core.parameters import (
    CentralizedFilterConfig,
    DEFAULT_CPU_CONFIG,
    DEFAULT_GPU_CONFIG,
    DistributedFilterConfig,
)
from repro.core.centralized import CentralizedParticleFilter
from repro.core.distributed import DistributedParticleFilter
from repro.core.estimator import (
    global_estimate,
    local_estimates,
    max_weight_estimate,
    weighted_mean_estimate,
)
from repro.core.runner import FilterRun, average_error, run_filter
from repro.core.tuning import expected_update_rate, recommend_config
from repro.core.diagnostics import (
    DiversityTracker,
    cross_filter_overlap,
    run_with_diagnostics,
    unique_particle_fraction,
    weight_statistics,
)

__all__ = [
    "CentralizedFilterConfig",
    "CentralizedParticleFilter",
    "DistributedFilterConfig",
    "DistributedParticleFilter",
    "DEFAULT_CPU_CONFIG",
    "DEFAULT_GPU_CONFIG",
    "FilterRun",
    "average_error",
    "run_filter",
    "global_estimate",
    "local_estimates",
    "max_weight_estimate",
    "weighted_mean_estimate",
    "recommend_config",
    "expected_update_rate",
    "DiversityTracker",
    "cross_filter_overlap",
    "run_with_diagnostics",
    "unique_particle_fraction",
    "weight_statistics",
]
