"""Filter configuration (Tables I and II of the paper).

Table I identifies the distributed filter's parameters: particles per
sub-filter (m), number of sub-filters (N), exchange scheme (X) and particles
per exchange (t). Table II gives the defaults used throughout the paper's
experiments: m=512 on GPUs / 64 on CPUs, N=1024, Ring, t=1, plus the robotic
arm model defaults carried by :class:`repro.models.RobotArmParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.utils.validation import check_dtype, check_positive_int


@dataclass(frozen=True)
class DistributedFilterConfig:
    """Parameters of the distributed particle filter (Table I).

    Attributes
    ----------
    n_particles:
        m - particles per sub-filter.
    n_filters:
        N - number of sub-filters in the network.
    topology:
        X - exchange scheme: ``"ring"``, ``"torus"``, ``"all-to-all"`` or
        ``"none"`` (or a pre-built :class:`~repro.topology.ExchangeTopology`).
    n_exchange:
        t - particles exchanged per neighbour pair per round (0 disables).
    resampler:
        ``"rws"`` (paper's sub-filter choice), ``"vose"``, ``"systematic"``,
        ``"stratified"``, ``"multinomial"`` or ``"residual"``.
    resample_policy / resample_arg:
        ``"always"`` (paper default), ``"ess"`` (threshold ratio in
        ``resample_arg``) or ``"frequency"`` (probability in ``resample_arg``).
    estimator:
        global estimate reduction: ``"max_weight"`` (paper's choice) or
        ``"weighted_mean"``.
    exchange_select:
        ``"best"`` — send the top-t after the local sort (paper's kernel) —
        or ``"sample"`` — draw the t sent particles by weight (Algorithm 2's
        line 11 notation).
    selection:
        ``"sort"`` — full local bitonic sort — or ``"max"`` — the cheaper
        local-maximum alternative the paper suggests (forces t=1 semantics).
    dtype:
        float32 (paper's device precision) or float64.
    rng / seed:
        RNG backend name (see :func:`repro.prng.make_rng`) and master seed.
    """

    n_particles: int = 512
    n_filters: int = 1024
    topology: object = "ring"
    n_exchange: int = 1
    resampler: str = "rws"
    resample_policy: str = "always"
    resample_arg: float = 0.5
    estimator: str = "max_weight"
    exchange_select: str = "best"
    selection: str = "sort"
    frim_redraws: int = 0
    frim_quantile: float = 0.5
    #: roughening coefficient (Gordon, Salmond & Smith 1993): after each
    #: resample, jitter particles by K * range * n^(-1/d) per dimension to
    #: fight sample impoverishment. 0 disables (paper default).
    roughening: float = 0.0
    #: numerical self-healing: each round, NaN weights and non-finite
    #: particles are masked to -inf, and a sub-filter that lost *every*
    #: finite weight is rejuvenated from a live topological neighbour
    #: (see docs/robustness.md). Purely corrective — a healthy run takes
    #: the exact same path with or without it.
    self_heal: bool = True
    #: particle allocation across sub-filters: ``"fixed"`` (the paper's
    #: equal split — widths never change and the layout is the classic
    #: ``(F, m, d)`` block), ``"ess"`` (widths proportional to each
    #: sub-filter's effective sample size) or ``"mass"`` (DRNA-style:
    #: widths proportional to local weight mass). See
    #: :mod:`repro.allocation`. The total budget ``n_filters * n_particles``
    #: is conserved exactly under every policy.
    allocation: str = "fixed"
    #: smallest live width an adaptive policy may shrink a sub-filter to.
    alloc_min_width: int = 4
    #: largest live width (and the padded capacity ``m_max`` arrays are
    #: sized for); 0 means "resolve to 4 * n_particles".
    alloc_max_width: int = 0
    #: relative dead-band: a sub-filter's width only changes when the
    #: proposal differs from the current width by more than this fraction.
    alloc_hysteresis: float = 0.25
    dtype: object = np.float32
    #: execution-form preference: ``"reference"`` (the historical batched-
    #: NumPy forms — every golden trace pins this) or ``"compiled"``
    #: (fused/JIT forms where a kernel provides them, reference otherwise).
    #: See :class:`repro.kernels.forms.ExecutionPolicy`.
    execution: str = "reference"
    #: per-role precision: ``"mixed"`` (states at ``dtype``, float64
    #: log-weights and reductions — the historical behaviour), ``"float32"``
    #: (float32 states *and* log-weights, float64 reductions) or
    #: ``"float64"`` (everything double). See :mod:`repro.core.dtypes`.
    dtype_policy: str = "mixed"
    #: randomness partitioning across workers: ``"worker"`` (one stream per
    #: worker process — the historical behaviour every pre-shard golden
    #: trace pins) or ``"filter"`` (one stream per sub-filter, striped into
    #: the worker's batched draws — results become invariant to how
    #: sub-filters are sharded over workers, which is what makes N-shard
    #: runs bit-identical to single-process runs and lets checkpoints
    #: resume under a different shard count). Single-process backends
    #: ignore it.
    rng_streams: str = "worker"
    rng: str = "numpy"
    seed: int = 0

    def __post_init__(self):
        check_positive_int(self.n_particles, "n_particles")
        check_positive_int(self.n_filters, "n_filters")
        if self.n_exchange < 0:
            raise ValueError(f"n_exchange must be >= 0, got {self.n_exchange}")
        if self.n_exchange > self.n_particles:
            raise ValueError("cannot exchange more particles than a sub-filter holds")
        if self.exchange_select not in ("best", "sample"):
            raise ValueError(f"exchange_select must be 'best' or 'sample', got {self.exchange_select!r}")
        if self.selection not in ("sort", "max"):
            raise ValueError(f"selection must be 'sort' or 'max', got {self.selection!r}")
        if self.estimator not in ("max_weight", "weighted_mean"):
            raise ValueError(f"estimator must be 'max_weight' or 'weighted_mean', got {self.estimator!r}")
        if self.resample_policy not in ("always", "ess", "frequency"):
            raise ValueError(f"unknown resample_policy {self.resample_policy!r}")
        if self.frim_redraws < 0:
            raise ValueError(f"frim_redraws must be >= 0, got {self.frim_redraws}")
        if not 0.0 < self.frim_quantile < 1.0:
            raise ValueError(f"frim_quantile must be in (0, 1), got {self.frim_quantile}")
        if self.roughening < 0:
            raise ValueError(f"roughening must be >= 0, got {self.roughening}")
        if self.allocation not in ("fixed", "ess", "mass"):
            raise ValueError(
                f"allocation must be 'fixed', 'ess' or 'mass', got {self.allocation!r}")
        if self.allocation != "fixed":
            if self.frim_redraws > 0:
                raise ValueError(
                    "adaptive allocation is incompatible with FRIM redraws "
                    "(the per-sub-filter redraw quantile assumes equal widths)")
            if self.alloc_hysteresis < 0:
                raise ValueError(
                    f"alloc_hysteresis must be >= 0, got {self.alloc_hysteresis}")
            # Resolve the clamps once, so serialized configs are concrete.
            max_w = self.alloc_max_width if self.alloc_max_width > 0 else 4 * self.n_particles
            min_w = min(self.alloc_min_width, self.n_particles)
            if min_w < 1:
                raise ValueError(
                    f"alloc_min_width must be >= 1, got {self.alloc_min_width}")
            if max_w < self.n_particles:
                raise ValueError(
                    f"alloc_max_width ({max_w}) must be >= n_particles "
                    f"({self.n_particles}) so the initial equal split is feasible")
            object.__setattr__(self, "alloc_min_width", int(min_w))
            object.__setattr__(self, "alloc_max_width", int(max_w))
        if self.execution not in ("reference", "compiled"):
            raise ValueError(
                f"execution must be 'reference' or 'compiled', got {self.execution!r}")
        if self.dtype_policy not in ("mixed", "float32", "float64"):
            raise ValueError(
                f"dtype_policy must be 'mixed', 'float32' or 'float64', "
                f"got {self.dtype_policy!r}")
        if self.rng_streams not in ("worker", "filter"):
            raise ValueError(
                f"rng_streams must be 'worker' or 'filter', "
                f"got {self.rng_streams!r}")
        object.__setattr__(self, "dtype", check_dtype(self.dtype))

    @property
    def total_particles(self) -> int:
        return self.n_particles * self.n_filters

    def with_(self, **kwargs) -> "DistributedFilterConfig":
        """A modified copy (convenience for parameter sweeps)."""
        return replace(self, **kwargs)


#: Table II defaults for GPU-class execution (512 particles per sub-filter).
DEFAULT_GPU_CONFIG = DistributedFilterConfig(n_particles=512, n_filters=1024, topology="ring", n_exchange=1)

#: Table II defaults for CPU-class execution (64 particles per sub-filter).
DEFAULT_CPU_CONFIG = DistributedFilterConfig(n_particles=64, n_filters=1024, topology="ring", n_exchange=1)


@dataclass(frozen=True)
class CentralizedFilterConfig:
    """Parameters of the reference centralized filter (Algorithm 1)."""

    n_particles: int = 4096
    resampler: str = "vose"  # the paper's centralized filter uses Vose
    resample_policy: str = "always"
    resample_arg: float = 0.5
    estimator: str = "weighted_mean"
    dtype: object = np.float64
    rng: str = "numpy"
    seed: int = 0

    def __post_init__(self):
        check_positive_int(self.n_particles, "n_particles")
        if self.estimator not in ("max_weight", "weighted_mean"):
            raise ValueError(f"estimator must be 'max_weight' or 'weighted_mean', got {self.estimator!r}")
        if self.resample_policy not in ("always", "ess", "frequency"):
            raise ValueError(f"unknown resample_policy {self.resample_policy!r}")
        object.__setattr__(self, "dtype", check_dtype(self.dtype))


# ---------------------------------------------------------------------------
# Serialization (experiment records)
# ---------------------------------------------------------------------------


def _config_to_dict(cfg) -> dict:
    out = {}
    for f in cfg.__dataclass_fields__:
        v = getattr(cfg, f)
        if f == "dtype":
            v = np.dtype(v).name
        elif f == "topology" and not isinstance(v, str):
            raise TypeError(
                "only named topologies serialize; build custom graphs at load time"
            )
        out[f] = v
    return out


def distributed_config_to_dict(cfg: DistributedFilterConfig) -> dict:
    """JSON-ready record of a distributed filter configuration."""
    return _config_to_dict(cfg)


def distributed_config_from_dict(d: dict) -> DistributedFilterConfig:
    """Inverse of :func:`distributed_config_to_dict`."""
    return DistributedFilterConfig(**d)


def centralized_config_to_dict(cfg: CentralizedFilterConfig) -> dict:
    """JSON-ready record of a centralized filter configuration."""
    return _config_to_dict(cfg)


def centralized_config_from_dict(d: dict) -> CentralizedFilterConfig:
    """Inverse of :func:`centralized_config_to_dict`."""
    return CentralizedFilterConfig(**d)
