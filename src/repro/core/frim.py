"""FRIM: finite-redraw importance-maximizing sampling (Chao et al. [19]).

The CUDA particle filter of related work [19] rejects drawn particles and
redraws until a particle satisfies a minimum weight, with the number of
redraws bounded — "which is critical for real-time systems". The effect is a
better-placed population per round, reducing the total number of particles
required.

Our vectorized form: draw once, fix a per-sub-filter likelihood threshold at
the q-quantile of that first draw, then perform up to ``redraws`` additional
full draws, keeping each particle's best attempt (only particles still below
the threshold are eligible to be replaced). The redraw bound makes the cost
data-independent: exactly ``redraws + 1`` sampling kernels per round, worst
case.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG
from repro.utils.validation import check_positive_int


def frim_sample(
    model: StateSpaceModel,
    prev_states: np.ndarray,
    measurement: np.ndarray,
    control: np.ndarray | None,
    k: int,
    rng: FilterRNG,
    redraws: int,
    quantile: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the next states with bounded importance-maximizing redraws.

    Parameters
    ----------
    prev_states:
        ``(..., m, d)`` particle states at time k-1.
    redraws:
        maximum additional draws per round (0 = plain sampling).
    quantile:
        particles whose log-likelihood falls below this quantile of the
        first draw are redrawn.

    Returns
    -------
    ``(states, log_likelihoods)`` of the kept draws.
    """
    check_positive_int(redraws + 1, "redraws + 1")
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    states = model.transition(prev_states, control, k, rng)
    ll = model.log_likelihood(states, measurement, k).astype(np.float64)
    if redraws == 0:
        return states, ll
    # Threshold fixed from the first draw: per sub-filter (row) quantile.
    thresh = np.quantile(ll, quantile, axis=-1, keepdims=True)
    best_states = states
    best_ll = ll
    for _ in range(redraws):
        below = best_ll < thresh
        if not below.any():
            break
        cand = model.transition(prev_states, control, k, rng)
        cand_ll = model.log_likelihood(cand, measurement, k).astype(np.float64)
        improve = below & (cand_ll > best_ll)
        best_states = np.where(improve[..., None], cand, best_states)
        best_ll = np.where(improve, cand_ll, best_ll)
    return best_states, best_ll
