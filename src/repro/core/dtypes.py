"""The dtype policy: which precision each class of array carries.

Murray, Lee & Jacob (arXiv:1301.4019) get their device throughput from
float32 state slabs — but log-weight *reductions* (logsumexp, ESS, the
normalization sums inside resampling) are exactly where float32 loses
digits, so the policy splits the population into three roles:

- ``state``  — the ``(F, m, d)`` particle slabs (bandwidth-bound),
- ``weight`` — the ``(F, m)`` log-weight matrix carried between steps,
- ``reduce`` — accumulators of sums/maxima over weights (always float64
  here; every named policy keeps reductions in double, which is what the
  float32 tolerance-parity suite leans on).

``mixed`` is the historical behaviour — states at the config dtype,
weights and reductions in float64 — and is therefore the default: a config
that never mentions ``dtype_policy`` stays bit-identical to every golden
trace recorded before the policy existed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the policy names a config may carry.
DTYPE_POLICY_NAMES = ("mixed", "float32", "float64")


@dataclass(frozen=True)
class DtypePolicy:
    """Resolved per-role dtypes for one filter run."""

    name: str
    state: np.dtype
    weight: np.dtype
    reduce: np.dtype

    @property
    def tolerance(self) -> float:
        """Documented parity bound vs a float64 run of the same seed.

        float64/mixed runs are bit-identical (0.0); float32 weights carry
        ~1e-6 relative error through a weight-normalization/logsumexp pass
        (see ``tests/kernels/test_float32_parity.py``), widened to 1e-4 to
        absorb accumulation over a multi-step trajectory's reductions.
        """
        return 1e-4 if self.weight == np.float32 else 0.0


def resolve_dtype_policy(name: str = "mixed", state_dtype=np.float32) -> DtypePolicy:
    """Map a policy name (+ the config's particle dtype) to concrete dtypes."""
    if name == "mixed":
        return DtypePolicy("mixed", np.dtype(state_dtype),
                           np.dtype(np.float64), np.dtype(np.float64))
    if name == "float32":
        return DtypePolicy("float32", np.dtype(np.float32),
                           np.dtype(np.float32), np.dtype(np.float64))
    if name == "float64":
        return DtypePolicy("float64", np.dtype(np.float64),
                           np.dtype(np.float64), np.dtype(np.float64))
    raise ValueError(
        f"dtype_policy must be one of {DTYPE_POLICY_NAMES}, got {name!r}")


__all__ = ["DTYPE_POLICY_NAMES", "DtypePolicy", "resolve_dtype_policy"]
