"""Population diagnostics: diversity, weight statistics, degeneracy.

The paper's central accuracy findings are diversity arguments: resampling
duplicates particles ("loss of diversity"), and All-to-All exchange feeds
*identical* particles to every sub-filter, collapsing global diversity.
These metrics make that mechanism measurable.
"""

from __future__ import annotations

import numpy as np

from repro.resampling import effective_sample_size


def unique_particle_fraction(states: np.ndarray, decimals: int = 10) -> float:
    """Fraction of distinct particles in the whole population.

    ``states`` is ``(..., m, d)``; particles are compared after rounding to
    *decimals* to ignore float noise. 1.0 = all distinct, 1/n = one particle
    duplicated everywhere (total degeneracy).
    """
    flat = np.asarray(states).reshape(-1, np.asarray(states).shape[-1])
    rounded = np.round(flat, decimals)
    return float(np.unique(rounded, axis=0).shape[0]) / flat.shape[0]


def cross_filter_overlap(states: np.ndarray, decimals: int = 10) -> float:
    """Mean fraction of a sub-filter's particles also present in *other*
    sub-filters — the quantity All-to-All exchange inflates.

    ``states`` is ``(F, m, d)``. Returns 0 when every sub-filter's particles
    are unique to it, approaching 1 as populations become shared copies.
    """
    states = np.asarray(states)
    if states.ndim != 3:
        raise ValueError(f"expected (F, m, d) states, got shape {states.shape}")
    F, m, d = states.shape
    if F < 2:
        return 0.0
    rounded = np.round(states, decimals)
    keys = [set(map(tuple, rounded[f])) for f in range(F)]
    overlaps = []
    for f in range(F):
        others = set().union(*(keys[g] for g in range(F) if g != f))
        overlaps.append(len(keys[f] & others) / len(keys[f]))
    return float(np.mean(overlaps))


def weight_statistics(log_weights: np.ndarray) -> dict:
    """Summary of the weight distribution per population.

    Returns the global ESS fraction, the max-weight share, and the variance
    of normalized weights — the degeneracy indicators of Section II-B.
    """
    lw = np.asarray(log_weights, dtype=np.float64).reshape(-1)
    w = np.exp(lw - lw.max())
    w = w / w.sum()
    n = w.size
    return {
        "ess_fraction": float(effective_sample_size(w)) / n,
        "max_weight_share": float(w.max()),
        "weight_variance": float(w.var()),
        "n": n,
    }


class DiversityTracker:
    """Records population diversity over the steps of a filtering run.

    Attach to a :class:`~repro.core.distributed.DistributedParticleFilter`
    and call :meth:`record` after every step (or use
    :func:`run_with_diagnostics`).
    """

    def __init__(self, decimals: int = 10):
        self.decimals = decimals
        self.unique_fraction: list[float] = []
        self.overlap: list[float] = []
        self.ess_fraction: list[float] = []

    def record(self, pf) -> None:
        self.unique_fraction.append(unique_particle_fraction(pf.states, self.decimals))
        if pf.states.ndim == 3:
            self.overlap.append(cross_filter_overlap(pf.states, self.decimals))
        self.ess_fraction.append(weight_statistics(pf.log_weights)["ess_fraction"])

    def summary(self) -> dict:
        return {
            "mean_unique_fraction": float(np.mean(self.unique_fraction)) if self.unique_fraction else 1.0,
            "mean_overlap": float(np.mean(self.overlap)) if self.overlap else 0.0,
            "mean_ess_fraction": float(np.mean(self.ess_fraction)) if self.ess_fraction else 1.0,
        }


def run_with_diagnostics(pf, model, truth, decimals: int = 10):
    """Like :func:`repro.core.runner.run_filter` but also tracks diversity.

    Returns ``(FilterRun, DiversityTracker)``.
    """
    from repro.core.runner import FilterRun
    import time

    pf.initialize()
    tracker = DiversityTracker(decimals=decimals)
    T = truth.n_steps
    estimates = np.empty((T, model.state_dim))
    errors = np.empty(T)
    has_controls = truth.controls.shape[1] > 0
    start = time.perf_counter()
    for k in range(T):
        u = truth.controls[k] if has_controls else None
        estimates[k] = pf.step(truth.measurements[k], u)
        errors[k] = model.estimate_error(estimates[k], truth.states[k])
        tracker.record(pf)
    wall = time.perf_counter() - start
    run = FilterRun(estimates=estimates, errors=errors, wall_seconds=wall,
                    kernel_seconds=dict(pf.timer.seconds) if hasattr(pf, "timer") else {})
    return run, tracker
