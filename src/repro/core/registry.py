"""Name-to-object factories shared by filter constructors."""

from __future__ import annotations

from repro.resampling import (
    AlwaysResample,
    ESSThresholdPolicy,
    MetropolisResampler,
    MultinomialResampler,
    RandomFrequencyPolicy,
    ResidualResampler,
    Resampler,
    RouletteWheelResampler,
    StratifiedResampler,
    SystematicResampler,
    VoseAliasResampler,
)

_RESAMPLERS = {
    "rws": RouletteWheelResampler,
    "roulette": RouletteWheelResampler,
    "vose": VoseAliasResampler,
    "alias": VoseAliasResampler,
    "systematic": SystematicResampler,
    "stratified": StratifiedResampler,
    "multinomial": MultinomialResampler,
    "residual": ResidualResampler,
    "metropolis": MetropolisResampler,
}


def make_resampler(name: str | Resampler) -> Resampler:
    if isinstance(name, Resampler):
        return name
    try:
        return _RESAMPLERS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown resampler {name!r}; choose from {sorted(set(_RESAMPLERS))}") from None


def make_policy(name: str, arg: float):
    key = name.lower()
    if key == "always":
        return AlwaysResample()
    if key == "ess":
        return ESSThresholdPolicy(ratio=arg)
    if key == "frequency":
        return RandomFrequencyPolicy(frequency=arg)
    raise ValueError(f"unknown resample policy {name!r}")
