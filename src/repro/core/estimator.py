"""Global-estimate reduction operators.

Delivering a single estimate from the weighted population is a two-round
reduction in the paper: first locally per sub-filter, then globally over the
local results. The reduction operator is application-specific; the paper
"selects the particle with the highest global weight", and we also provide
the weighted mean (the usual MMSE estimate).
"""

from __future__ import annotations

import numpy as np


def _finite_fallback(flat_states: np.ndarray) -> np.ndarray:
    """Unweighted mean over the particles whose state is fully finite.

    The rescue estimate when no usable weight survives. If *every* particle
    is corrupt there is nothing left to estimate from; return zeros rather
    than NaN so the caller's trajectory stays finite (and visibly wrong,
    which is the honest signal at total data loss).
    """
    finite = np.isfinite(flat_states).all(axis=1)
    if finite.any():
        return flat_states[finite].mean(axis=0).astype(np.float64)
    return np.zeros(flat_states.shape[-1], dtype=np.float64)


def max_weight_estimate(states: np.ndarray, log_weights: np.ndarray) -> np.ndarray:
    """The single particle with the highest weight in the whole population.

    ``states`` is ``(..., m, d)`` and ``log_weights`` ``(..., m)``; the
    reduction flattens all leading axes, which is exactly the local-then-
    global max reduction (max is associative).

    Robustness: NaN log-weights and particles with non-finite states are
    excluded from the argmax (a plain ``argmax`` would return the first NaN
    slot). If no candidate survives, falls back to the mean of the finite
    particles so one poisoned sub-filter cannot emit a NaN estimate.
    """
    states = np.asarray(states)
    lw = np.asarray(log_weights, dtype=np.float64)
    flat_states = states.reshape(-1, states.shape[-1])
    flat_lw = lw.reshape(-1).copy()
    usable = ~np.isnan(flat_lw) & np.isfinite(flat_states).all(axis=1)
    flat_lw[~usable] = -np.inf
    idx = int(np.argmax(flat_lw))
    if not np.isfinite(flat_lw[idx]):
        return _finite_fallback(flat_states)
    return flat_states[idx].astype(np.float64)


def weighted_mean_estimate(states: np.ndarray, log_weights: np.ndarray) -> np.ndarray:
    """Self-normalized importance-sampling mean over the whole population.

    Robustness: particles with NaN log-weight or non-finite state carry zero
    mass *and* zero contribution (a zero weight times a NaN coordinate would
    otherwise still yield NaN in the dot product). A population with no
    finite mass falls back to the mean of the finite particles.
    """
    states = np.asarray(states, dtype=np.float64)
    lw = np.asarray(log_weights, dtype=np.float64).reshape(-1).copy()
    flat = states.reshape(-1, states.shape[-1])
    finite_state = np.isfinite(flat).all(axis=1)
    lw[np.isnan(lw) | ~finite_state] = -np.inf
    peak = lw.max()
    if not np.isfinite(peak):
        return _finite_fallback(flat)
    w = np.exp(lw - peak)
    total = w.sum()
    if not np.isfinite(total) or total <= 0:
        return _finite_fallback(flat)
    contrib = np.where(finite_state[:, None], flat, 0.0)
    return (w @ contrib) / total


def local_estimates(states: np.ndarray, log_weights: np.ndarray, kind: str = "max_weight") -> np.ndarray:
    """Per-sub-filter estimates: ``states`` (F, m, d) -> (F, d)."""
    states = np.asarray(states)
    lw = np.asarray(log_weights)
    lw = np.where(np.isnan(lw), -np.inf, np.asarray(lw, dtype=np.float64))
    if kind == "max_weight":
        idx = np.argmax(lw, axis=1)
        return np.take_along_axis(states, idx[:, None, None], axis=1)[:, 0, :].astype(np.float64)
    if kind == "weighted_mean":
        peak = lw.max(axis=1, keepdims=True)
        with np.errstate(invalid="ignore"):
            w = np.exp(lw - peak)  # all--inf rows yield NaN here ...
        w = np.where(np.isfinite(w), w, 0.0)
        total = w.sum(axis=1, keepdims=True)
        m = lw.shape[1]
        # ... and degenerate rows (zero mass) fall back to a uniform average.
        w = np.where(total > 0, w / np.where(total > 0, total, 1.0), 1.0 / m)
        return np.einsum("fm,fmd->fd", w, states).astype(np.float64)
    raise ValueError(f"unknown estimator kind {kind!r}")


def global_estimate(states: np.ndarray, log_weights: np.ndarray, kind: str = "max_weight") -> np.ndarray:
    """Population-wide estimate by name."""
    if kind == "max_weight":
        return max_weight_estimate(states, log_weights)
    if kind == "weighted_mean":
        return weighted_mean_estimate(states, log_weights)
    raise ValueError(f"unknown estimator kind {kind!r}")
