"""Global-estimate reduction operators.

Delivering a single estimate from the weighted population is a two-round
reduction in the paper: first locally per sub-filter, then globally over the
local results. The reduction operator is application-specific; the paper
"selects the particle with the highest global weight", and we also provide
the weighted mean (the usual MMSE estimate).
"""

from __future__ import annotations

import numpy as np


def max_weight_estimate(states: np.ndarray, log_weights: np.ndarray) -> np.ndarray:
    """The single particle with the highest weight in the whole population.

    ``states`` is ``(..., m, d)`` and ``log_weights`` ``(..., m)``; the
    reduction flattens all leading axes, which is exactly the local-then-
    global max reduction (max is associative).
    """
    states = np.asarray(states)
    lw = np.asarray(log_weights)
    flat_states = states.reshape(-1, states.shape[-1])
    idx = int(np.argmax(lw.reshape(-1)))
    return flat_states[idx].astype(np.float64)


def weighted_mean_estimate(states: np.ndarray, log_weights: np.ndarray) -> np.ndarray:
    """Self-normalized importance-sampling mean over the whole population."""
    states = np.asarray(states, dtype=np.float64)
    lw = np.asarray(log_weights, dtype=np.float64).reshape(-1)
    flat = states.reshape(-1, states.shape[-1])
    peak = lw.max()
    if not np.isfinite(peak):
        return flat.mean(axis=0)
    w = np.exp(lw - peak)
    total = w.sum()
    if not np.isfinite(total) or total <= 0:
        return flat.mean(axis=0)
    return (w @ flat) / total


def local_estimates(states: np.ndarray, log_weights: np.ndarray, kind: str = "max_weight") -> np.ndarray:
    """Per-sub-filter estimates: ``states`` (F, m, d) -> (F, d)."""
    states = np.asarray(states)
    lw = np.asarray(log_weights)
    if kind == "max_weight":
        idx = np.argmax(lw, axis=1)
        return np.take_along_axis(states, idx[:, None, None], axis=1)[:, 0, :].astype(np.float64)
    if kind == "weighted_mean":
        shifted = lw - lw.max(axis=1, keepdims=True)
        w = np.exp(shifted)
        w /= w.sum(axis=1, keepdims=True)
        return np.einsum("fm,fmd->fd", w, states).astype(np.float64)
    raise ValueError(f"unknown estimator kind {kind!r}")


def global_estimate(states: np.ndarray, log_weights: np.ndarray, kind: str = "max_weight") -> np.ndarray:
    """Population-wide estimate by name."""
    if kind == "max_weight":
        return max_weight_estimate(states, log_weights)
    if kind == "weighted_mean":
        return weighted_mean_estimate(states, log_weights)
    raise ValueError(f"unknown estimator kind {kind!r}")
