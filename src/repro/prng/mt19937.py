"""Mersenne Twister (MT19937) implemented from scratch with vectorized twists.

The state transition ("twist") of MT19937 is defined sequentially, but the
recurrence has lag ``n - m = 227``, so a full 624-word state refresh can be
computed in three vectorized blocks plus a final wrap-around element while
remaining bit-exact with the reference implementation. Block generation is
what a GPU implementation (MTGP) does per work group; here it also makes the
generator usable at NumPy speed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER_MASK = np.uint32(0x80000000)
_LOWER_MASK = np.uint32(0x7FFFFFFF)


class MT19937:
    """The MT19937 generator of Matsumoto & Nishimura (1998).

    Parameters
    ----------
    seed:
        Either an int (seeded with ``init_genrand``) or a sequence of ints
        (seeded with ``init_by_array``), matching the reference C code.
    """

    def __init__(self, seed: int | list[int] | tuple[int, ...] = 5489):
        self.mt = np.zeros(_N, dtype=np.uint32)
        if isinstance(seed, (list, tuple, np.ndarray)):
            self.init_by_array(np.asarray(seed, dtype=np.uint64))
        else:
            self.init_genrand(int(seed))
        self._buffer = np.empty(0, dtype=np.uint32)
        self._pos = 0

    # -- seeding ----------------------------------------------------------
    def init_genrand(self, s: int) -> None:
        """Knuth-style multiplicative seeding from a single 32-bit seed."""
        mt = self.mt
        mt[0] = s & 0xFFFFFFFF
        prev = np.uint64(mt[0])
        mult = np.uint64(1812433253)
        mask = np.uint64(0xFFFFFFFF)
        for i in range(1, _N):
            prev = (mult * (prev ^ (prev >> np.uint64(30))) + np.uint64(i)) & mask
            mt[i] = np.uint32(prev)

    def init_by_array(self, init_key: np.ndarray) -> None:
        """Array seeding, matching the reference ``init_by_array``."""
        self.init_genrand(19650218)
        mt = self.mt.astype(np.uint64)
        mask = np.uint64(0xFFFFFFFF)
        key = np.asarray(init_key, dtype=np.uint64) & mask
        i, j = 1, 0
        k = max(_N, len(key))
        for _ in range(k):
            mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> np.uint64(30))) * np.uint64(1664525))) + key[j] + np.uint64(j)) & mask
            i += 1
            j += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
            if j >= len(key):
                j = 0
        for _ in range(_N - 1):
            mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> np.uint64(30))) * np.uint64(1566083941))) - np.uint64(i)) & mask
            i += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
        mt[0] = 0x80000000  # MSB is 1, assuring a non-zero initial state
        self.mt = mt.astype(np.uint32)

    # -- state transition --------------------------------------------------
    def _twist(self) -> None:
        """Refresh the full state block, bit-exact with the sequential code.

        The sequential recurrence is
        ``mt[i] = mt[(i+M)%N] ^ twist(mt[i], mt[(i+1)%N])`` where indices past
        ``N-M`` read values already updated in the same pass. We therefore
        split into blocks whose inputs are fully available.
        """
        mt = self.mt
        new = np.empty(_N, dtype=np.uint32)

        def mix(hi_src: np.ndarray, lo_src: np.ndarray) -> np.ndarray:
            y = (hi_src & _UPPER_MASK) | (lo_src & _LOWER_MASK)
            mag = np.where((y & np.uint32(1)).astype(bool), _MATRIX_A, np.uint32(0))
            return (y >> np.uint32(1)) ^ mag

        lag = _N - _M  # 227
        # Block A: i in [0, lag): sources are all original state.
        new[:lag] = mt[_M:] ^ mix(mt[:lag], mt[1 : lag + 1])
        # Block B: i in [lag, N-1): new[i] = new[i-lag] ^ mix(orig mt[i], orig mt[i+1]).
        # The dependence on new[] has lag 227, so process in lag-sized chunks.
        i = lag
        while i < _N - 1:
            j = min(i + lag, _N - 1)
            new[i:j] = new[i - lag : j - lag] ^ mix(mt[i:j], mt[i + 1 : j + 1])
            i = j
        # Final element wraps: reads the already-updated mt[0].
        y = (mt[_N - 1] & _UPPER_MASK) | (new[0] & _LOWER_MASK)
        mag = _MATRIX_A if (y & np.uint32(1)) else np.uint32(0)
        new[_N - 1] = new[_M - 1] ^ ((y >> np.uint32(1)) ^ mag)
        self.mt = new

    @staticmethod
    def _temper(y: np.ndarray) -> np.ndarray:
        y = y ^ (y >> np.uint32(11))
        y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
        y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
        y = y ^ (y >> np.uint32(18))
        return y

    # -- output ------------------------------------------------------------
    def random_uint32(self, n: int) -> np.ndarray:
        """Return the next *n* tempered 32-bit outputs."""
        n = check_positive_int(n, "n")
        out = np.empty(n, dtype=np.uint32)
        filled = 0
        while filled < n:
            if self._pos >= self._buffer.size:
                self._twist()
                self._buffer = self._temper(self.mt.copy())
                self._pos = 0
            take = min(n - filled, self._buffer.size - self._pos)
            out[filled : filled + take] = self._buffer[self._pos : self._pos + take]
            self._pos += take
            filled += take
        return out

    def random_uniform(self, n: int, dtype=np.float64) -> np.ndarray:
        """Uniforms on [0, 1) with 32-bit resolution (genrand_res32 style)."""
        u = self.random_uint32(n)
        return (u.astype(np.float64) * (1.0 / 4294967296.0)).astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MT19937(pos={self._pos})"
