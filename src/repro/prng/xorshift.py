"""xorshift128+ with many parallel lanes, plus the SplitMix64 seeder.

On GPUs, per-thread generators need tiny state; xorshift128+ (Vigna, 2014)
uses two 64-bit words and a handful of shifts/xors. We keep one lane per
"thread" and step all lanes with vectorized NumPy ops, mirroring how a SIMT
device advances one generator per lane in lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(seed: int, n: int) -> np.ndarray:
    """Generate *n* well-mixed 64-bit values from a single integer seed.

    SplitMix64 is the recommended seeder for xorshift-family generators: it
    guarantees distinct, decorrelated lane states even for adjacent seeds.
    """
    n = check_positive_int(n, "n")
    x = (np.uint64(seed & 0xFFFFFFFFFFFFFFFF) + np.arange(1, n + 1, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15))
    z = x
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return z


class XorShift128Plus:
    """A bank of *n_lanes* independent xorshift128+ generators.

    Each call to :meth:`next_uint64` advances every lane by one step and
    returns one 64-bit output per lane.
    """

    def __init__(self, seed: int, n_lanes: int):
        self.n_lanes = check_positive_int(n_lanes, "n_lanes")
        s = splitmix64(seed, 2 * n_lanes)
        self.s0 = s[:n_lanes].copy()
        self.s1 = s[n_lanes:].copy()
        # A zero (s0, s1) pair would be a fixed point; SplitMix64 cannot
        # produce two consecutive zeros, but guard anyway.
        dead = (self.s0 == 0) & (self.s1 == 0)
        self.s1[dead] = np.uint64(1)

    def next_uint64(self) -> np.ndarray:
        s1 = self.s0
        s0 = self.s1
        result = (s0 + s1) & _MASK64
        s1 = s1 ^ (s1 << np.uint64(23))
        self.s0 = s0
        self.s1 = (s1 ^ s0 ^ (s1 >> np.uint64(18)) ^ (s0 >> np.uint64(5))) & _MASK64
        return result

    def uniform(self, n_steps: int = 1, dtype=np.float64) -> np.ndarray:
        """Shape ``(n_steps, n_lanes)`` uniforms on [0, 1)."""
        n_steps = check_positive_int(n_steps, "n_steps")
        out = np.empty((n_steps, self.n_lanes), dtype=np.float64)
        for i in range(n_steps):
            # Use the top 53 bits for a full-precision double in [0, 1).
            out[i] = (self.next_uint64() >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)
        return out.astype(dtype, copy=False)
