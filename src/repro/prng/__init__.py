"""Pseudo-random number generation substrate.

The paper relies on MTGP (a Mersenne-Twister variant for GPUs) to provide many
uncorrelated random streams, one per work group (= sub-filter), plus a
Box-Muller transform for normal variates. This package provides from-scratch
implementations of:

- :class:`~repro.prng.mt19937.MT19937` - the exact Mersenne Twister (period
  2^19937-1), vectorized block generation, verified against the reference
  outputs of the original Matsumoto & Nishimura implementation.
- :class:`~repro.prng.xorshift.XorShift128Plus` - small-state per-lane
  generator in the style of per-thread GPU generators.
- :class:`~repro.prng.philox.Philox4x32` - counter-based generator in the
  style of cuRAND's Philox; each (key, counter) pair is an independent value,
  so per-sub-filter streams are trivially uncorrelated.
- :func:`~repro.prng.boxmuller.box_muller` - uniform -> standard-normal
  transform used by the paper's RNG kernel.
- :class:`~repro.prng.mtgp.MTGPStreams` - a bank of per-group MT19937
  generators, the structural analogue of MTGP's per-work-group streams.
- :class:`~repro.prng.streams.StreamManager` / RNG front-ends used by the
  filters.
"""

from repro.prng.mt19937 import MT19937
from repro.prng.xorshift import XorShift128Plus, splitmix64
from repro.prng.philox import Philox4x32
from repro.prng.boxmuller import box_muller, box_muller_pairs
from repro.prng.mtgp import MTGPStreams
from repro.prng.streams import StreamManager, FilterRNG, PhiloxRNG, NumpyRNG, XorShiftRNG, make_rng

__all__ = [
    "MT19937",
    "XorShift128Plus",
    "splitmix64",
    "Philox4x32",
    "box_muller",
    "box_muller_pairs",
    "MTGPStreams",
    "StreamManager",
    "FilterRNG",
    "PhiloxRNG",
    "NumpyRNG",
    "XorShiftRNG",
    "make_rng",
]
