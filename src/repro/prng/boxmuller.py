"""Box-Muller transform: uniforms -> standard normals.

The paper's RNG kernel adds a Box-Muller stage to MTGP output; we replicate
that as a standalone, array-shaped transform.
"""

from __future__ import annotations

import numpy as np

_TINY = np.finfo(np.float64).tiny


def box_muller_pairs(u1: np.ndarray, u2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Transform two uniform arrays into two independent N(0,1) arrays.

    ``z0 = sqrt(-2 ln u1) cos(2 pi u2)`` and the matching sine pair. ``u1`` is
    clamped away from zero so the log never produces infinities (a real GPU
    kernel does the same to stay finite in float32).
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    if u1.shape != u2.shape:
        raise ValueError(f"u1 and u2 must have the same shape, got {u1.shape} vs {u2.shape}")
    r = np.sqrt(-2.0 * np.log(np.maximum(u1, _TINY)))
    theta = 2.0 * np.pi * u2
    return r * np.cos(theta), r * np.sin(theta)


def box_muller(uniforms: np.ndarray) -> np.ndarray:
    """Transform a flat array of uniforms into the same number of normals.

    Consumes uniforms pairwise; for odd lengths the final value reuses the
    sine branch of the last full pair's radius with a fresh angle drawn from
    the leftover uniform, keeping the output length equal to the input length.
    """
    u = np.asarray(uniforms, dtype=np.float64).reshape(-1)
    if u.size == 0:
        return np.empty(0, dtype=np.float64)
    if u.size == 1:
        # A single uniform cannot make an exact normal via Box-Muller; pair it
        # with a fixed companion. Only used for degenerate 1-sample requests.
        z0, _ = box_muller_pairs(u, np.asarray([0.25]))
        return z0
    half = u.size // 2
    z0, z1 = box_muller_pairs(u[:half], u[half : 2 * half])
    out = np.concatenate([z0, z1])
    if u.size % 2:
        extra, _ = box_muller_pairs(u[-1:], u[:1])
        out = np.concatenate([out, extra])
    return out
