"""RNG front-ends used by the filters, plus per-sub-filter stream management.

Every filter in :mod:`repro.core` draws randomness through the small
:class:`FilterRNG` interface so the generator is swappable: the from-scratch
Philox/xorshift/MTGP generators reproduce the paper's device-side RNG
structure, while :class:`NumpyRNG` offers a fast vendor-library path (the
moral equivalent of linking cuRAND).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.prng.boxmuller import box_muller
from repro.prng.philox import Philox4x32
from repro.prng.xorshift import XorShift128Plus
from repro.utils.validation import check_positive_int


class FilterRNG(abc.ABC):
    """Interface for the randomness consumed by a particle filter."""

    @abc.abstractmethod
    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        """Array of the given shape, uniform on [0, 1)."""

    def normal(self, shape, dtype=np.float64) -> np.ndarray:
        """Array of the given shape, standard normal (Box-Muller default)."""
        n = int(np.prod(shape)) if np.ndim(shape) else int(shape)
        if n == 0:
            return np.empty(shape, dtype=dtype)
        u = self.uniform((n,), dtype=np.float64)
        return box_muller(u).reshape(shape).astype(dtype, copy=False)

    @abc.abstractmethod
    def spawn(self, stream: int) -> "FilterRNG":
        """An independent generator for sub-stream *stream*."""

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the generator's internal state.

        Restoring it with :meth:`load_state_dict` makes every subsequent
        draw bit-identical to a generator that was never interrupted —
        the contract the checkpoint/resume layer relies on.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state capture")

    def load_state_dict(self, d: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state restore")

    def _check_state_kind(self, d: dict, kind: str) -> None:
        got = d.get("kind")
        if got != kind:
            raise ValueError(
                f"RNG state kind mismatch: checkpoint has {got!r}, "
                f"this generator is {kind!r}")


class PhiloxRNG(FilterRNG):
    """Counter-based RNG: stateless bijection + a running counter."""

    def __init__(self, seed: int, stream: int = 0):
        self._philox = Philox4x32(key=seed)
        self._seed = int(seed)
        self._stream = int(stream)
        self._counter = 0

    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        n = int(np.prod(shape)) if np.ndim(shape) else int(shape)
        if n == 0:
            return np.empty(shape, dtype=dtype)
        out = self._philox.uniform(self._counter, n, stream=self._stream, dtype=np.float64)
        self._counter += (n + 3) // 4
        return out.reshape(shape).astype(dtype, copy=False)

    def spawn(self, stream: int) -> "PhiloxRNG":
        # Streams are separated in the key lanes, so any (seed, stream) pair
        # indexes a disjoint random function.
        return PhiloxRNG(self._seed, stream=self._stream * 0x10001 + stream + 1)

    def state_dict(self) -> dict:
        # The bijection is stateless: (seed, stream, counter) is the state.
        return {"kind": "philox", "seed": self._seed, "stream": self._stream,
                "counter": self._counter}

    def load_state_dict(self, d: dict) -> None:
        self._check_state_kind(d, "philox")
        seed = int(d["seed"])
        if seed != self._seed:
            self._seed = seed
            self._philox = Philox4x32(key=seed)
        self._stream = int(d["stream"])
        self._counter = int(d["counter"])


class XorShiftRNG(FilterRNG):
    """Per-lane xorshift128+ bank; mirrors per-thread GPU generators."""

    def __init__(self, seed: int, n_lanes: int = 4096, stream: int = 0):
        self._seed = int(seed)
        self._n_lanes = check_positive_int(n_lanes, "n_lanes")
        self._stream = int(stream)
        self._bank = XorShift128Plus(seed ^ (stream * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF), n_lanes)

    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        n = int(np.prod(shape)) if np.ndim(shape) else int(shape)
        if n == 0:
            return np.empty(shape, dtype=dtype)
        steps = math.ceil(n / self._n_lanes)
        vals = self._bank.uniform(steps, dtype=np.float64).reshape(-1)[:n]
        return vals.reshape(shape).astype(dtype, copy=False)

    def spawn(self, stream: int) -> "XorShiftRNG":
        return XorShiftRNG(self._seed, self._n_lanes, stream=self._stream * 0x10001 + stream + 1)

    def state_dict(self) -> dict:
        return {"kind": "xorshift", "seed": self._seed,
                "n_lanes": self._n_lanes, "stream": self._stream,
                "s0": self._bank.s0.tolist(), "s1": self._bank.s1.tolist()}

    def load_state_dict(self, d: dict) -> None:
        self._check_state_kind(d, "xorshift")
        n_lanes = int(d["n_lanes"])
        if n_lanes != self._n_lanes:
            raise ValueError(
                f"xorshift lane count mismatch: checkpoint has {n_lanes}, "
                f"this generator has {self._n_lanes}")
        self._seed = int(d["seed"])
        self._stream = int(d["stream"])
        self._bank.s0 = np.asarray(d["s0"], dtype=np.uint64)
        self._bank.s1 = np.asarray(d["s1"], dtype=np.uint64)


class NumpyRNG(FilterRNG):
    """Vendor-library path: NumPy's PCG64 ``Generator``."""

    def __init__(self, seed: int, stream: int = 0):
        self._seed = int(seed)
        self._stream = int(stream)
        self._gen = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))

    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        return self._gen.random(size=shape).astype(dtype, copy=False)

    def normal(self, shape, dtype=np.float64) -> np.ndarray:
        return self._gen.standard_normal(size=shape).astype(dtype, copy=False)

    def spawn(self, stream: int) -> "NumpyRNG":
        return NumpyRNG(self._seed, stream=self._stream * 0x10001 + stream + 1)

    def state_dict(self) -> dict:
        # bit_generator.state is a nested dict of (big) ints — JSON-clean.
        return {"kind": "numpy", "seed": self._seed, "stream": self._stream,
                "bit_generator": self._gen.bit_generator.state}

    def load_state_dict(self, d: dict) -> None:
        self._check_state_kind(d, "numpy")
        self._seed = int(d["seed"])
        self._stream = int(d["stream"])
        self._gen.bit_generator.state = d["bit_generator"]


_RNG_KINDS = {"philox": PhiloxRNG, "xorshift": XorShiftRNG, "numpy": NumpyRNG}


def make_rng(kind: str = "numpy", seed: int = 0, **kwargs) -> FilterRNG:
    """Factory for :class:`FilterRNG` instances by name."""
    try:
        cls = _RNG_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown rng kind {kind!r}; choose from {sorted(_RNG_KINDS)}") from None
    return cls(seed, **kwargs)


class StreamManager:
    """Allocates one independent RNG stream per sub-filter.

    This is the structural analogue of MTGP's per-work-group parameter sets:
    sub-filter ``i`` always receives stream ``i`` of the master seed, so runs
    are reproducible and streams never collide regardless of how many filters
    participate.
    """

    def __init__(self, seed: int, n_streams: int, kind: str = "philox"):
        self.seed = int(seed)
        self.n_streams = check_positive_int(n_streams, "n_streams")
        self.kind = kind
        self._root = make_rng(kind, seed)

    def stream(self, i: int) -> FilterRNG:
        if not 0 <= i < self.n_streams:
            raise IndexError(f"stream index {i} out of range [0, {self.n_streams})")
        return self._root.spawn(i)

    def all_streams(self) -> list[FilterRNG]:
        return [self.stream(i) for i in range(self.n_streams)]
