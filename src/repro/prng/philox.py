"""Philox4x32-10 counter-based PRNG (Salmon et al., SC'11), vectorized.

Counter-based generators are the natural fit for massively parallel particle
filters: output ``i`` of stream ``s`` is a pure function ``philox(key=s,
counter=i)``, so every sub-filter gets a provably uncorrelated stream with no
shared state and no sequential dependence — exactly the property MTGP provides
per work group on a GPU, but with O(1) state.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)  # golden ratio
_W1 = np.uint32(0xBB67AE85)  # sqrt(3) - 1
_MASK32 = np.uint64(0xFFFFFFFF)


def _mulhilo(a: np.uint64, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prod = a * b.astype(np.uint64)
    return (prod >> np.uint64(32)).astype(np.uint32), (prod & _MASK32).astype(np.uint32)


class Philox4x32:
    """Philox4x32 with a configurable number of rounds (default 10).

    The :meth:`generate` method evaluates the bijection for a batch of
    counters at once; there is no mutable stream state.
    """

    def __init__(self, key: int = 0, rounds: int = 10):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = int(rounds)
        self.key = (np.uint32(key & 0xFFFFFFFF), np.uint32((key >> 32) & 0xFFFFFFFF))

    def generate(self, counters: np.ndarray, key_lanes: np.ndarray | None = None) -> np.ndarray:
        """Run the Philox bijection on a batch of counters.

        Parameters
        ----------
        counters:
            ``(n,)`` uint64 counters; expanded to the (c0, c1) counter words.
            Words c2/c3 carry the per-lane key stream id when *key_lanes* is
            given, so distinct streams never collide on counter values.
        key_lanes:
            optional ``(n,)`` uint64 per-lane stream ids mixed into the key.

        Returns
        -------
        ``(n, 4)`` uint32 random words.
        """
        counters = np.asarray(counters, dtype=np.uint64)
        c0 = (counters & _MASK32).astype(np.uint32)
        c1 = (counters >> np.uint64(32)).astype(np.uint32)
        if key_lanes is None:
            c2 = np.zeros_like(c0)
            c3 = np.zeros_like(c0)
            k0 = np.broadcast_to(self.key[0], c0.shape).copy()
            k1 = np.broadcast_to(self.key[1], c0.shape).copy()
        else:
            key_lanes = np.asarray(key_lanes, dtype=np.uint64)
            c2 = (key_lanes & _MASK32).astype(np.uint32)
            c3 = (key_lanes >> np.uint64(32)).astype(np.uint32)
            k0 = (np.uint32(self.key[0]) ^ c2).copy()
            k1 = (np.uint32(self.key[1]) ^ c3).copy()

        for _ in range(self.rounds):
            hi0, lo0 = _mulhilo(_M0, c0)
            hi1, lo1 = _mulhilo(_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
            k0 = k0 + _W0
            k1 = k1 + _W1

        return np.stack([c0, c1, c2, c3], axis=-1)

    def uniform(self, start: int, n: int, stream: int = 0, dtype=np.float64) -> np.ndarray:
        """*n* uniforms on [0,1) from counters ``start .. start + ceil(n/4)``."""
        n = check_positive_int(n, "n")
        n_ctr = (n + 3) // 4
        counters = np.arange(start, start + n_ctr, dtype=np.uint64)
        lanes = np.full(n_ctr, stream, dtype=np.uint64)
        words = self.generate(counters, lanes).reshape(-1)[:n]
        return (words.astype(np.float64) * (1.0 / 4294967296.0)).astype(dtype, copy=False)
