"""MTGP-style per-group Mersenne Twister streams.

MTGP (Saito, 2010) gives every CUDA work group its own Mersenne Twister with a
group-specific parameter set so the streams are uncorrelated. We reproduce the
structure — one full-period MT19937 per group, independently seeded through
SplitMix64 so adjacent group ids do not produce correlated states — rather
than the exact MTGP11213 parameter tables (which are generator-tuning detail,
not filtering behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.prng.mt19937 import MT19937
from repro.prng.boxmuller import box_muller
from repro.prng.xorshift import splitmix64
from repro.utils.validation import check_positive_int


class MTGPStreams:
    """A bank of per-group MT19937 generators (one per sub-filter).

    Parameters
    ----------
    seed:
        master seed; per-group seeds are derived via SplitMix64.
    n_groups:
        number of independent streams (= number of sub-filters).
    """

    def __init__(self, seed: int, n_groups: int):
        self.n_groups = check_positive_int(n_groups, "n_groups")
        group_seeds = splitmix64(seed, n_groups)
        # Seed each MT via init_by_array with two derived words to guarantee
        # well-mixed initial states.
        lo = (group_seeds & np.uint64(0xFFFFFFFF)).astype(np.uint64)
        hi = (group_seeds >> np.uint64(32)).astype(np.uint64)
        self._gens = [MT19937([int(lo[g]), int(hi[g]), g]) for g in range(n_groups)]

    def uniform(self, n_per_group: int, dtype=np.float64) -> np.ndarray:
        """Shape ``(n_groups, n_per_group)`` uniforms on [0, 1)."""
        n_per_group = check_positive_int(n_per_group, "n_per_group")
        out = np.empty((self.n_groups, n_per_group), dtype=np.float64)
        for g, gen in enumerate(self._gens):
            out[g] = gen.random_uniform(n_per_group)
        return out.astype(dtype, copy=False)

    def normal(self, n_per_group: int, dtype=np.float64) -> np.ndarray:
        """Shape ``(n_groups, n_per_group)`` standard normals via Box-Muller."""
        u = self.uniform(n_per_group, dtype=np.float64)
        out = np.empty_like(u)
        for g in range(self.n_groups):
            out[g] = box_muller(u[g])
        return out.astype(dtype, copy=False)
