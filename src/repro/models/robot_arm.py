"""The paper's robotic-arm object-tracking model (Section VII-A, Table II).

State ``x_k = (theta_0..theta_{K-1}, x, y, v_x, v_y)``: K joint angles
(``theta_0`` is the base rotation), the tracked object's position on the
fixed z=0 plane and its velocity. Dynamics: single-integrator joints driven
by a known control ``u``, double-integrator object. Measurements: one noisy
angle sensor per joint plus the camera at the end-effector observing the
object in its own moving frame — the highly non-linear part.

``state_dim = n_joints + 4`` (Table II: 5 joints -> dimension 9), and scaling
``n_joints`` scales the estimation problem, which is how the paper grows
state dimensionality in Fig. 4c.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import GroundTruth, StateSpaceModel
from repro.models.kinematics import camera_projection
from repro.prng.streams import FilterRNG
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RobotArmParams:
    """Model parameters with the defaults of Table II."""

    n_joints: int = 5
    arm_length: float = 1.0  # meters, split equally over the links
    h_s: float = 0.1  # sampling time [s]
    sigma_theta: float = 0.1  # process noise on each joint angle [rad]
    sigma_xy: float = 0.1  # process noise on object position [m]
    sigma_v: float = 0.1  # process noise on object velocity [m/s]
    sigma_theta_meas: float = 0.1  # angle sensor noise [rad]
    sigma_camera: float = 0.1  # camera observation noise [m]
    control_amplitude: float = 0.2  # sinusoidal joint sweep [rad/s]
    control_period: float = 8.0  # sweep period [s]
    init_object: tuple[float, float] = (0.5, 0.0)
    init_spread_theta: float = 0.3  # prior spread over joint angles [rad]
    init_spread_xy: float = 0.3  # prior spread over object position [m]
    init_spread_v: float = 0.2  # prior spread over object velocity [m/s]
    #: camera field of view: maximum off-axis distance [m] at which the
    #: object is still detected. None = unlimited (the paper's setting).
    #: With a finite FOV, out-of-view measurements are censored (NaN) and
    #: the likelihood treats "no detection" as evidence.
    camera_fov: float | None = None
    #: probability a particle predicting the object in view would still see
    #: no detection (false negative floor for the censored likelihood).
    miss_probability: float = 1e-3

    def __post_init__(self):
        check_positive_int(self.n_joints, "n_joints")
        for name in ("arm_length", "h_s", "sigma_theta", "sigma_xy", "sigma_v", "sigma_theta_meas", "sigma_camera"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.camera_fov is not None and self.camera_fov <= 0:
            raise ValueError("camera_fov must be positive (or None for unlimited)")
        if not 0.0 < self.miss_probability < 1.0:
            raise ValueError("miss_probability must be in (0, 1)")


class RobotArmModel(StateSpaceModel):
    """N-joint arm + camera tracking model."""

    def __init__(self, params: RobotArmParams | None = None):
        self.params = params or RobotArmParams()
        K = self.params.n_joints
        self.n_joints = K
        self.state_dim = K + 4
        self.measurement_dim = K + 2  # K angle sensors + 2 camera coordinates
        self.control_dim = K
        self.link_lengths = np.full(K, self.params.arm_length / K)

    # -- state layout helpers -------------------------------------------------
    def angles(self, states: np.ndarray) -> np.ndarray:
        return states[..., : self.n_joints]

    def object_position(self, states: np.ndarray) -> np.ndarray:
        return states[..., self.n_joints : self.n_joints + 2]

    def object_velocity(self, states: np.ndarray) -> np.ndarray:
        return states[..., self.n_joints + 2 : self.n_joints + 4]

    # -- known control input ----------------------------------------------------
    def control_at(self, k: int) -> np.ndarray:
        """Deterministic sinusoidal joint sweep with per-joint phase; the
        control is a *known* input, so the filters receive the same u_k."""
        p = self.params
        phases = np.linspace(0.0, np.pi, self.n_joints, endpoint=False)
        return p.control_amplitude * np.sin(2 * np.pi * p.h_s * k / p.control_period + phases)

    # -- filtering interface -------------------------------------------------
    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        p = self.params
        mean = self.initial_mean()
        spread = np.concatenate(
            [
                np.full(self.n_joints, p.init_spread_theta),
                np.full(2, p.init_spread_xy),
                np.full(2, p.init_spread_v),
            ]
        )
        noise = rng.normal((n, self.state_dim), dtype=np.float64)
        return (mean[None, :] + spread[None, :] * noise).astype(dtype, copy=False)

    def initial_mean(self) -> np.ndarray:
        mean = np.zeros(self.state_dim)
        mean[self.n_joints : self.n_joints + 2] = self.params.init_object
        return mean

    def transition(self, states: np.ndarray, control: np.ndarray | None, k: int, rng: FilterRNG) -> np.ndarray:
        p = self.params
        states = np.asarray(states)
        out = states.copy()
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        K = self.n_joints
        u = np.zeros(K) if control is None else np.asarray(control)
        out[..., :K] += p.h_s * u + p.sigma_theta * noise[..., :K]
        out[..., K : K + 2] += p.h_s * states[..., K + 2 : K + 4] + p.sigma_xy * noise[..., K : K + 2]
        out[..., K + 2 : K + 4] += p.sigma_v * noise[..., K + 2 : K + 4]
        return out

    def measurement_mean(self, states: np.ndarray) -> np.ndarray:
        """Noise-free measurement ``(theta_hat..., x_C, y_C)`` per particle."""
        states = np.asarray(states)
        cam = camera_projection(self.angles(states), self.link_lengths, self.object_position(states))
        return np.concatenate([self.angles(states), cam], axis=-1)

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        p = self.params
        z = np.asarray(measurement)
        z_hat = self.measurement_mean(states)
        K = self.n_joints
        # Joint sensors are always available.
        dth = z_hat[..., :K] - z[..., :K]
        ll = -0.5 * np.sum(dth * dth, axis=-1) / p.sigma_theta_meas**2
        cam_z = z[..., K:]
        cam_hat = z_hat[..., K:]
        if p.camera_fov is not None and np.isnan(cam_z).any():
            # Censored camera: "no detection" is itself evidence. Particles
            # that also predict the object out of view are consistent;
            # particles predicting it in view should (almost) have seen it.
            predicted_off = np.linalg.norm(cam_hat, axis=-1) > p.camera_fov
            ll = ll + np.where(predicted_off, 0.0, np.log(p.miss_probability))
        else:
            dc = cam_hat - cam_z
            ll = ll - 0.5 * np.sum(dc * dc, axis=-1) / p.sigma_camera**2
        return ll

    # -- simulation interface -----------------------------------------------
    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.initial_mean()

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        p = self.params
        z = self.measurement_mean(state)
        noise = rng.normal(z.shape, dtype=np.float64)
        sigma = np.concatenate([np.full(self.n_joints, p.sigma_theta_meas), np.full(2, p.sigma_camera)])
        out = z + sigma * noise
        if p.camera_fov is not None and np.linalg.norm(z[..., -2:]) > p.camera_fov:
            out[..., -2:] = np.nan  # object out of view: no camera detection
        return out

    # -- evaluation ------------------------------------------------------------
    def estimate_error(self, estimate: np.ndarray, truth: np.ndarray) -> float:
        """Object-position error [m] — the quantity the paper's accuracy
        figures (6, 7, 9) report."""
        return float(np.linalg.norm(self.object_position(np.asarray(estimate)) - self.object_position(np.asarray(truth))))


def simulate_arm_tracking(
    model: RobotArmModel,
    positions: np.ndarray,
    velocities: np.ndarray,
    rng: FilterRNG,
) -> GroundTruth:
    """Ground truth where the *object* follows a prescribed path exactly.

    The arm's joints evolve under the model dynamics (known control + process
    noise); the object's position/velocity are overridden with the given
    trajectory, as in the paper's lemniscate experiment. The filter still
    assumes the double-integrator object model, so there is realistic model
    mismatch.
    """
    positions = np.asarray(positions, dtype=np.float64)
    velocities = np.asarray(velocities, dtype=np.float64)
    if positions.shape != velocities.shape or positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions and velocities must both be (T, 2)")
    T = positions.shape[0]
    K = model.n_joints
    x = model.initial_mean()
    states = np.empty((T, model.state_dim))
    meas = np.empty((T, model.measurement_dim))
    controls = np.empty((T, K))
    for k in range(T):
        u = model.control_at(k)
        controls[k] = u
        x = model.transition(x, u, k, rng)
        x[K : K + 2] = positions[k]
        x[K + 2 : K + 4] = velocities[k]
        states[k] = x
        meas[k] = model.observe(x, k, rng)
    return GroundTruth(states=states, measurements=meas, controls=controls)
