"""Tracking in clutter: a mixture measurement model with outliers.

The paper's introduction motivates particle filters with visual tracking
[1], where detections are frequently *clutter* (false measurements unrelated
to the target). The standard abstraction is a mixture likelihood:

    z_k = x_pos + v                 with probability 1 - p_clutter
    z_k ~ Uniform(arena)            with probability p_clutter

The resulting likelihood is heavy-tailed and non-Gaussian — a single outlier
yanks a Kalman filter off target, while a particle filter simply down-weights
it. This is the cleanest demonstration of *why* one pays for particle
filtering.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG

_LOG_2PI = np.log(2.0 * np.pi)


class ClutterTrackingModel(StateSpaceModel):
    """Constant-velocity 2-D target observed through clutter.

    State ``(x, y, vx, vy)``; measurement: the 2-D detected position, which
    is the true position plus noise with probability ``1 - p_clutter`` and a
    uniform draw over the arena otherwise.
    """

    state_dim = 4
    measurement_dim = 2
    control_dim = 0

    def __init__(
        self,
        h_s: float = 0.1,
        sigma_pos: float = 0.01,
        sigma_vel: float = 0.05,
        sigma_meas: float = 0.05,
        p_clutter: float = 0.2,
        arena_halfwidth: float = 3.0,
        x0_mean: np.ndarray | None = None,
        x0_spread: float = 0.3,
    ):
        if not 0.0 <= p_clutter < 1.0:
            raise ValueError(f"p_clutter must be in [0, 1), got {p_clutter}")
        if arena_halfwidth <= 0 or sigma_meas <= 0:
            raise ValueError("arena_halfwidth and sigma_meas must be positive")
        self.h_s = float(h_s)
        self.sigma_pos = float(sigma_pos)
        self.sigma_vel = float(sigma_vel)
        self.sigma_meas = float(sigma_meas)
        self.p_clutter = float(p_clutter)
        self.arena = float(arena_halfwidth)
        self.x0_mean = np.asarray(x0_mean if x0_mean is not None else [0.0, 0.0, 0.3, 0.1], dtype=np.float64)
        self.x0_spread = float(x0_spread)

    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        z = rng.normal((n, 4), dtype=np.float64)
        return (self.x0_mean[None, :] + self.x0_spread * z).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        out = states.copy()
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        out[..., :2] += self.h_s * states[..., 2:] + self.sigma_pos * noise[..., :2]
        out[..., 2:] += self.sigma_vel * noise[..., 2:]
        return out

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        """Mixture likelihood: (1-p) N(z; pos, sigma^2 I) + p Uniform(arena)."""
        dz = np.asarray(states)[..., :2] - np.asarray(measurement)
        quad = np.sum(dz * dz, axis=-1) / self.sigma_meas**2
        log_gauss = -0.5 * quad - _LOG_2PI - 2.0 * np.log(self.sigma_meas)
        log_unif = -np.log((2.0 * self.arena) ** 2)
        # log( (1-p) e^{lg} + p e^{lu} ) computed stably.
        a = np.log1p(-self.p_clutter) + log_gauss
        b = np.log(self.p_clutter) + log_unif if self.p_clutter > 0 else -np.inf
        hi = np.maximum(a, b)
        return hi + np.log(np.exp(a - hi) + np.exp(b - hi))

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.x0_mean.copy()

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        if float(rng.uniform((1,))[0]) < self.p_clutter:
            return (rng.uniform((2,)) * 2.0 - 1.0) * self.arena
        return np.asarray(state)[:2] + self.sigma_meas * rng.normal((2,))

    def estimate_error(self, estimate: np.ndarray, truth: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(estimate)[:2] - np.asarray(truth)[:2]))
