"""State-space model interface shared by all filters."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.prng.streams import FilterRNG


@dataclass
class GroundTruth:
    """A simulated run: true states, noisy measurements and known controls.

    ``states`` is ``(T, state_dim)``, ``measurements`` is ``(T, meas_dim)``,
    ``controls`` is ``(T, control_dim)`` (zeros when the model has no input).
    """

    states: np.ndarray
    measurements: np.ndarray
    controls: np.ndarray = field(default=None)

    def __post_init__(self):
        if self.controls is None:
            self.controls = np.zeros((self.states.shape[0], 0))
        if not (len(self.states) == len(self.measurements) == len(self.controls)):
            raise ValueError("states, measurements and controls must have equal length")

    @property
    def n_steps(self) -> int:
        return self.states.shape[0]


class StateSpaceModel(abc.ABC):
    """A Markov dynamical system with a noisy measurement channel.

    All array methods are vectorized over arbitrary leading batch dimensions:
    ``states`` has shape ``(..., state_dim)``, which lets one call evaluate a
    whole ``(n_filters, m)`` particle population — the moral equivalent of the
    paper's per-particle sampling/weighting kernel.
    """

    state_dim: int
    measurement_dim: int
    control_dim: int = 0
    #: cohort-batchability declaration (see :mod:`repro.sessions.envelope`):
    #: ``True`` promises that ``transition`` / ``log_likelihood`` are
    #: elementwise over leading batch dims, accept measurements/controls
    #: carrying leading ``(rows, 1)`` broadcast dims, and ignore the step
    #: index ``k`` — so independent sessions may share one batched call.
    #: Models with any population-global reduction or ``k``-dependent branch
    #: must leave this ``False``.
    supports_cohort_batch: bool = False

    # -- filtering interface ------------------------------------------------
    @abc.abstractmethod
    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        """Draw ``n`` particles from the prior p(x_0); shape ``(n, state_dim)``."""

    @abc.abstractmethod
    def transition(self, states: np.ndarray, control: np.ndarray | None, k: int, rng: FilterRNG) -> np.ndarray:
        """Sample x_k ~ p(x_k | x_{k-1}, u_k) for every particle."""

    @abc.abstractmethod
    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        """log p(z_k | x_k) per particle; shape = batch shape of *states*."""

    # -- simulation interface -----------------------------------------------
    @abc.abstractmethod
    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        """Draw one ground-truth initial state."""

    @abc.abstractmethod
    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        """Draw one noisy measurement z_k ~ p(z_k | x_k) of the true state."""

    def control_at(self, k: int) -> np.ndarray | None:
        """Known control input at step *k* (None if the model has no input)."""
        return None

    def simulate(self, n_steps: int, rng: FilterRNG, x0: np.ndarray | None = None) -> GroundTruth:
        """Roll the model forward to produce a self-consistent ground truth."""
        x = np.asarray(x0, dtype=np.float64) if x0 is not None else self.initial_state(rng)
        states = np.empty((n_steps, self.state_dim))
        meas = np.empty((n_steps, self.measurement_dim))
        ctrl_dim = self.control_dim
        controls = np.zeros((n_steps, ctrl_dim))
        for k in range(n_steps):
            u = self.control_at(k)
            if u is not None:
                controls[k] = u
            x = self.transition(x, u, k, rng)
            states[k] = x
            meas[k] = self.observe(x, k, rng)
        return GroundTruth(states=states, measurements=meas, controls=controls)

    # -- estimation helpers ---------------------------------------------------
    def estimate_error(self, estimate: np.ndarray, truth: np.ndarray) -> float:
        """Scalar error between one estimate and the true state.

        Default: Euclidean distance over the full state vector. Models
        override this to focus on the physically meaningful part (the robot
        arm uses object-position error, matching the paper's accuracy plots).
        """
        return float(np.linalg.norm(np.asarray(estimate) - np.asarray(truth)))
