"""Bearings-only tracking: a four-state constant-velocity target observed by
angle-only sensors.

This is the size of "small estimation problems with up to four state
variables" for which the paper reports kHz update rates; multiple sensors can
be configured to make the problem observable.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG


class BearingsOnlyModel(StateSpaceModel):
    state_dim = 4  # (x, y, vx, vy)
    control_dim = 0

    def __init__(
        self,
        sensors: np.ndarray | None = None,
        h_s: float = 0.1,
        sigma_pos: float = 0.01,
        sigma_vel: float = 0.05,
        sigma_bearing: float = 0.02,
        x0_mean: np.ndarray | None = None,
        x0_spread: float = 0.5,
    ):
        self.sensors = np.atleast_2d(sensors if sensors is not None else np.array([[0.0, 0.0], [4.0, 0.0]]))
        if self.sensors.shape[1] != 2:
            raise ValueError("sensors must be (n_sensors, 2)")
        self.measurement_dim = self.sensors.shape[0]
        self.h_s = float(h_s)
        self.sigma_pos = float(sigma_pos)
        self.sigma_vel = float(sigma_vel)
        self.sigma_bearing = float(sigma_bearing)
        self.x0_mean = np.asarray(x0_mean if x0_mean is not None else [2.0, 2.0, 0.1, -0.05], dtype=np.float64)
        self.x0_spread = float(x0_spread)

    def _bearings(self, states: np.ndarray) -> np.ndarray:
        pos = np.asarray(states)[..., None, :2]  # (..., 1, 2)
        rel = pos - self.sensors  # broadcast over sensors
        return np.arctan2(rel[..., 1], rel[..., 0])

    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        z = rng.normal((n, 4), dtype=np.float64)
        return (self.x0_mean[None, :] + self.x0_spread * z).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        out = states.copy()
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        out[..., :2] += self.h_s * states[..., 2:] + self.sigma_pos * noise[..., :2]
        out[..., 2:] += self.sigma_vel * noise[..., 2:]
        return out

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        db = self._bearings(states) - np.asarray(measurement)
        # Wrap angular residuals into (-pi, pi] so bearings near +-pi compare correctly.
        db = np.arctan2(np.sin(db), np.cos(db))
        return -0.5 * np.sum((db / self.sigma_bearing) ** 2, axis=-1)

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.x0_mean.copy()

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        b = self._bearings(state)
        return b + self.sigma_bearing * rng.normal(b.shape, dtype=np.float64)

    def estimate_error(self, estimate: np.ndarray, truth: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(estimate)[:2] - np.asarray(truth)[:2]))
