"""Dynamical system models.

The paper's evaluation model is an N-joint robotic arm with a camera at the
end-effector tracking an object moving on a fixed x-y plane
(:class:`~repro.models.robot_arm.RobotArmModel`). The framework separates
generic particle filtering from model-specific routines, so additional
estimation problems plug in through :class:`~repro.models.base.StateSpaceModel`:
a linear-Gaussian model (for exact Kalman-filter validation), the univariate
nonlinear growth model (UNGM, the classic PF benchmark), and bearings-only
tracking (a four-state problem like the paper's "small estimation problems").
"""

from repro.models.base import StateSpaceModel, GroundTruth
from repro.models.kinematics import forward_kinematics, rot_y, rot_z
from repro.models.robot_arm import RobotArmModel, RobotArmParams, simulate_arm_tracking
from repro.models.trajectories import lemniscate, circle, straight_line, random_waypoints
from repro.models.linear_gaussian import LinearGaussianModel
from repro.models.ungm import UNGMModel
from repro.models.bearings_only import BearingsOnlyModel
from repro.models.stochastic_volatility import StochasticVolatilityModel
from repro.models.clutter_tracking import ClutterTrackingModel
from repro.models.map_matching import MapMatchingModel, grid_road_network, random_route

__all__ = [
    "StateSpaceModel",
    "GroundTruth",
    "forward_kinematics",
    "rot_y",
    "rot_z",
    "RobotArmModel",
    "RobotArmParams",
    "simulate_arm_tracking",
    "lemniscate",
    "circle",
    "straight_line",
    "random_waypoints",
    "LinearGaussianModel",
    "UNGMModel",
    "BearingsOnlyModel",
    "StochasticVolatilityModel",
    "ClutterTrackingModel",
    "MapMatchingModel",
    "grid_road_network",
    "random_route",
]
