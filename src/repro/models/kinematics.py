"""Forward kinematics for the robotic arm, vectorized over particles.

The arm's joint chain: joint 0 is the base rotation about the vertical z-axis;
joints 1..K-1 pitch about the local y-axis. Every joint is followed by a link
of equal length along the local x-axis (total arm length L). The camera frame
is the end-effector frame; its optical axis is local x, so an observed object
is reported by its local (y, z) coordinates — the "highly non-linear
rotation-translation function h(x)" of the paper's measurement equation.
"""

from __future__ import annotations

import numpy as np


def rot_z(theta: np.ndarray) -> np.ndarray:
    """Batched rotation matrices about z; ``theta`` (...,) -> (..., 3, 3)."""
    theta = np.asarray(theta)
    c, s = np.cos(theta), np.sin(theta)
    out = np.zeros(theta.shape + (3, 3), dtype=theta.dtype if theta.dtype.kind == "f" else np.float64)
    out[..., 0, 0] = c
    out[..., 0, 1] = -s
    out[..., 1, 0] = s
    out[..., 1, 1] = c
    out[..., 2, 2] = 1.0
    return out


def rot_y(theta: np.ndarray) -> np.ndarray:
    """Batched rotation matrices about y; ``theta`` (...,) -> (..., 3, 3)."""
    theta = np.asarray(theta)
    c, s = np.cos(theta), np.sin(theta)
    out = np.zeros(theta.shape + (3, 3), dtype=theta.dtype if theta.dtype.kind == "f" else np.float64)
    out[..., 0, 0] = c
    out[..., 0, 2] = s
    out[..., 1, 1] = 1.0
    out[..., 2, 0] = -s
    out[..., 2, 2] = c
    return out


def forward_kinematics(angles: np.ndarray, link_lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """End-effector pose for a batch of joint configurations.

    Parameters
    ----------
    angles:
        ``(..., K)`` joint angles; column 0 is the base yaw, the rest pitch.
    link_lengths:
        ``(K,)`` length of the link following each joint.

    Returns
    -------
    (position, orientation):
        ``(..., 3)`` end-effector positions and ``(..., 3, 3)`` rotation
        matrices mapping camera-frame vectors into the world frame.
    """
    angles = np.asarray(angles)
    link_lengths = np.asarray(link_lengths, dtype=np.float64)
    K = angles.shape[-1]
    if link_lengths.shape != (K,):
        raise ValueError(f"need {K} link lengths, got shape {link_lengths.shape}")

    # Column arithmetic instead of batched 3x3 matmuls: a local pitch about y
    # only mixes the x and z axis columns (col1 is invariant), so each joint
    # costs two fused column combinations — ~5x less work per particle than
    # composing full rotation matrices (this kernel dominates the filter's
    # runtime at high state dimensions, Fig. 4c).
    c0, s0 = np.cos(angles[..., 0]), np.sin(angles[..., 0])
    zeros = np.zeros_like(c0)
    ones = np.ones_like(c0)
    col0 = np.stack([c0, s0, zeros], axis=-1)  # local x axis in world frame
    col1 = np.stack([-s0, c0, zeros], axis=-1)  # local y axis
    col2 = np.stack([zeros, zeros, ones], axis=-1)  # local z axis
    p = col0 * link_lengths[0]
    for i in range(1, K):
        c = np.cos(angles[..., i])[..., None]
        s = np.sin(angles[..., i])[..., None]
        col0, col2 = c * col0 - s * col2, s * col0 + c * col2
        p = p + col0 * link_lengths[i]
    R = np.stack([col0, col1, col2], axis=-1)
    return p, R


def camera_projection(angles: np.ndarray, link_lengths: np.ndarray, obj_xy: np.ndarray) -> np.ndarray:
    """Object position in the camera frame: the measurement function h(x).

    ``obj_xy`` is ``(..., 2)`` (object on the z=0 plane), broadcast-compatible
    with the batch shape of ``angles``. Returns ``(..., 2)`` camera-plane
    coordinates (the local y and z components of the camera->object ray).
    """
    p, R = forward_kinematics(angles, link_lengths)
    obj_xy = np.asarray(obj_xy)
    obj = np.concatenate([obj_xy, np.zeros(obj_xy.shape[:-1] + (1,), dtype=obj_xy.dtype)], axis=-1)
    rel = obj - p
    # R^T @ rel, batched: local coords of the object in the camera frame.
    local = np.einsum("...ij,...i->...j", R, rel)
    return local[..., 1:3]
