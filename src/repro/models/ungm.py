"""Univariate nonlinear growth model — the classic particle-filter benchmark.

x_k = x/2 + 25 x / (1 + x^2) + 8 cos(1.2 k) + w_k,  z_k = x^2 / 20 + v_k.

Bimodal posteriors (the squared measurement loses the sign of x) make this
the canonical "Kalman filters fail here" problem; it is the type of academic
non-linear benchmark the early parallel-PF literature cited by the paper
evaluates on.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG


class UNGMModel(StateSpaceModel):
    state_dim = 1
    measurement_dim = 1
    control_dim = 0

    def __init__(self, sigma_w: float = np.sqrt(10.0), sigma_v: float = 1.0, x0_sigma: float = np.sqrt(2.0)):
        if sigma_w <= 0 or sigma_v <= 0 or x0_sigma <= 0:
            raise ValueError("noise scales must be positive")
        self.sigma_w = float(sigma_w)
        self.sigma_v = float(sigma_v)
        self.x0_sigma = float(x0_sigma)

    def _drift(self, x: np.ndarray, k: int) -> np.ndarray:
        return 0.5 * x + 25.0 * x / (1.0 + x * x) + 8.0 * np.cos(1.2 * k)

    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        return (self.x0_sigma * rng.normal((n, 1), dtype=np.float64)).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        return self._drift(states, k) + self.sigma_w * noise

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        z_hat = np.asarray(states)[..., 0] ** 2 / 20.0
        dz = z_hat - float(np.asarray(measurement).reshape(()))
        return -0.5 * (dz / self.sigma_v) ** 2

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.x0_sigma * rng.normal((1,))

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        return np.asarray(state) ** 2 / 20.0 + self.sigma_v * rng.normal((1,))
