"""Stochastic volatility: the econometrics application of the introduction.

The paper motivates particle filters with econometrics (Flury & Shephard's
particle-filter analysis of dynamic economic models, reference [3]); the
canonical such model is log-volatility as a latent AR(1):

    x_k = mu + phi (x_{k-1} - mu) + sigma eta_k,      eta ~ N(0,1)
    z_k = exp(x_k / 2) eps_k,                          eps ~ N(0,1)

The measurement density p(z | x) = N(0, exp(x)) is non-Gaussian in x and has
no closed-form filter, so a PF is the standard estimator.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG

_LOG_2PI = np.log(2.0 * np.pi)


class StochasticVolatilityModel(StateSpaceModel):
    state_dim = 1
    measurement_dim = 1
    control_dim = 0

    def __init__(self, mu: float = -1.0, phi: float = 0.95, sigma: float = 0.25):
        if not -1.0 < phi < 1.0:
            raise ValueError(f"phi must be in (-1, 1) for stationarity, got {phi}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.phi = float(phi)
        self.sigma = float(sigma)
        # Stationary distribution of the latent AR(1).
        self.x0_sigma = sigma / np.sqrt(1.0 - phi * phi)

    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        z = rng.normal((n, 1), dtype=np.float64)
        return (self.mu + self.x0_sigma * z).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        return self.mu + self.phi * (states - self.mu) + self.sigma * noise

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        x = np.asarray(states)[..., 0].astype(np.float64)
        z = float(np.asarray(measurement).reshape(()))
        return -0.5 * (_LOG_2PI + x + z * z * np.exp(-x))

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return np.array([self.mu + self.x0_sigma * float(rng.normal((1,))[0])])

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        x = float(np.asarray(state).reshape(-1)[0])
        return np.exp(x / 2.0) * rng.normal((1,))
