"""Object trajectories for the tracking experiments.

Fig. 8 of the paper uses a lemniscate (figure-eight) ground-truth path "that
starts by heading up from the right side". All generators return positions
and finite-difference velocities sampled at the filter period ``h_s``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int


def _with_velocities(pos: np.ndarray, h_s: float) -> tuple[np.ndarray, np.ndarray]:
    vel = np.gradient(pos, h_s, axis=0)
    return pos, vel


def lemniscate(
    n_steps: int,
    h_s: float = 0.1,
    scale: float = 1.0,
    period: float = 20.0,
    center: tuple[float, float] = (0.0, 0.0),
    phase: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Lemniscate of Bernoulli; returns ``(positions (T,2), velocities (T,2))``.

    With the default phase the path starts at the right-hand crossing point
    heading upward, matching the paper's Fig. 8 description.
    """
    check_positive_int(n_steps, "n_steps")
    t = phase + 2.0 * np.pi * np.arange(n_steps) * h_s / period
    denom = 1.0 + np.sin(t) ** 2
    x = center[0] + scale * np.cos(t) / denom
    y = center[1] + scale * np.sin(t) * np.cos(t) / denom
    return _with_velocities(np.stack([x, y], axis=1), h_s)


def circle(
    n_steps: int,
    h_s: float = 0.1,
    radius: float = 1.0,
    period: float = 20.0,
    center: tuple[float, float] = (0.0, 0.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Circular path; constant speed ``2*pi*radius/period``."""
    check_positive_int(n_steps, "n_steps")
    t = 2.0 * np.pi * np.arange(n_steps) * h_s / period
    pos = np.stack([center[0] + radius * np.cos(t), center[1] + radius * np.sin(t)], axis=1)
    return _with_velocities(pos, h_s)


def straight_line(
    n_steps: int,
    h_s: float = 0.1,
    start: tuple[float, float] = (0.0, 0.0),
    velocity: tuple[float, float] = (0.1, 0.05),
) -> tuple[np.ndarray, np.ndarray]:
    """Constant-velocity straight path (the double integrator's sweet spot)."""
    check_positive_int(n_steps, "n_steps")
    t = np.arange(n_steps)[:, None] * h_s
    pos = np.asarray(start)[None, :] + t * np.asarray(velocity)[None, :]
    vel = np.broadcast_to(np.asarray(velocity, dtype=np.float64), pos.shape).copy()
    return pos, vel


def random_waypoints(
    n_steps: int,
    h_s: float = 0.1,
    n_waypoints: int = 5,
    extent: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Piecewise-linear path through random waypoints in a box; a stress
    trajectory with velocity discontinuities the model noise must absorb."""
    check_positive_int(n_steps, "n_steps")
    check_positive_int(n_waypoints, "n_waypoints")
    rng = np.random.default_rng(seed)
    wps = rng.uniform(-extent, extent, size=(n_waypoints + 1, 2))
    seg = np.linspace(0, n_waypoints, n_steps)
    idx = np.minimum(seg.astype(int), n_waypoints - 1)
    frac = (seg - idx)[:, None]
    pos = wps[idx] * (1 - frac) + wps[idx + 1] * frac
    return _with_velocities(pos, h_s)
