"""Linear-Gaussian state-space model: x' = A x + B u + w, z = C x + v.

The one model class with a closed-form optimal filter (the Kalman filter in
:mod:`repro.baselines.kalman`), used to validate that every particle filter
variant converges to the exact posterior.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import StateSpaceModel
from repro.prng.streams import FilterRNG


class LinearGaussianModel(StateSpaceModel):
    #: transition/log_likelihood are matmuls over the state axis plus
    #: elementwise noise — no cross-particle coupling, no use of ``k`` — so
    #: independent sessions may share one batched call.
    supports_cohort_batch = True

    def __init__(
        self,
        A: np.ndarray,
        C: np.ndarray,
        Q: np.ndarray,
        R: np.ndarray,
        B: np.ndarray | None = None,
        x0_mean: np.ndarray | None = None,
        x0_cov: np.ndarray | None = None,
    ):
        self.A = np.atleast_2d(np.asarray(A, dtype=np.float64))
        self.C = np.atleast_2d(np.asarray(C, dtype=np.float64))
        self.Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        self.R = np.atleast_2d(np.asarray(R, dtype=np.float64))
        d = self.A.shape[0]
        if self.A.shape != (d, d):
            raise ValueError("A must be square")
        if self.C.shape[1] != d:
            raise ValueError("C column count must match state dim")
        if self.Q.shape != (d, d):
            raise ValueError("Q must be (d, d)")
        m = self.C.shape[0]
        if self.R.shape != (m, m):
            raise ValueError("R must be (m, m)")
        self.B = None if B is None else np.atleast_2d(np.asarray(B, dtype=np.float64))
        self.state_dim = d
        self.measurement_dim = m
        self.control_dim = 0 if self.B is None else self.B.shape[1]
        self.x0_mean = np.zeros(d) if x0_mean is None else np.asarray(x0_mean, dtype=np.float64)
        self.x0_cov = np.eye(d) if x0_cov is None else np.atleast_2d(np.asarray(x0_cov, dtype=np.float64))
        # Cholesky factors for sampling; computed once.
        self._Lq = np.linalg.cholesky(self.Q)
        self._Lr = np.linalg.cholesky(self.R)
        self._L0 = np.linalg.cholesky(self.x0_cov)
        self._Rinv = np.linalg.inv(self.R)

    def signature(self) -> tuple:
        """Value-based identity for cohort formation: two instances built
        from equal matrices group into the same cohort slab."""
        return ("linear_gaussian",
                self.A.tobytes(), self.C.tobytes(), self.Q.tobytes(),
                self.R.tobytes(),
                None if self.B is None else self.B.tobytes(),
                self.x0_mean.tobytes(), self.x0_cov.tobytes())

    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        z = rng.normal((n, self.state_dim), dtype=np.float64)
        return (self.x0_mean[None, :] + z @ self._L0.T).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control: np.ndarray | None, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        noise = rng.normal(states.shape[:-1] + (self.state_dim,), dtype=np.float64)
        out = states @ self.A.T + noise @ self._Lq.T
        if control is not None and self.B is not None:
            out = out + np.asarray(control) @ self.B.T
        return out.astype(states.dtype, copy=False)

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        dz = np.asarray(states) @ self.C.T - np.asarray(measurement)
        return -0.5 * np.einsum("...i,ij,...j->...", dz, self._Rinv, dz)

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.x0_mean + self._L0 @ rng.normal((self.state_dim,))

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        return np.asarray(state) @ self.C.T + self._Lr @ rng.normal((self.measurement_dim,))
