"""Vehicle localization with map matching (related work [2]).

Park & Tosun's CPU/GPU particle-filter study — the closest prior work the
paper compares against — filters a vehicle's position from noisy GPS while
*matching* it to a road map. The standard formulation used here treats the
map as a prior: the likelihood combines the GPS innovation with a soft
penalty on the particle's distance to the nearest road segment, so particles
off the road network die out. The posterior is multi-modal whenever the GPS
uncertainty covers several roads — the non-Gaussian structure that makes
this a particle-filter problem.

The road network is a ``networkx`` graph whose nodes carry ``pos=(x, y)``
coordinates; edges are straight road segments.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.models.base import GroundTruth, StateSpaceModel
from repro.prng.streams import FilterRNG
from repro.utils.validation import check_positive_int


def grid_road_network(n: int = 4, spacing: float = 100.0) -> nx.Graph:
    """An n x n Manhattan grid of roads with *spacing*-metre blocks."""
    check_positive_int(n, "n")
    g = nx.grid_2d_graph(n, n)
    g = nx.convert_node_labels_to_integers(g, label_attribute="grid")
    for node, data in g.nodes(data=True):
        i, j = data["grid"]
        data["pos"] = (i * spacing, j * spacing)
    return g


def random_route(graph: nx.Graph, n_hops: int, seed: int = 0) -> list[int]:
    """A non-backtracking random walk over the road graph."""
    check_positive_int(n_hops, "n_hops")
    rng = np.random.default_rng(seed)
    node = int(rng.integers(graph.number_of_nodes()))
    route = [node]
    prev = None
    for _ in range(n_hops):
        nbrs = [x for x in graph.neighbors(node) if x != prev]
        if not nbrs:
            nbrs = list(graph.neighbors(node))
        prev, node = node, int(nbrs[rng.integers(len(nbrs))])
        route.append(node)
    return route


class MapMatchingModel(StateSpaceModel):
    """Constant-velocity vehicle + GPS, with the road map as a prior.

    State ``(x, y, vx, vy)`` in metres / metres-per-second.
    """

    state_dim = 4
    measurement_dim = 2
    control_dim = 0

    def __init__(
        self,
        graph: nx.Graph,
        h_s: float = 1.0,
        sigma_gps: float = 15.0,
        sigma_road: float = 5.0,
        sigma_pos: float = 0.5,
        sigma_vel: float = 1.0,
        x0_mean: np.ndarray | None = None,
        x0_spread: float = 20.0,
    ):
        if graph.number_of_edges() == 0:
            raise ValueError("road network must have at least one edge")
        for f, v in (("sigma_gps", sigma_gps), ("sigma_road", sigma_road)):
            if v <= 0:
                raise ValueError(f"{f} must be positive")
        self.graph = graph
        self.h_s = float(h_s)
        self.sigma_gps = float(sigma_gps)
        self.sigma_road = float(sigma_road)
        self.sigma_pos = float(sigma_pos)
        self.sigma_vel = float(sigma_vel)
        pos = nx.get_node_attributes(graph, "pos")
        if len(pos) != graph.number_of_nodes():
            raise ValueError("every node needs a 'pos' attribute")
        # Segment endpoints (S, 2) each, precomputed for vectorized distance.
        self._a = np.array([pos[u] for u, v in graph.edges()], dtype=np.float64)
        self._b = np.array([pos[v] for u, v in graph.edges()], dtype=np.float64)
        self._ab = self._b - self._a
        self._ab_len2 = np.maximum(np.sum(self._ab * self._ab, axis=1), 1e-12)
        if x0_mean is None:
            start = self._a[0]
            x0_mean = np.array([start[0], start[1], 0.0, 0.0])
        self.x0_mean = np.asarray(x0_mean, dtype=np.float64)
        self.x0_spread = float(x0_spread)

    # -- geometry ------------------------------------------------------------
    def road_distance(self, points: np.ndarray) -> np.ndarray:
        """Distance from each point to the nearest road segment.

        ``points`` is ``(..., 2)``; vectorized over all segments at once.
        """
        p = np.asarray(points, dtype=np.float64)
        rel = p[..., None, :] - self._a  # (..., S, 2)
        t = np.sum(rel * self._ab, axis=-1) / self._ab_len2  # projection
        t = np.clip(t, 0.0, 1.0)
        closest = self._a + t[..., None] * self._ab
        d = np.linalg.norm(p[..., None, :] - closest, axis=-1)
        return d.min(axis=-1)

    # -- filtering interface -------------------------------------------------
    def initial_particles(self, n: int, rng: FilterRNG, dtype=np.float64) -> np.ndarray:
        z = rng.normal((n, 4), dtype=np.float64)
        spread = np.array([self.x0_spread, self.x0_spread, 2.0, 2.0])
        return (self.x0_mean[None, :] + spread * z).astype(dtype, copy=False)

    def transition(self, states: np.ndarray, control, k: int, rng: FilterRNG) -> np.ndarray:
        states = np.asarray(states)
        out = states.copy()
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        out[..., :2] += self.h_s * states[..., 2:] + self.sigma_pos * noise[..., :2]
        out[..., 2:] += self.sigma_vel * noise[..., 2:]
        return out

    def log_likelihood(self, states: np.ndarray, measurement: np.ndarray, k: int) -> np.ndarray:
        pos = np.asarray(states)[..., :2]
        dz = pos - np.asarray(measurement)
        ll = -0.5 * np.sum(dz * dz, axis=-1) / self.sigma_gps**2
        # Map matching: penalize distance to the road network.
        d_road = self.road_distance(pos)
        return ll - 0.5 * (d_road / self.sigma_road) ** 2

    def initial_state(self, rng: FilterRNG) -> np.ndarray:
        return self.x0_mean.copy()

    def observe(self, state: np.ndarray, k: int, rng: FilterRNG) -> np.ndarray:
        return np.asarray(state)[:2] + self.sigma_gps * rng.normal((2,))

    def estimate_error(self, estimate: np.ndarray, truth: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(estimate)[:2] - np.asarray(truth)[:2]))

    # -- ground truth ------------------------------------------------------------
    def simulate_route(self, route: list[int], speed: float, n_steps: int, rng: FilterRNG) -> GroundTruth:
        """A vehicle driving the node route at constant speed, with GPS."""
        pos_attr = nx.get_node_attributes(self.graph, "pos")
        waypoints = np.array([pos_attr[n] for n in route], dtype=np.float64)
        seg = np.diff(waypoints, axis=0)
        seg_len = np.linalg.norm(seg, axis=1)
        cum = np.concatenate([[0.0], np.cumsum(seg_len)])
        s = np.minimum(np.arange(n_steps) * speed * self.h_s, cum[-1] - 1e-9)
        idx = np.searchsorted(cum, s, side="right") - 1
        idx = np.clip(idx, 0, len(seg) - 1)
        frac = (s - cum[idx]) / np.maximum(seg_len[idx], 1e-12)
        positions = waypoints[idx] + frac[:, None] * seg[idx]
        velocities = seg[idx] / np.maximum(seg_len[idx], 1e-12)[:, None] * speed
        states = np.concatenate([positions, velocities], axis=1)
        meas = np.stack([self.observe(states[k], k, rng) for k in range(n_steps)])
        return GroundTruth(states=states, measurements=meas)
