"""Admission and batching across many live filter sessions.

:class:`SessionManager` is the session layer's front door: clients attach a
``(model, config)`` pair under a session id, submit measurements into a
bounded per-session ingress queue, and receive demuxed per-session
:class:`~repro.sessions.session.StepResult`\\ s. Internally the manager

- groups admitted sessions into :class:`~repro.sessions.cohort.Cohort`
  slabs by :func:`~repro.sessions.envelope.cohort_key` (same model, same
  config up to the seed) when the pair is inside the cohort envelope, and
  falls back to a private :class:`~repro.core.DistributedParticleFilter`
  per session otherwise — out-of-envelope sessions are served, just not
  batched;
- steps each cohort's ready sessions (non-empty queue) as one slab call per
  :meth:`tick` (batch-on-tick), or eagerly whenever ``batch_size`` sessions
  of a cohort become ready (batch-on-size);
- tracks submit-to-result latency in a rolling window for p50/p99
  reporting.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.sessions.envelope import cohort_envelope, cohort_key
from repro.sessions.cohort import Cohort
from repro.sessions.session import FilterSession, QueueFullError, StepResult


class _LatencyWindow:
    """Rolling window of recent step latencies with percentile readout."""

    def __init__(self, size: int = 4096):
        self._window: deque = deque(maxlen=size)

    def add(self, seconds: float) -> None:
        self._window.append(seconds)

    def extend(self, seconds) -> None:
        self._window.extend(seconds)

    def percentiles(self) -> dict:
        if not self._window:
            return {"count": 0, "p50_s": None, "p99_s": None, "max_s": None}
        arr = np.asarray(self._window, dtype=np.float64)
        return {
            "count": len(arr),
            "p50_s": float(np.percentile(arr, 50)),
            "p99_s": float(np.percentile(arr, 99)),
            "max_s": float(arr.max()),
        }


class SessionManager:
    """Admission, cohort formation, batched stepping and result demux.

    Parameters
    ----------
    max_queue:
        per-session ingress bound; a submit past it raises
        :class:`QueueFullError` (``on_full="raise"``) or silently evicts the
        oldest queued observation (``on_full="drop_oldest"``).
    batch_size:
        when set, a cohort is stepped eagerly as soon as
        ``min(batch_size, len(cohort))`` of its sessions have queued work,
        instead of waiting for the next :meth:`tick`.
    scratch_cap_bytes:
        cap handed to every cohort slab's scratch pool (see
        :meth:`~repro.engine.state.FilterState.scratch_stats`) so a
        long-lived server's buffer pools cannot grow without bound.
    """

    def __init__(self, max_queue: int = 256, on_full: str = "raise",
                 batch_size: int | None = None, tracer=None,
                 scratch_cap_bytes: int | None = None):
        if on_full not in ("raise", "drop_oldest"):
            raise ValueError(
                f"on_full must be 'raise' or 'drop_oldest', got {on_full!r}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.on_full = on_full
        self.batch_size = None if batch_size is None else int(batch_size)
        self.tracer = tracer
        self.scratch_cap_bytes = scratch_cap_bytes
        self.sessions: dict[str, FilterSession] = {}
        self.cohorts: dict[tuple, Cohort] = {}
        self.counters = {
            "attached": 0, "detached": 0, "cohort_steps": 0,
            "session_steps": 0, "solo_steps": 0, "dropped": 0,
        }
        self._results: list[StepResult] = []
        self._latency = _LatencyWindow()

    # -- admission -----------------------------------------------------------
    def attach(self, session_id: str, model, config) -> FilterSession:
        """Admit a new session; cohort-batched when in-envelope, solo else."""
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already attached")
        return self._admit(FilterSession(session_id, model, config))

    def readmit(self, sess: FilterSession) -> FilterSession:
        """Re-admit a previously detached session (here or elsewhere).

        The session carries its population, RNG state, step clock and
        counters, so its trace continues exactly where :meth:`detach` left
        it — bit-identical to never having left.
        """
        if sess.session_id in self.sessions:
            raise ValueError(f"session {sess.session_id!r} already attached")
        if sess.cohort is not None:
            raise ValueError(
                f"session {sess.session_id!r} is still in a cohort")
        return self._admit(sess)

    def _admit(self, sess: FilterSession) -> FilterSession:
        ok, reason = cohort_envelope(sess.model, sess.config)
        if ok:
            key = cohort_key(sess.model, sess.config)
            cohort = self.cohorts.get(key)
            if cohort is None:
                cohort = self.cohorts[key] = Cohort(
                    key, sess.model, sess.config, tracer=self.tracer,
                    scratch_cap_bytes=self.scratch_cap_bytes)
            cohort.attach(sess)
        elif sess.solo is None:
            from repro.core.distributed import DistributedParticleFilter

            sess.envelope_reason = reason
            sess.solo = DistributedParticleFilter(sess.model, sess.config)
            sess.solo.initialize()
        self.sessions[sess.session_id] = sess
        self.counters["attached"] += 1
        return sess

    def detach(self, session_id: str) -> FilterSession:
        """Remove a session; cohort-mates keep their rows and their streams.

        Queued-but-unstepped observations are dropped with the session. The
        detached session retains its population, RNG state and step clock,
        so re-attaching it (to this or another manager) continues its trace.
        """
        sess = self.sessions.pop(session_id, None)
        if sess is None:
            raise KeyError(f"unknown session {session_id!r}")
        cohort = sess.cohort
        if cohort is not None:
            cohort.detach(sess)
            if not cohort.sessions:
                del self.cohorts[cohort.key]
        sess.queue.clear()
        self.counters["detached"] += 1
        return sess

    # -- ingress -------------------------------------------------------------
    def submit(self, session_id: str, measurement, control=None) -> None:
        """Queue one observation for *session_id* (bounded)."""
        sess = self.sessions.get(session_id)
        if sess is None:
            raise KeyError(f"unknown session {session_id!r}")
        if len(sess.queue) >= self.max_queue:
            if self.on_full == "raise":
                raise QueueFullError(
                    f"session {session_id!r} queue is full "
                    f"({self.max_queue} pending)")
            sess.queue.popleft()
            self.counters["dropped"] += 1
        sess.enqueue(measurement, control)
        cohort = sess.cohort
        if self.batch_size is not None and cohort is not None:
            ready = [s for s in cohort.sessions if s.queue]
            if len(ready) >= min(self.batch_size, len(cohort.sessions)):
                self._step_cohort(cohort, ready)

    # -- stepping ------------------------------------------------------------
    def _step_cohort(self, cohort: Cohort, ready: list[FilterSession]) -> None:
        ready = sorted(ready, key=lambda s: s.block)
        payloads = [s.queue.popleft() for s in ready]
        ests = cohort.step(ready,
                           [p[0] for p in payloads],
                           [p[1] for p in payloads])
        now = time.perf_counter()
        for sess, (_, _, ts), est in zip(ready, payloads, ests):
            lat = now - ts
            self._results.append(StepResult(sess.session_id, sess.k, est, lat))
            self._latency.add(lat)
        self.counters["cohort_steps"] += 1
        self.counters["session_steps"] += len(ready)
        if self.tracer is not None:
            self.tracer.count("sessions.cohort_steps")
            self.tracer.count("sessions.session_steps", len(ready))

    def _step_solo(self, sess: FilterSession) -> None:
        measurement, control, ts = sess.queue.popleft()
        est = sess.solo.step(measurement, control)
        sess.k = sess.solo.k
        sess.last_estimate = est
        lat = time.perf_counter() - ts
        self._results.append(
            StepResult(sess.session_id, sess.k, np.asarray(est, dtype=np.float64),
                       lat))
        self._latency.add(lat)
        self.counters["solo_steps"] += 1
        self.counters["session_steps"] += 1

    def tick(self) -> list[StepResult]:
        """One scheduling round: step every session with queued work once.

        Each cohort whose sessions have work gets exactly one batched slab
        call covering its ready subset; solo sessions step individually.
        Returns (and drains) the results produced, including any buffered by
        eager batch-on-size steps since the last drain.
        """
        for cohort in self.cohorts.values():
            ready = [s for s in cohort.sessions if s.queue]
            if ready:
                self._step_cohort(cohort, ready)
        for sess in self.sessions.values():
            if sess.solo is not None and sess.queue:
                self._step_solo(sess)
        return self.drain()

    def pump(self) -> list[StepResult]:
        """Tick until every queue is empty; returns all results produced."""
        out: list[StepResult] = []
        while True:
            batch = self.tick()
            if not batch:
                return out
            out.extend(batch)

    def reset_latency(self) -> None:
        """Restart the latency window (e.g. after a warmup period)."""
        self._latency = _LatencyWindow(self._latency._window.maxlen)

    def drain(self) -> list[StepResult]:
        """Take the buffered results (demuxed, in production order)."""
        out = self._results
        self._results = []
        return out

    # -- introspection -------------------------------------------------------
    @property
    def queued(self) -> int:
        return sum(len(s.queue) for s in self.sessions.values())

    def stats(self) -> dict:
        """Scheduler health: population, throughput counters, latency, and
        the cohort slabs' scratch-pool stats."""
        solo = sum(1 for s in self.sessions.values() if s.solo is not None)
        scratch = {"hits": 0, "misses": 0, "evictions": 0, "buffers": 0,
                   "bytes_held": 0}
        for cohort in self.cohorts.values():
            for k, v in cohort.scratch_stats().items():
                scratch[k] += v
        return {
            "sessions": len(self.sessions),
            "cohorts": len(self.cohorts),
            "solo_sessions": solo,
            "queued": self.queued,
            "counters": dict(self.counters),
            "latency": self._latency.percentiles(),
            "scratch": scratch,
        }
