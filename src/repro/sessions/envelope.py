"""The cohort envelope: which (model, config) pairs may share a slab.

Cohort batching advances several independent sessions through one batched
pipeline call. That is only bit-identical to stepping each session alone
when every operation of the round is **block-local** — no floating-point
value, RNG draw or control-flow decision of one session's rows may depend on
another session's rows. The checks here are the static part of that
argument; the striped RNG (:mod:`repro.sessions.rng`) is the dynamic part.

Out-of-envelope sessions are still served — the scheduler runs them on a
private :class:`~repro.core.DistributedParticleFilter` — they just don't get
the batched fast path.
"""

from __future__ import annotations

from dataclasses import fields

from repro.core.parameters import DistributedFilterConfig

#: Resamplers whose ``resample_batch`` draws exactly one leading-dim-``rows``
#: uniform block (verified against :mod:`repro.resampling`): these stripe
#: cleanly across per-session generators. ``metropolis`` draws a
#: ``(2, F, B, n)`` tensor and the alias/multinomial/residual family loops
#: rows through scalar draws — neither maps onto per-block streams.
COHORT_SAFE_RESAMPLERS = frozenset({"rws", "roulette", "systematic", "stratified"})


def cohort_envelope(model, cfg: DistributedFilterConfig) -> tuple[bool, str]:
    """``(ok, reason)`` — may sessions of this (model, config) share a slab?

    The conditions, each tied to a cross-row coupling it excludes:

    - the model must declare ``supports_cohort_batch``: its ``transition`` /
      ``log_likelihood`` are elementwise over leading batch dims, accept
      measurements/controls with leading ``(rows, 1)`` broadcast dims, and
      ignore the step index ``k`` (cohort-mates run on different clocks);
    - no FRIM redraws and no roughening (the roughening jitter scale is a
      *population-wide* state range — inherently cross-session);
    - a stripe-safe resampler (see :data:`COHORT_SAFE_RESAMPLERS`);
    - no pooled (All-to-All) exchange across multiple sub-filters: the
      global pool would mix particles between sessions. Single-sub-filter
      sessions are fine — their neighbour table is empty either way.
    """
    if not getattr(model, "supports_cohort_batch", False):
        return False, "model does not declare supports_cohort_batch"
    if cfg.frim_redraws > 0:
        return False, "FRIM redraws compare candidates through shared draws"
    if cfg.roughening > 0.0:
        return False, "roughening scales jitter by the global state span"
    if cfg.resampler not in COHORT_SAFE_RESAMPLERS:
        return False, (
            f"resampler {cfg.resampler!r} does not stripe per session "
            f"(safe: {sorted(COHORT_SAFE_RESAMPLERS)})")
    if cfg.n_exchange > 0 and cfg.n_filters > 1:
        from repro.topology import resolve_topology

        if resolve_topology(cfg.topology, cfg.n_filters).pooled:
            return False, "pooled (All-to-All) exchange mixes sessions"
    return True, ""


def cohort_key(model, cfg: DistributedFilterConfig) -> tuple:
    """The cohort-formation key: sessions with equal keys share one slab.

    Two sessions are slab-compatible when they run the *same model* and the
    same configuration **up to the seed** — the seed (the RNG lineage) is
    exactly the per-session degree of freedom cohort batching preserves.
    Models that implement ``signature()`` group by value (two equivalent
    model instances share a cohort); others group by identity.
    """
    sig = getattr(model, "signature", None)
    model_key = sig() if callable(sig) else id(model)
    cfg_key = []
    for f in fields(cfg):
        if f.name == "seed":
            continue
        v = getattr(cfg, f.name)
        try:
            hash(v)
        except TypeError:  # e.g. a pre-built topology object
            v = id(v)
        cfg_key.append((f.name, v))
    return (model_key, tuple(cfg_key))
