"""Cohort-aware stage bodies: Algorithm 2 over ``R`` independent sessions.

A cohort slab stacks ``R`` sessions' populations into one
``(R * X, m, d)`` array and runs the standard vectorized pipeline over it.
Most stages are *already* block-local (every operation is per-row) and are
reused verbatim from :mod:`repro.engine.vector_stages`:

- ``sampling`` — the model is elementwise over leading dims (the
  ``supports_cohort_batch`` contract) and the striped RNG serves each
  session its own draws;
- ``sort`` — per-row argsort + gather;
- ``exchange`` — the neighbour table is block-diagonal, so routing never
  crosses a session boundary.

The stages below replace the ones whose reference bodies contain a *global*
reduction or decision that must become per-block to preserve the parity
contract (cohort-stepped ≡ solo-stepped, bit for bit):

- ``heal`` — the last-resort donor scan must stay inside the dead row's own
  block;
- ``estimate`` — one estimate per session block instead of one global one;
- ``resample`` — the weight-mass share normalizes per block, and the
  masked-subset resampler draw runs under :meth:`CohortRNG.scoped_rows`;
- ``allocate`` — each session's own (stateful) policy decides its block's
  widths, and migration draws delegate to that session's generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import _finite_fallback, weighted_mean_estimate
from repro.engine import vector_stages
from repro.engine.stage import ExecutionContext
from repro.engine.state import FilterState
from repro.utils.arrays import degenerate_rows


@dataclass
class CohortExecutionContext(ExecutionContext):
    """An :class:`ExecutionContext` carrying the per-tick session striping.

    ``cohort_sessions`` is the block-ordered list of sessions participating
    in the current tick (rebound every tick); ``cohort_block_rows`` is the
    per-session sub-filter count ``X`` (fixed per cohort). The fused kernel
    reads ``cohort_block_rows`` to stripe its estimate reduction.
    """

    cohort_sessions: list = None
    cohort_block_rows: int = 1


# ---------------------------------------------------------------------------
# Kernel bodies
# ---------------------------------------------------------------------------


def cohort_heal(ctx: CohortExecutionContext, state: FilterState) -> None:
    """Block-local numerical self-healing.

    Identical to :func:`repro.engine.vector_stages.heal_population` except
    that the no-neighbour-donor fallback scans only the dead row's own
    session block (the solo filter would only ever see its own rows), and
    the heal counters are attributed to the owning session as well as the
    slab. Deterministic — no RNG draws — so healthy rounds are untouched.
    """
    X = ctx.cohort_block_rows
    sessions = ctx.cohort_sessions
    lw = state.log_weights
    bad = np.isnan(lw)
    bad |= ~np.isfinite(state.states).all(axis=-1)
    bad &= ~np.isneginf(lw)
    if bad.any():
        per_row = bad.sum(axis=1)
        lw[bad] = -np.inf
        per_block = per_row.reshape(-1, X).sum(axis=1)
        state.heal_counters["sanitized"] += int(per_row.sum())
        for j in np.flatnonzero(per_block):
            sessions[j].heal_counters["sanitized"] += int(per_block[j])
    dead = degenerate_rows(lw)
    if not dead.any():
        return
    alive = ~dead
    table, mask = ctx.table, ctx.mask
    for f in np.flatnonzero(dead):
        b = f // X
        lo = b * X
        donors = table[f][mask[f]]
        donors = donors[alive[donors]]
        block_alive = alive[lo:lo + X]
        if donors.size:
            state.states[f] = state.states[int(donors[0])]
        elif block_alive.any():
            state.states[f] = state.states[lo + int(np.flatnonzero(block_alive)[0])]
        # else: the whole block is degenerate — keep own states and restart
        # every row of it on uniform weights, exactly as the solo filter
        # does when its entire population dies.
        ok = np.isfinite(state.states[f]).all(axis=-1)
        state.log_weights[f] = np.where(ok, 0.0, -np.inf) if ok.any() else 0.0
        if state.widths is not None:
            state.log_weights[f, int(state.widths[f]):] = -np.inf
        state.heal_counters["rejuvenated"] += 1
        sessions[b].heal_counters["rejuvenated"] += 1


def cohort_estimate(ctx: CohortExecutionContext, state: FilterState) -> None:
    """One global estimate *per session block*: ``state.estimate`` is (R, d).

    ``max_weight`` reproduces :func:`repro.core.estimator.max_weight_estimate`
    row-block-wise with the same float64 conversion, the same usability mask
    and the same first-occurrence argmax tie-break, vectorized over blocks.
    ``weighted_mean`` calls the scalar reducer per block: its ``w @ contrib``
    contraction is a BLAS dot whose summation order must be reproduced
    exactly, so the blocks are reduced one at a time just as solo filters
    would.
    """
    X = ctx.cohort_block_rows
    F, m = state.log_weights.shape
    R = F // X
    d = state.states.shape[-1]
    kind = ctx.config.estimator
    flat_states = np.ascontiguousarray(state.states).reshape(R, X * m, d)
    if kind == "max_weight":
        lw = state.log_weights.astype(np.float64).reshape(R, X * m)
        unusable = np.isnan(lw) | ~np.isfinite(flat_states).all(axis=2)
        lw[unusable] = -np.inf
        idx = lw.argmax(axis=1)
        vals = np.take_along_axis(lw, idx[:, None], axis=1)[:, 0]
        est = np.take_along_axis(
            flat_states, idx[:, None, None], axis=1)[:, 0].astype(np.float64)
        for b in np.flatnonzero(~np.isfinite(vals)):
            est[b] = _finite_fallback(flat_states[b])
    elif kind == "weighted_mean":
        lwb = state.log_weights.reshape(R, X * m)
        est = np.empty((R, d), dtype=np.float64)
        for b in range(R):
            est[b] = weighted_mean_estimate(flat_states[b], lwb[b])
    else:
        raise ValueError(f"unknown estimator kind {kind!r}")
    state.estimate = est
    state.last_estimate = est


def _capture_cohort_alloc_metrics(ctx: CohortExecutionContext, state: FilterState,
                                  local_w: np.ndarray, local_peak: np.ndarray) -> None:
    """Per-row ESS plus *per-block* weight-mass share.

    The per-row reductions are identical to the reference capture; the share
    normalization — ``exp(lse - max) / sum`` — runs within each session
    block, because each solo filter normalizes over its own sub-filters
    only.
    """
    X = ctx.cohort_block_rows
    w = np.where(np.isfinite(local_w), local_w, 0.0)
    s1 = w.sum(axis=1)
    s2 = np.einsum("fm,fm->f", w, w)
    with np.errstate(invalid="ignore", divide="ignore"):
        state.round_ess = np.where(s2 > 0.0, (s1 * s1) / np.where(s2 > 0.0, s2, 1.0), 0.0)
        lse = np.where(s1 > 0.0, local_peak[:, 0] + np.log(np.where(s1 > 0.0, s1, 1.0)),
                       -np.inf)
    lseb = lse.reshape(-1, X)
    g = lseb.max(axis=1, keepdims=True)
    share = np.empty_like(lseb)
    finite = np.isfinite(g[:, 0])
    if finite.any():
        e = np.exp(lseb[finite] - g[finite])
        share[finite] = e / e.sum(axis=1, keepdims=True)
    if not finite.all():
        share[~finite] = 1.0 / X
    state.round_mass_share = share.reshape(-1)


def cohort_resample(ctx: CohortExecutionContext, state: FilterState) -> None:
    """Reference resampling with block-scoped metrics and striped draws.

    Operation-for-operation :func:`repro.engine.vector_stages.resample`
    (minus roughening, which the envelope excludes): same scratch keys, same
    float64 shift-exp, same policy query, same all-rows fast path. The only
    differences are the per-block mass-share capture and, on the masked
    path, scoping the striped RNG to the rows that actually resample so each
    session's generator sees exactly its solo draw shapes.
    """
    pooled_states, pooled_logw = state.pooled_states, state.pooled_logw
    row_max = pooled_logw.max(axis=1, keepdims=True)
    w = state.scratch("res.w", pooled_logw.shape, np.float64)
    np.subtract(pooled_logw, row_max, out=w)
    np.exp(w, out=w)
    local_w = state.scratch("res.local_w", state.log_weights.shape, np.float64)
    local_peak = state.log_weights.max(axis=1, keepdims=True)
    np.subtract(state.log_weights, local_peak, out=local_w)
    np.exp(local_w, out=local_w)
    _capture_cohort_alloc_metrics(ctx, state, local_w, local_peak)
    mask = ctx.policy.should_resample(local_w, ctx.rng, widths=state.widths)
    state.resampled_mask = mask
    if not mask.any():
        return
    F, m = state.log_weights.shape
    d = state.states.shape[-1]

    if mask.all():
        idx = ctx.resampler.resample_batch(w, m, ctx.rng)  # (F, m)
        pool_m = pooled_logw.shape[1]
        flat = state.scratch("res.flat", (F, m), np.intp)
        np.add(
            idx, np.arange(F, dtype=np.intp).reshape(F, 1) * pool_m, out=flat,
            casting="unsafe",
        )
        new_states = state.scratch("res.states", (F, m, d), state.states.dtype)
        np.take(
            np.ascontiguousarray(pooled_states).reshape(F * pool_m, d), flat, axis=0,
            out=new_states,
        )
        state.recycle("res.states", state.states)
        state.states = new_states
        state.log_weights.fill(0.0)
        if state.ragged:
            from repro.allocation.migrate import apply_width_mask

            apply_width_mask(state.log_weights, state.widths)
        return

    with ctx.rng.scoped_rows(np.flatnonzero(mask)):
        idx = ctx.resampler.resample_batch(w[mask], m, ctx.rng)  # (F', m)
    new_states = np.take_along_axis(pooled_states[mask], idx[:, :, None], axis=1)
    state.states[mask] = new_states
    state.log_weights[mask] = 0.0
    if state.ragged:
        from repro.allocation.migrate import apply_width_mask

        apply_width_mask(state.log_weights, state.widths)


def cohort_allocate(ctx: CohortExecutionContext, state: FilterState) -> None:
    """Adaptive width re-apportionment, decided and migrated per session.

    Every session owns its (stateful — smoothing, hysteresis) allocation
    policy, so decisions are made block by block on the block's own metrics,
    and the migration kernel's resampler draws are delegated to the owning
    session's generator — the exact call sequence the solo allocation stage
    produces.
    """
    if ctx.config.allocation == "fixed":
        return
    if state.round_ess is None or state.round_mass_share is None:
        return
    X = ctx.cohort_block_rows
    sessions = ctx.cohort_sessions
    widths = state.effective_widths()
    new_all = np.asarray(widths, dtype=np.int64).copy()
    resampled = state.resampled_mask
    if resampled is None:
        resampled = np.zeros(state.n_filters, dtype=bool)
    ess, share = state.round_ess, state.round_mass_share
    for j, sess in enumerate(sessions):
        lo = j * X
        blk_w = widths[lo:lo + X]
        new_w = sess.alloc_policy.decide(blk_w, ess[lo:lo + X], share[lo:lo + X])
        if np.array_equal(new_w, blk_w):
            continue
        with ctx.rng.delegating(j):
            migrated = ctx.invoke_kernel(
                state, "migrate_resize",
                state.states[lo:lo + X], state.log_weights[lo:lo + X],
                blk_w, new_w,
                state.pooled_states[lo:lo + X], state.pooled_logw[lo:lo + X],
                resampled[lo:lo + X], ctx.resampler, ctx.rng,
            )
        new_all[lo:lo + X] = np.asarray(new_w, dtype=np.int64)
        changed = int((np.asarray(new_w) != np.asarray(blk_w)).sum())
        sess.alloc_counters["particles_migrated"] += int(migrated)
        sess.alloc_counters["width_changes"] += changed
        state.alloc_counters["particles_migrated"] += int(migrated)
        state.alloc_counters["width_changes"] += changed
    state.widths = new_all


# ---------------------------------------------------------------------------
# Stage classes
# ---------------------------------------------------------------------------


class CohortHealStage:
    """Block-local self-healing; skipped when ``config.self_heal`` is off."""

    name = "heal"

    def run(self, ctx: CohortExecutionContext, state: FilterState) -> None:
        if ctx.config.self_heal:
            cohort_heal(ctx, state)


class CohortEstimateStage:
    """Per-block estimate reduction: ``state.estimate`` becomes ``(R, d)``."""

    name = "estimate"

    def run(self, ctx: CohortExecutionContext, state: FilterState) -> None:
        cohort_estimate(ctx, state)


class CohortResampleStage:
    """Reference resampling with block-scoped share and striped draws."""

    name = "resample"

    def run(self, ctx: CohortExecutionContext, state: FilterState) -> None:
        cohort_resample(ctx, state)


class CohortAllocationStage:
    """Per-session adaptive allocation; a strict no-op under ``fixed``."""

    name = "allocate"

    def run(self, ctx: CohortExecutionContext, state: FilterState) -> None:
        cohort_allocate(ctx, state)


class CohortFusedStage:
    """The fused compiled round over a cohort slab.

    The fused kernel body already stripes its estimate per block (it reads
    ``ctx.cohort_block_rows``); every other fused operation is row-local and
    its RNG draws go through the striped generator. The post-weighting
    health guard is slab-global: any non-finite value anywhere drops the
    *whole* round to the reference remainder — which is safe precisely
    because the fused and reference paths are bit-identical, and necessary
    because healing needs the per-block donor scan.
    """

    name = "fused"

    def run(self, ctx: CohortExecutionContext, state: FilterState) -> None:
        if not ctx.invoke_kernel(state, "fused_step", ctx, state):
            self._reference_remainder(ctx, state)

    @staticmethod
    def _reference_remainder(ctx: CohortExecutionContext, state: FilterState) -> None:
        if ctx.config.self_heal:
            cohort_heal(ctx, state)
        vector_stages.sort_by_weight(ctx, state)
        cohort_estimate(ctx, state)
        state.pooled_states, state.pooled_logw = vector_stages.exchange_pool(ctx, state)
        cohort_resample(ctx, state)
        # Allocation is "fixed" inside the fused envelope — a strict no-op.


def build_cohort_pipeline(hooks=(), fused: bool = False) -> "StepPipeline":
    """The cohort round: the reference stage list with the block-local
    replacements, or the single fused stage when the fused envelope holds."""
    from repro.engine.pipeline import StepPipeline

    if fused:
        return StepPipeline([CohortFusedStage()], hooks=hooks)
    return StepPipeline(
        [vector_stages.SampleWeightStage(), CohortHealStage(),
         vector_stages.SortStage(), CohortEstimateStage(),
         vector_stages.ExchangeStage(), CohortResampleStage(),
         CohortAllocationStage()],
        hooks=hooks,
    )
