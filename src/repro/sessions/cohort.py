"""The cohort: many same-shaped sessions stepped as one slab.

A :class:`Cohort` owns a ``(R * X, m, d)`` population slab holding ``R``
sessions of ``X`` sub-filters each (block ``j`` owns rows
``[j*X, (j+1)*X)``), a block-diagonal neighbour table (``R`` disjoint
copies of the session topology, so exchange never crosses a session
boundary), and a cohort pipeline built from the block-local stages in
:mod:`repro.sessions.stages`. One :meth:`step` call advances every ready
session by one filtering round through a single vectorized (or fused
compiled) pipeline pass — the paper's many-core batching argument applied
across *filters* instead of across particles.

Parity contract: a session stepped through a cohort produces bit-identical
estimates, populations, widths and counters to the same session stepped
alone on a :class:`~repro.core.DistributedParticleFilter`, for any
interleaving of cohort-mates attaching, detaching or idling.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import make_policy, make_resampler
from repro.engine import KernelTimingHook, TimerHook
from repro.engine.state import FilterState
from repro.metrics.timing import PhaseTimer
from repro.sessions.rng import CohortRNG
from repro.sessions.session import FilterSession
from repro.sessions.stages import CohortExecutionContext, build_cohort_pipeline
from repro.topology import resolve_topology


class _BlockTopology:
    """Synthetic pairwise topology view over the block-diagonal table.

    The stages only ever ask ``pooled`` (routing itself goes through the
    explicit neighbour table); a cohort table is never pooled — the envelope
    only admits pooled topologies when their neighbour table is empty, which
    short-circuits the exchange before this object is consulted.
    """

    pooled = False

    def __init__(self, n_filters: int):
        self.n_filters = n_filters


class Cohort:
    """A slab of interchangeable-shape sessions stepped together."""

    def __init__(self, key, model, config, tracer=None,
                 scratch_cap_bytes: int | None = None):
        from repro.core.dtypes import resolve_dtype_policy
        from repro.engine.fused import fused_envelope_ok
        from repro.kernels.forms import ExecutionPolicy

        self.key = key
        self.model = model
        self.config = config
        self.X = config.n_filters
        self.sessions: list[FilterSession] = []
        self.rng = CohortRNG()
        self.resampler = make_resampler(config.resampler)
        self.policy = make_policy(config.resample_policy, config.resample_arg)
        self.dtype_policy = resolve_dtype_policy(config.dtype_policy, config.dtype)
        self.exec_policy = ExecutionPolicy.from_config(config.execution)
        self.tracer = tracer
        self._base_table = resolve_topology(config.topology, self.X).neighbor_table()
        #: the full slab; ``_sub`` is the persistent gather target for ticks
        #: where only a subset of sessions has work (its scratch pool and
        #: fused plan are reused whenever the same subset size recurs).
        self._state = FilterState(scratch_cap_bytes=scratch_cap_bytes)
        self._sub = FilterState(scratch_cap_bytes=scratch_cap_bytes)
        self._ctx_cache: dict[int, CohortExecutionContext] = {}
        self.use_fused = (config.execution == "compiled"
                          and fused_envelope_ok(config))
        self.timer = PhaseTimer()
        self.kernel_hook = KernelTimingHook(tracer=tracer)
        self.pipeline = build_cohort_pipeline(
            hooks=[TimerHook(self.timer, tracer=tracer), self.kernel_hook],
            fused=self.use_fused)
        if config.execution != "reference":
            from repro.kernels.registry import default_registry

            self.exec_policy.warm_up(default_registry())
        self.steps = 0

    def __len__(self) -> int:
        return len(self.sessions)

    # -- membership ----------------------------------------------------------
    def attach(self, sess: FilterSession) -> None:
        """Append *sess*'s population as the slab's last block."""
        sess.ensure_initialized(self.dtype_policy)
        states, logw, widths = sess.take_population()
        st = self._state
        if st.states is None:
            st.states = states
            st.log_weights = logw
            st.widths = widths
        else:
            if (st.widths is None) != (widths is None):
                raise ValueError("cohort-mates disagree on width layout")
            st.states = np.concatenate([st.states, states], axis=0)
            st.log_weights = np.concatenate([st.log_weights, logw], axis=0)
            if widths is not None:
                st.widths = np.concatenate([st.widths, widths])
        sess.cohort = self
        sess.block = len(self.sessions)
        self.sessions.append(sess)
        self._membership_changed()

    def detach(self, sess: FilterSession) -> None:
        """Remove *sess* without disturbing any cohort-mate's rows or stream.

        The last block is swapped into the vacated slot and the slab is
        truncated — every remaining session keeps its own rows and its own
        generator, so remaining traces are unaffected by who leaves.
        """
        if sess.cohort is not self:
            raise ValueError(f"session {sess.session_id!r} is not in this cohort")
        X = self.X
        b = sess.block
        st = self._state
        last = len(self.sessions) - 1
        states = st.states[b * X:(b + 1) * X].copy()
        logw = st.log_weights[b * X:(b + 1) * X].copy()
        widths = None if st.widths is None else st.widths[b * X:(b + 1) * X].copy()
        if b != last:
            st.states[b * X:(b + 1) * X] = st.states[last * X:(last + 1) * X]
            st.log_weights[b * X:(b + 1) * X] = st.log_weights[last * X:(last + 1) * X]
            if st.widths is not None:
                st.widths[b * X:(b + 1) * X] = st.widths[last * X:(last + 1) * X]
            moved = self.sessions[last]
            self.sessions[b] = moved
            moved.block = b
        self.sessions.pop()
        if last == 0:
            st.states = st.log_weights = st.widths = None
        else:
            st.states = st.states[:last * X].copy()
            st.log_weights = st.log_weights[:last * X].copy()
            if st.widths is not None:
                st.widths = st.widths[:last * X].copy()
        sess.cohort = None
        sess.block = -1
        sess.store_population(states, logw, widths)
        self._membership_changed()

    def _membership_changed(self) -> None:
        # The slab shape changed: pooled scratch buffers and the fused plan
        # are keyed by shape and can never be served again — drop them so
        # they don't sit in (capped) scratch memory.
        for st in (self._state, self._sub):
            st.clear_scratch()
            if hasattr(st, "_fused_plan"):
                del st._fused_plan
        self._sub.states = self._sub.log_weights = self._sub.widths = None

    def session_rows(self, sess: FilterSession):
        """Views of *sess*'s ``(X, m, d)`` rows inside the slab."""
        X, b = self.X, sess.block
        st = self._state
        return (st.states[b * X:(b + 1) * X],
                st.log_weights[b * X:(b + 1) * X],
                None if st.widths is None else st.widths[b * X:(b + 1) * X])

    # -- stepping ------------------------------------------------------------
    def _ctx_for(self, R: int) -> CohortExecutionContext:
        ctx = self._ctx_cache.get(R)
        if ctx is None:
            X = self.X
            cfg = self.config.with_(n_filters=R * X)
            base = self._base_table
            deg = base.shape[1]
            offsets = np.arange(R, dtype=base.dtype) * X
            table = np.where(
                base[None, :, :] >= 0,
                base[None, :, :] + offsets[:, None, None],
                base.dtype.type(-1),
            ).reshape(R * X, deg)
            ctx = CohortExecutionContext(
                model=self.model, config=cfg, rng=self.rng,
                resampler=self.resampler, policy=self.policy,
                dtype=self.dtype_policy.state,
                topology=_BlockTopology(R * X), table=table, mask=table >= 0,
                owner=None, alloc_policy=None, exec_policy=self.exec_policy,
                dtype_policy=self.dtype_policy,
                cohort_block_rows=X,
            )
            self._ctx_cache[R] = ctx
        return ctx

    @staticmethod
    def _pack(values, X: int) -> np.ndarray | None:
        """Stack per-session vectors and repeat per sub-filter row.

        ``(R,)`` payloads become a ``(R*X, 1, z)`` array: row blocks carry
        their own session's measurement and the singleton particle axis
        broadcasts against ``(rows, m, z)`` predictions — elementwise
        identical to the solo filter's plain-broadcast measurement.
        """
        if all(v is None for v in values):
            return None
        if any(v is None for v in values):
            raise ValueError("cohort-mates disagree on control presence")
        stacked = np.stack([np.asarray(v).reshape(-1) for v in values])
        return np.repeat(stacked, X, axis=0)[:, None, :]

    def step(self, ready: list[FilterSession], measurements, controls=None):
        """Advance every session in *ready* by one round; returns estimates.

        *ready* must be a subset of the cohort's sessions; ``measurements``
        (and ``controls``) align with it, and the returned list of ``(d,)``
        estimates aligns with *ready* in its original order (the slab is
        stepped in block order internally).
        """
        order = sorted(range(len(ready)), key=lambda i: ready[i].block)
        ready = [ready[i] for i in order]
        measurements = [measurements[i] for i in order]
        if controls is not None:
            controls = [controls[i] for i in order]
        R = len(ready)
        X = self.X
        st = self._state
        partial = R != len(self.sessions)
        if partial:
            blocks = np.array([s.block for s in ready], dtype=np.intp)
            rows = (blocks[:, None] * X + np.arange(X, dtype=np.intp)).reshape(-1)
            state = self._sub
            state.states = st.states[rows]
            state.log_weights = st.log_weights[rows]
            state.widths = None if st.widths is None else st.widths[rows]
        else:
            state = st
        meas = self._pack(measurements, X)
        ctrl = None if controls is None else self._pack(controls, X)
        ctx = self._ctx_for(R)
        ctx.cohort_sessions = ready
        self.rng.bind([s.rng for s in ready], X)
        est = self.pipeline.run(ctx, state, meas, ctrl)
        if partial:
            st.states[rows] = state.states
            st.log_weights[rows] = state.log_weights
            if st.widths is not None:
                st.widths[rows] = state.widths
        self.steps += 1
        out = [None] * R
        for j, sess in enumerate(ready):
            e = np.array(est[j], dtype=np.float64)
            sess.k += 1
            sess.last_estimate = e
            out[order[j]] = e
        return out

    # -- introspection -------------------------------------------------------
    def scratch_stats(self) -> dict:
        """Combined scratch-pool stats of the slab and the subset buffer."""
        full = self._state.scratch_stats()
        sub = self._sub.scratch_stats()
        return {k: full[k] + sub[k] for k in full}
