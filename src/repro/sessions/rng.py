"""Per-session RNG lineage under batched stepping: the striped generator.

Every in-envelope draw of the filtering round has leading dimension equal to
the number of population rows (transition noise ``(rows, m, d)``, resampler
uniforms ``(rows, n)``, frequency-policy coins ``(rows,)`` — audited in
:mod:`repro.sessions.envelope`). :class:`CohortRNG` exploits that: it holds
one private generator per session and serves each batched draw by stitching
together per-session draws of the rows that session owns. Session ``s``
therefore consumes *its own* stream in exactly the shapes and order it would
if stepped alone — which is what makes cohort traces bit-identical to solo
traces.

Two scoping modes cover the round's non-default draw patterns:

- :meth:`scoped_rows` restricts striping to a row subset (the masked
  resample path draws only for the rows that resample this round);
- :meth:`delegating` forwards draws verbatim to one session's generator
  (the allocation migration path loops a single session's rows and draws
  flat ``(n,)`` vectors, just like the solo code path does).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.prng.streams import FilterRNG


class CohortStripeError(RuntimeError):
    """A draw that cannot be attributed to per-session streams.

    Raised when a batched draw's leading dimension does not equal the number
    of striped rows — i.e. some kernel or model draws in a shape the cohort
    envelope does not admit. The fix is never to ignore this: it means the
    draw cannot be bit-reproduced per session.
    """


class CohortRNG(FilterRNG):
    """A :class:`FilterRNG` facade striping draws across per-session streams."""

    def __init__(self):
        self._gens: list[FilterRNG] = []
        self._block_rows = 1
        #: active segments as (generator, n_rows) pairs, in row order.
        self._segments: list[tuple[FilterRNG, int]] = []
        self._delegate: FilterRNG | None = None

    # -- binding ------------------------------------------------------------
    def bind(self, gens: list[FilterRNG], block_rows: int) -> None:
        """Install this tick's per-session generators (row-block order).

        Session ``j`` of the bound list owns rows
        ``[j * block_rows, (j + 1) * block_rows)`` of every batched draw.
        """
        self._gens = list(gens)
        self._block_rows = int(block_rows)
        self._segments = [(g, self._block_rows) for g in self._gens]

    @contextmanager
    def scoped_rows(self, rows: np.ndarray):
        """Stripe draws over a sorted subset of the bound global rows.

        ``rows`` are global row indices (ascending). Each bound session
        contributes one contiguous segment of the subset, sized by how many
        of its rows appear — matching the single contiguous draw the solo
        filter performs for its own masked rows.
        """
        rows = np.asarray(rows)
        counts = np.bincount(rows // self._block_rows, minlength=len(self._gens))
        saved = self._segments
        self._segments = [(self._gens[b], int(n))
                          for b, n in enumerate(counts) if n]
        try:
            yield self
        finally:
            self._segments = saved

    @contextmanager
    def delegating(self, block: int):
        """Forward draws verbatim to the *block*-th bound generator."""
        saved = self._delegate
        self._delegate = self._gens[block]
        try:
            yield self
        finally:
            self._delegate = saved

    # -- FilterRNG interface -------------------------------------------------
    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        if self._delegate is not None:
            return self._delegate.uniform(shape, dtype=dtype)
        return self._striped("uniform", shape, dtype)

    def normal(self, shape, dtype=np.float64) -> np.ndarray:
        # Must stripe *before* the base-class Box-Muller flattening: each
        # session's generator applies its own normal() to its own rows,
        # exactly as the solo filter would.
        if self._delegate is not None:
            return self._delegate.normal(shape, dtype=dtype)
        return self._striped("normal", shape, dtype)

    def _striped(self, method: str, shape, dtype) -> np.ndarray:
        try:
            lead = int(shape[0])
        except (TypeError, IndexError):
            raise CohortStripeError(
                f"cohort draw of shape {shape!r} has no leading rows "
                f"dimension; the model/kernel is not cohort-batchable"
            ) from None
        total = sum(n for _, n in self._segments)
        if lead != total:
            raise CohortStripeError(
                f"cohort draw of shape {shape!r} does not match the "
                f"{total} striped rows; the model/kernel is not "
                f"cohort-batchable")
        tail = tuple(shape[1:])
        out = np.empty(shape, dtype=np.dtype(dtype))
        ofs = 0
        for gen, n in self._segments:
            out[ofs:ofs + n] = getattr(gen, method)((n,) + tail, dtype=dtype)
            ofs += n
        return out

    def spawn(self, stream: int) -> FilterRNG:
        raise NotImplementedError(
            "CohortRNG is a per-tick facade over session streams; spawn the "
            "underlying session generators instead")
