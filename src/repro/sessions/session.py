"""One tracked client: a filter identity plus its queued observations.

A :class:`FilterSession` owns everything that distinguishes one client's
filter from its cohort-mates: the RNG lineage (seeded generator), the step
clock, the allocation-policy state, the healing/allocation counters, and a
bounded ingress queue of not-yet-filtered observations. The particle
population itself lives either

- inside a shared cohort slab (``session.cohort`` set, ``session.block``
  giving its row-block index), or
- in the session's private storage (detached), or
- inside a private :class:`~repro.core.DistributedParticleFilter` when the
  (model, config) pair is outside the cohort envelope (``session.solo``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.allocation import (
    allocation_capacity,
    make_allocation_policy,
    pad_population,
)
from repro.core.parameters import DistributedFilterConfig
from repro.prng.streams import make_rng


class QueueFullError(RuntimeError):
    """A submit against a session whose ingress queue is at capacity."""


@dataclass
class StepResult:
    """One demuxed filtering step: who, which step, what estimate, how long.

    ``latency_s`` is submit-to-result wall time — queue wait plus the
    session's share of the batched step.
    """

    session_id: str
    k: int
    estimate: np.ndarray
    latency_s: float


class FilterSession:
    """A client/session-keyed filter identity managed by the session layer."""

    def __init__(self, session_id: str, model, config: DistributedFilterConfig):
        self.session_id = str(session_id)
        self.model = model
        self.config = config
        #: the session's private stream — the same ``make_rng(cfg.rng,
        #: cfg.seed)`` lineage a standalone DistributedParticleFilter wraps,
        #: so cohort draws replay the solo draw sequence bit-for-bit.
        self.rng = make_rng(config.rng, config.seed)
        self.alloc_policy = make_allocation_policy(config)
        self.k = 0
        self.last_estimate: np.ndarray | None = None
        self.heal_counters = {"sanitized": 0, "rejuvenated": 0}
        self.alloc_counters = {"particles_migrated": 0, "width_changes": 0}
        #: queued ``(measurement, control, enqueue_perf_counter)`` triples.
        self.queue: deque = deque()
        self.cohort = None
        self.block = -1
        #: the private fallback filter for out-of-envelope sessions.
        self.solo = None
        self.envelope_reason = ""
        self._states: np.ndarray | None = None
        self._log_weights: np.ndarray | None = None
        self._widths: np.ndarray | None = None

    # -- population lifecycle ------------------------------------------------
    def ensure_initialized(self, dtype_policy) -> None:
        """Draw the prior population into detached storage if none exists.

        Mirrors ``DistributedParticleFilter.initialize`` operation for
        operation (same draws from the same stream, same padding under
        adaptive allocation), so a freshly attached session starts exactly
        where the standalone filter would.
        """
        if self._states is not None or self.cohort is not None:
            return
        cfg = self.config
        flat = self.model.initial_particles(
            cfg.total_particles, self.rng, dtype=dtype_policy.state)
        states = np.ascontiguousarray(
            flat.reshape(cfg.n_filters, cfg.n_particles, self.model.state_dim))
        log_weights = np.zeros((cfg.n_filters, cfg.n_particles),
                               dtype=dtype_policy.weight)
        capacity = allocation_capacity(cfg)
        widths = None
        if capacity != cfg.n_particles:
            states, log_weights = pad_population(states, log_weights, capacity)
            widths = np.full(cfg.n_filters, cfg.n_particles, dtype=np.int64)
        self._states, self._log_weights, self._widths = states, log_weights, widths

    def take_population(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Hand the detached population over (ownership transfer)."""
        if self._states is None:
            raise ValueError(
                f"session {self.session_id!r} has no detached population")
        out = (self._states, self._log_weights, self._widths)
        self._states = self._log_weights = self._widths = None
        return out

    def store_population(self, states: np.ndarray, log_weights: np.ndarray,
                         widths: np.ndarray | None) -> None:
        """Receive the population back (cohort detach)."""
        self._states, self._log_weights, self._widths = states, log_weights, widths

    # -- ingress -------------------------------------------------------------
    def enqueue(self, measurement, control=None) -> None:
        self.queue.append((measurement, control, time.perf_counter()))

    @property
    def attached(self) -> bool:
        return self.cohort is not None

    @property
    def states(self) -> np.ndarray | None:
        """The session's ``(X, m, d)`` particle rows, wherever they live."""
        if self.solo is not None:
            return self.solo.states
        if self.cohort is not None:
            return self.cohort.session_rows(self)[0]
        return self._states

    @property
    def log_weights(self) -> np.ndarray | None:
        if self.solo is not None:
            return self.solo.log_weights
        if self.cohort is not None:
            return self.cohort.session_rows(self)[1]
        return self._log_weights

    @property
    def widths(self) -> np.ndarray | None:
        if self.solo is not None:
            return self.solo.widths
        if self.cohort is not None:
            return self.cohort.session_rows(self)[2]
        return self._widths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = ("solo" if self.solo is not None
                 else f"cohort[{self.block}]" if self.cohort is not None
                 else "detached")
        return (f"FilterSession({self.session_id!r}, k={self.k}, {where}, "
                f"queued={len(self.queue)})")
