"""Multi-session cohort batching: many small filters stepped as one slab.

Production traffic is many small concurrent filters, not one big one. This
package packs live :class:`FilterSession`s into shared ``(S·X, m, d)`` cohort
slabs so whole cohorts advance through the existing
:class:`~repro.engine.pipeline.StepPipeline` (and the fused compiled stage,
when in-envelope) as **one** vectorized call, amortizing per-filter stage
dispatch, kernel launch and telemetry overhead across the cohort.

Parity contract: a cohort-stepped session is **bit-identical** to the same
session stepped alone through :class:`~repro.core.DistributedParticleFilter`
— same model, config, seed, same RNG draw sequence (see
:class:`~repro.sessions.rng.CohortRNG`), same floating-point operations.
Sessions outside the cohort envelope (:func:`cohort_envelope`) transparently
fall back to a private per-session filter under the same scheduler.
"""

from repro.sessions.envelope import (
    COHORT_SAFE_RESAMPLERS,
    cohort_envelope,
    cohort_key,
)
from repro.sessions.rng import CohortRNG, CohortStripeError
from repro.sessions.session import FilterSession, QueueFullError, StepResult
from repro.sessions.cohort import Cohort
from repro.sessions.scheduler import SessionManager

__all__ = [
    "COHORT_SAFE_RESAMPLERS",
    "Cohort",
    "CohortRNG",
    "CohortStripeError",
    "FilterSession",
    "QueueFullError",
    "SessionManager",
    "StepResult",
    "cohort_envelope",
    "cohort_key",
]
