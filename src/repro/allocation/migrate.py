"""Width-layout helpers: padding, masking, and particle migration.

The padded layout invariant, relied on by every stage:

- live particles occupy slots ``[0, m_i)`` of each row,
- padded slots ``[m_i, m_max)`` hold **copies of real particles** with
  ``-inf`` log-weight — finite states flow harmlessly through the model's
  transition, the stable descending sort keeps them at the tail, and the
  shift-exp in every selection kernel gives them exactly zero mass.

Growth and shrink preserve the invariant: a shrinking row truncates (its
former live tail becomes padding), a growing row fills new slots either by
resampling from the round's pooled candidate set (the exchange plumbing —
see :func:`grow_from_pool`) or, where no pool is available (multiprocess
workers at round start), by deterministic cyclic duplication of its own
live particles (:func:`resize_block`).
"""

from __future__ import annotations

import numpy as np


def width_mask(widths: np.ndarray, m_max: int) -> np.ndarray:
    """Boolean ``(F, m_max)`` mask of live slots (``slot < m_i``)."""
    w = np.asarray(widths, dtype=np.int64)
    return np.arange(m_max)[None, :] < w[:, None]


def apply_width_mask(log_weights: np.ndarray, widths: np.ndarray) -> None:
    """Force padded slots to ``-inf`` log-weight, in place."""
    mask = width_mask(widths, log_weights.shape[1])
    log_weights[~mask] = -np.inf


def pad_population(states: np.ndarray, log_weights: np.ndarray,
                   capacity: int) -> tuple[np.ndarray, np.ndarray]:
    """Embed a dense ``(F, m, d)`` population into ``(F, capacity, d)``.

    Padded slots replicate each row's first particle (a real state, so the
    model never sees garbage) at ``-inf`` log-weight. ``capacity == m``
    returns the inputs unchanged — the fixed-policy fast path.
    """
    F, m = log_weights.shape
    if capacity == m:
        return states, log_weights
    if capacity < m:
        raise ValueError(f"capacity {capacity} < population width {m}")
    out_states = np.empty((F, capacity, states.shape[-1]), dtype=states.dtype)
    out_states[:, :m] = states
    out_states[:, m:] = states[:, :1]
    out_logw = np.full((F, capacity), -np.inf, dtype=np.float64)
    out_logw[:, :m] = log_weights
    return out_states, out_logw


def resize_block(states: np.ndarray, log_weights: np.ndarray,
                 widths: np.ndarray, new_widths: np.ndarray) -> int:
    """Deterministically resize each row's live region, in place.

    Shrink: the live tail beyond the new width becomes padding (``-inf``).
    Grow: new slots cyclically duplicate the row's live particles, carrying
    their log-weights — the normalized local distribution is approximately
    preserved and no RNG is consumed, which is what lets multiprocess
    workers apply a width update at round start while keeping
    checkpoint/resume bit-exact. Returns the number of particles migrated
    (slots whose liveness changed).
    """
    widths = np.asarray(widths, dtype=np.int64)
    new_widths = np.asarray(new_widths, dtype=np.int64)
    if new_widths.max(initial=0) > states.shape[1]:
        raise ValueError("new widths exceed the padded capacity")
    migrated = 0
    for f in np.flatnonzero(new_widths != widths):
        old, new = int(widths[f]), int(new_widths[f])
        if new < old:
            log_weights[f, new:old] = -np.inf
        else:
            src = np.arange(old, new) % max(old, 1)
            states[f, old:new] = states[f, src]
            log_weights[f, old:new] = log_weights[f, src]
        migrated += abs(new - old)
    return migrated


def grow_from_pool(states: np.ndarray, log_weights: np.ndarray,
                   widths: np.ndarray, new_widths: np.ndarray,
                   pooled_states, pooled_logw, resampled: np.ndarray,
                   resampler, rng) -> int:
    """Resize rows, drawing grown slots from the pooled candidate set.

    The migration path of the vectorized backend: rows that resampled this
    round (``resampled`` mask) fill their new slots with fresh draws from
    the same pooled (own + received) weighted set the resample stage used —
    particles effectively migrate along the exchange topology — and start
    uniform (log-weight 0) like the rest of the freshly resampled row.
    Rows that skipped resampling, and shrinking rows, fall back to the
    deterministic :func:`resize_block` semantics. Returns particles migrated.
    """
    widths = np.asarray(widths, dtype=np.int64)
    new_widths = np.asarray(new_widths, dtype=np.int64)
    if new_widths.max(initial=0) > states.shape[1]:
        raise ValueError("new widths exceed the padded capacity")
    migrated = 0
    for f in np.flatnonzero(new_widths != widths):
        old, new = int(widths[f]), int(new_widths[f])
        if new < old:
            log_weights[f, new:old] = -np.inf
            migrated += old - new
            continue
        n = new - old
        if pooled_logw is not None and bool(resampled[f]):
            row_logw = np.asarray(pooled_logw[f], dtype=np.float64)
            peak = row_logw.max()
            if np.isfinite(peak):
                w = np.exp(row_logw - peak)
                idx = resampler.resample(w, n, rng)
                row_states = np.asarray(pooled_states[f])
                states[f, old:new] = row_states[np.asarray(idx, dtype=np.intp)]
                log_weights[f, old:new] = 0.0
                migrated += n
                continue
        src = np.arange(old, new) % max(old, 1)
        states[f, old:new] = states[f, src]
        log_weights[f, old:new] = log_weights[f, src]
        migrated += n
    return migrated
