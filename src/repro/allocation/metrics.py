"""Per-sub-filter health metrics driving allocation decisions.

Both metrics are pure reductions over the log-weight matrix — no RNG draws,
no mutation — so computing them inside the round cannot perturb a golden
trace. Padded slots carry ``-inf`` log-weight and therefore contribute
exactly zero to every sum here; the metrics see only the live population.
"""

from __future__ import annotations

import numpy as np


def subfilter_ess(log_weights: np.ndarray) -> np.ndarray:
    """Effective sample size per sub-filter, from log-weights directly.

    ``ESS = (sum w)^2 / sum w^2`` after a per-row max shift. A row with no
    finite weight (fully degenerate or fully padded) reports ESS 0 — unlike
    :func:`repro.resampling.effective_sample_size`, which falls back to the
    uniform value; here "no usable mass" must read as "needs no particles".
    """
    lw = np.asarray(log_weights, dtype=np.float64)
    peak = np.max(lw, axis=-1, keepdims=True)
    with np.errstate(invalid="ignore"):
        w = np.exp(lw - peak)  # all--inf rows produce NaN from -inf - -inf
    w = np.where(np.isfinite(w), w, 0.0)
    s1 = w.sum(axis=-1)
    s2 = (w * w).sum(axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        ess = np.where(s2 > 0.0, (s1 * s1) / np.where(s2 > 0.0, s2, 1.0), 0.0)
    return ess


def row_logsumexp(log_weights: np.ndarray) -> np.ndarray:
    """Per-row ``logsumexp`` of the log-weight matrix (degenerate → -inf).

    Log-weights are absolute (not normalized per worker), so these values
    are globally comparable: a multiprocess worker ships its block's rows
    and the master concatenates them before the softmax — the distributed
    form of the DRNA weight-mass reduction.
    """
    lw = np.asarray(log_weights, dtype=np.float64)
    peak = np.max(lw, axis=-1, keepdims=True)
    finite_peak = np.isfinite(peak[..., 0])
    with np.errstate(invalid="ignore"):
        w = np.exp(lw - peak)
    w = np.where(np.isfinite(w), w, 0.0)
    with np.errstate(divide="ignore"):
        return np.where(finite_peak, peak[..., 0] + np.log(w.sum(axis=-1)), -np.inf)


def share_from_logsumexp(lse: np.ndarray) -> np.ndarray:
    """Softmax over per-row logsumexps: the global weight-mass shares.

    Degenerate rows (``-inf``) get share 0; if *every* row is degenerate the
    split is uniform (there is no information to allocate on).
    """
    lse = np.asarray(lse, dtype=np.float64)
    g = lse.max()
    if not np.isfinite(g):
        return np.full(lse.shape, 1.0 / lse.shape[-1])
    share = np.exp(lse - g)
    return share / share.sum()


def weight_mass_share(log_weights: np.ndarray) -> np.ndarray:
    """Each sub-filter's share of the global (unnormalized) weight mass.

    The DRNA allocation signal: ``softmax`` over the per-row log-sum-exp.
    Degenerate rows get share 0; if *every* row is degenerate the split is
    uniform (there is no information to allocate on).
    """
    return share_from_logsumexp(row_logsumexp(log_weights))


def mass_concentration(share: np.ndarray) -> float:
    """Herfindahl concentration of the weight-mass shares, in ``[1/F, 1]``.

    ``1/F`` when mass is spread evenly over all sub-filters, 1.0 when a
    single sub-filter carries everything — the one-number summary exported
    as the ``alloc.mass_hhi`` telemetry counter.
    """
    s = np.asarray(share, dtype=np.float64)
    total = s.sum()
    if not np.isfinite(total) or total <= 0:
        return 1.0 / s.shape[-1]
    s = s / total
    return float(np.sum(s * s))
