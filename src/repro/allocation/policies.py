"""Allocation policies: how many particles each sub-filter gets next round.

A policy maps per-sub-filter health metrics (ESS, weight-mass share) to a
new integer width vector. Every policy obeys the same hard contract:

- the total particle budget ``sum(m_i) == n_filters * n_particles`` is
  conserved exactly,
- every width stays within ``[min_width, max_width]``,
- the decision is a pure function of its inputs plus the policy's own
  serializable state (no RNG), so checkpoint/resume reproduces the exact
  width trajectory.
"""

from __future__ import annotations

import abc

import numpy as np


def apportion(scores: np.ndarray, budget: int, min_width: int,
              max_width: int) -> np.ndarray:
    """Largest-remainder apportionment of *budget* particles by score.

    Deterministic water-filling: each sub-filter's real-valued target is its
    score share of the budget; clamped sub-filters are pinned and the
    remainder is re-split among the rest until no clamp is violated, then
    integerized by largest fractional remainder (ties to the lower index).
    Guarantees ``out.sum() == budget`` and ``min_width <= out <= max_width``
    whenever ``F*min_width <= budget <= F*max_width``.
    """
    s = np.asarray(scores, dtype=np.float64).copy()
    F = s.shape[0]
    if budget < F * min_width or budget > F * max_width:
        raise ValueError(
            f"budget {budget} infeasible for {F} sub-filters in "
            f"[{min_width}, {max_width}]")
    s[~np.isfinite(s) | (s < 0)] = 0.0
    if s.sum() <= 0:
        s = np.ones(F)

    target = np.empty(F, dtype=np.float64)
    pinned = np.zeros(F, dtype=bool)
    remaining = float(budget)
    # At most F rounds: every round pins at least one sub-filter or exits.
    for _ in range(F):
        free = ~pinned
        total = s[free].sum()
        if total <= 0:
            target[free] = remaining / max(int(free.sum()), 1)
        else:
            target[free] = remaining * s[free] / total
        low = free & (target < min_width)
        high = free & (target > max_width)
        if not low.any() and not high.any():
            break
        # Pin the violated side that overshoots most to keep convergence
        # monotone, then redistribute what is left.
        target[low] = min_width
        target[high] = max_width
        pinned |= low | high
        remaining = budget - target[pinned].sum()
        if pinned.all():
            break

    base = np.floor(target).astype(np.int64)
    np.clip(base, min_width, max_width, out=base)
    residual = int(budget - base.sum())
    if residual != 0:
        frac = target - np.floor(target)
        if residual > 0:
            room = base < max_width
            order = np.lexsort((np.arange(F), -frac))
        else:
            room = base > min_width
            order = np.lexsort((np.arange(F), frac))
        step = 1 if residual > 0 else -1
        # Cycle the preference order until the residual is absorbed; each
        # pass moves at least one particle while any room remains.
        for _ in range(abs(residual) + F):
            if residual == 0:
                break
            for i in order:
                if residual == 0:
                    break
                if room[i]:
                    base[i] += step
                    residual -= step
                    room[i] = (base[i] < max_width) if step > 0 else (base[i] > min_width)
    if residual != 0:
        raise RuntimeError("apportionment failed to place the full budget")
    return base


class AllocationPolicy(abc.ABC):
    """Decides, per round, the next width vector for the population."""

    name = "?"

    def __init__(self, budget: int, min_width: int, max_width: int,
                 hysteresis: float = 0.0):
        self.budget = int(budget)
        self.min_width = int(min_width)
        self.max_width = int(max_width)
        self.hysteresis = float(hysteresis)

    @abc.abstractmethod
    def decide(self, widths: np.ndarray, ess: np.ndarray,
               mass_share: np.ndarray) -> np.ndarray:
        """New per-sub-filter widths given the current ones and metrics.

        Returns an int64 vector with the same sum as ``widths`` (the
        budget); must not mutate its inputs.
        """

    # -- checkpointable internal state (smoothed scores etc.) ----------------
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, d: dict) -> None:
        pass

    # -- hysteresis ----------------------------------------------------------
    def _damp(self, widths: np.ndarray, proposal: np.ndarray) -> np.ndarray:
        """Freeze sub-threshold changes; repair the budget among the rest.

        A sub-filter only moves when the proposed change exceeds
        ``hysteresis * current_width`` (and at least one particle), which
        stops the population from thrashing on metric noise. Frozen rows
        keep their width; any budget residual that freezing introduced is
        pushed into the changed rows, largest-remainder style, respecting
        the clamps. If freezing leaves no row able to absorb the residual,
        the undamped proposal wins.
        """
        widths = np.asarray(widths, dtype=np.int64)
        proposal = np.asarray(proposal, dtype=np.int64)
        if self.hysteresis <= 0.0:
            return proposal
        delta = np.abs(proposal - widths)
        frozen = delta < np.maximum(1.0, self.hysteresis * widths)
        if frozen.all():
            return widths.copy()
        out = np.where(frozen, widths, proposal)
        residual = int(self.budget - out.sum())
        step = 1 if residual > 0 else -1
        for _ in range(abs(residual)):
            if residual == 0:
                break
            free = ~frozen & (
                (out < self.max_width) if step > 0 else (out > self.min_width))
            if not free.any():
                return proposal
            # Give to the row furthest below its proposal (take from the one
            # furthest above), ties to the lower index — deterministic.
            gap = (proposal - out) * step
            gap[~free] = np.iinfo(np.int64).min
            out[int(np.argmax(gap))] += step
            residual -= step
        return out


class FixedAllocation(AllocationPolicy):
    """The paper's equal split: widths never change (bit-parity baseline)."""

    name = "fixed"

    def decide(self, widths, ess, mass_share):
        return np.asarray(widths, dtype=np.int64).copy()


class ESSProportionalAllocation(AllocationPolicy):
    """Widths proportional to each sub-filter's effective sample size.

    A high ESS means the sub-filter's particles genuinely cover its local
    posterior — extra particles there buy resolution; a collapsed sub-filter
    (ESS near 1) is riding one hypothesis and shrinks toward the min clamp.
    """

    name = "ess"

    def decide(self, widths, ess, mass_share):
        proposal = apportion(np.asarray(ess, dtype=np.float64), self.budget,
                             self.min_width, self.max_width)
        return self._damp(widths, proposal)


class WeightMassAllocation(AllocationPolicy):
    """DRNA-style allocation: particles follow the posterior weight mass.

    Each sub-filter's target is its share of the global weight mass
    (arXiv:1310.4624), exponentially smoothed across rounds
    (``score <- (1-smooth)*score + smooth*share``) so a single spiky
    likelihood cannot yank the whole budget, then clamped and damped by the
    hysteresis band. The smoothed score vector is checkpointed state.
    """

    name = "mass"

    def __init__(self, budget, min_width, max_width, hysteresis=0.0,
                 smooth: float = 0.5):
        super().__init__(budget, min_width, max_width, hysteresis)
        if not 0.0 < smooth <= 1.0:
            raise ValueError(f"smooth must be in (0, 1], got {smooth}")
        self.smooth = float(smooth)
        self._score: np.ndarray | None = None

    def decide(self, widths, ess, mass_share):
        share = np.asarray(mass_share, dtype=np.float64)
        if self._score is None or self._score.shape != share.shape:
            self._score = share.copy()
        else:
            self._score = (1.0 - self.smooth) * self._score + self.smooth * share
        proposal = apportion(self._score, self.budget,
                             self.min_width, self.max_width)
        return self._damp(widths, proposal)

    def state_dict(self) -> dict:
        return {} if self._score is None else {"score": self._score.tolist()}

    def load_state_dict(self, d: dict) -> None:
        score = d.get("score")
        self._score = None if score is None else np.asarray(score, dtype=np.float64)


_POLICIES = {
    "fixed": FixedAllocation,
    "ess": ESSProportionalAllocation,
    "mass": WeightMassAllocation,
}

ALLOCATION_POLICY_NAMES = tuple(_POLICIES)


def allocation_capacity(cfg) -> int:
    """The padded width ``m_max`` the population arrays are sized for.

    The fixed policy keeps the exact pre-allocation shape (capacity == m, no
    padding anywhere), which is what makes its golden traces bit-identical.
    Adaptive policies size for the configured max width so growth never
    reallocates.
    """
    if cfg.allocation == "fixed":
        return cfg.n_particles
    return int(cfg.alloc_max_width)


def make_allocation_policy(cfg) -> AllocationPolicy:
    """Build the policy named by ``cfg.allocation`` from a filter config."""
    try:
        cls = _POLICIES[cfg.allocation]
    except KeyError:
        raise ValueError(
            f"unknown allocation policy {cfg.allocation!r}; "
            f"expected one of {sorted(_POLICIES)}") from None
    budget = cfg.n_particles * cfg.n_filters
    if cfg.allocation == "fixed":
        return cls(budget, cfg.n_particles, cfg.n_particles)
    return cls(budget, cfg.alloc_min_width, cfg.alloc_max_width,
               hysteresis=cfg.alloc_hysteresis)
