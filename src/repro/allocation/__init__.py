"""Adaptive particle allocation across sub-filters.

The paper fixes every sub-filter at ``m`` particles, so the machine spends
identical FLOPs on every hypothesis regardless of how much posterior mass it
carries. This package relaxes that: the population becomes a padded
``(n_filters, m_max, state_dim)`` block with a per-sub-filter live-width
vector ``m_i`` (padded slots are copies of real particles carrying ``-inf``
log-weight, so every existing kernel treats them as zero-mass), and a
pluggable :class:`AllocationPolicy` decides each round how sub-filters grow
or shrink within a conserved total particle budget.

Policies (see :mod:`repro.allocation.policies`):

- ``fixed`` — the paper's equal split; widths never change and every code
  path is bit-identical to the pre-allocation layout.
- ``ess`` — widths proportional to each sub-filter's effective sample size.
- ``mass`` — DRNA-style (arXiv:1310.4624): widths proportional to each
  sub-filter's share of the global weight mass, with exponential smoothing,
  per-filter hysteresis, and min/max clamps.

Migration (see :mod:`repro.allocation.migrate`) reuses the exchange
plumbing: a growing sub-filter fills its new slots by resampling from the
same pooled candidate set (own + received particles) the resample stage
already built, so fresh particles arrive through the topology rather than
being invented locally.
"""

from repro.allocation.metrics import (
    mass_concentration,
    row_logsumexp,
    share_from_logsumexp,
    subfilter_ess,
    weight_mass_share,
)
from repro.allocation.migrate import (
    apply_width_mask,
    pad_population,
    resize_block,
    width_mask,
)
from repro.allocation.policies import (
    AllocationPolicy,
    ESSProportionalAllocation,
    FixedAllocation,
    WeightMassAllocation,
    allocation_capacity,
    apportion,
    make_allocation_policy,
)

__all__ = [
    "AllocationPolicy",
    "ESSProportionalAllocation",
    "FixedAllocation",
    "WeightMassAllocation",
    "allocation_capacity",
    "apply_width_mask",
    "apportion",
    "make_allocation_policy",
    "mass_concentration",
    "pad_population",
    "resize_block",
    "row_logsumexp",
    "share_from_logsumexp",
    "subfilter_ess",
    "weight_mass_share",
    "width_mask",
]
