"""Per-kernel phase timing.

The paper's Fig. 4 breaks a filtering round into six kernels (rand, sampling,
local sort, global estimate, exchange, resampling). :class:`PhaseTimer`
accumulates wall-clock seconds per phase; :class:`TimingRNG` attributes the
time spent generating random numbers to the ``rand`` phase even though the
draws happen inside model code, mirroring the paper's separate PRNG kernel.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

import numpy as np

from repro.prng.streams import FilterRNG

#: Canonical kernel order used by the paper's breakdown plots.
KERNELS = ("rand", "sampling", "sort", "estimate", "exchange", "resample")


class PhaseTimer:
    """Accumulates seconds per named phase; nestable via re-entrant phases.

    Phases can be driven either through the :meth:`phase` context manager or
    through the explicit :meth:`start`/:meth:`stop` pair — the latter is what
    the engine's :class:`~repro.engine.hooks.TimerHook` uses to open a phase
    in ``on_stage_start`` and close it in ``on_stage_end``.
    """

    def __init__(self):
        self.seconds: dict[str, float] = defaultdict(float)
        self._active: list[tuple[str, float]] = []

    def start(self, name: str) -> None:
        """Open phase *name*; must be balanced by a :meth:`stop`."""
        self._active.append((name, time.perf_counter()))

    def stop(self) -> float:
        """Close the innermost open phase and return its elapsed seconds."""
        name, begin = self._active.pop()
        elapsed = time.perf_counter() - begin
        self.seconds[name] += elapsed
        # Time spent inside a nested phase (e.g. rand inside sampling) is
        # subtracted from the enclosing phase by crediting it negatively.
        if self._active:
            self.seconds[self._active[-1][0]] -= elapsed
        return elapsed

    @contextmanager
    def phase(self, name: str):
        self.start(name)
        try:
            yield
        finally:
            self.stop()

    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Phase shares of the total (the paper's stacked-area quantity).

        A timer with zero total elapsed — fresh, reset, or from a zero-step
        run — has no meaningful shares: the result is an empty dict, never
        NaN and never a division error.
        """
        total = self.total()
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.seconds.items()}

    def reset(self) -> None:
        self.seconds.clear()


class TimingRNG(FilterRNG):
    """Wraps another RNG, billing generation time to the ``rand`` phase."""

    def __init__(self, inner: FilterRNG, timer: PhaseTimer):
        self.inner = inner
        self.timer = timer

    def uniform(self, shape, dtype=np.float64) -> np.ndarray:
        with self.timer.phase("rand"):
            return self.inner.uniform(shape, dtype)

    def normal(self, shape, dtype=np.float64) -> np.ndarray:
        with self.timer.phase("rand"):
            return self.inner.normal(shape, dtype)

    def spawn(self, stream: int) -> "TimingRNG":
        return TimingRNG(self.inner.spawn(stream), self.timer)

    def scoped_rows(self, rows):
        """Forward row scoping to a striped inner RNG (no-op otherwise).

        Draws inside the scope still route through this wrapper, so they
        stay billed to the ``rand`` phase.
        """
        scope = getattr(self.inner, "scoped_rows", None)
        if scope is None:
            from contextlib import nullcontext

            return nullcontext(self)
        return scope(rows)

    def delegating(self, block: int):
        """Forward per-row delegation to a striped inner RNG."""
        scope = getattr(self.inner, "delegating", None)
        if scope is None:
            from contextlib import nullcontext

            return nullcontext(self)
        return scope(block)

    def state_dict(self) -> dict:
        return self.inner.state_dict()

    def load_state_dict(self, d: dict) -> None:
        self.inner.load_state_dict(d)
