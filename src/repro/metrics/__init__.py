"""Timing and estimation-error metrics."""

from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.metrics.error import rmse, time_averaged_error, convergence_step

__all__ = ["PhaseTimer", "TimingRNG", "rmse", "time_averaged_error", "convergence_step"]
