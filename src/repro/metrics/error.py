"""Estimation-error metrics used by the accuracy experiments."""

from __future__ import annotations

import numpy as np


def rmse(estimates: np.ndarray, truths: np.ndarray, axis: int = 0) -> np.ndarray:
    """Root-mean-square of per-step Euclidean errors along *axis*."""
    e = np.asarray(estimates, dtype=np.float64) - np.asarray(truths, dtype=np.float64)
    return np.sqrt(np.mean(np.sum(e * e, axis=-1), axis=axis))


def time_averaged_error(errors: np.ndarray, warmup: int = 0) -> float:
    """Mean of per-step scalar errors, skipping the first *warmup* steps
    (the convergence transient that the paper's averages also exclude)."""
    errors = np.asarray(errors, dtype=np.float64)
    if warmup >= errors.shape[0]:
        raise ValueError(f"warmup {warmup} >= number of steps {errors.shape[0]}")
    return float(errors[warmup:].mean())


def convergence_step(errors: np.ndarray, threshold: float, hold: int = 5) -> int | None:
    """First step after which the error stays below *threshold* for *hold*
    consecutive steps; ``None`` if the filter never converges (the paper's
    Fig. 8 low-particle trace)."""
    errors = np.asarray(errors, dtype=np.float64)
    below = errors < threshold
    run = 0
    for k, ok in enumerate(below):
        run = run + 1 if ok else 0
        if run >= hold:
            return k - hold + 1
    return None
