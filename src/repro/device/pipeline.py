"""A full distributed-filter round executed as SIMT kernels.

The paper stresses that *all* filter operations run on the CUDA/OpenCL
device: "Reducing data transfers to only measurement data and estimates is
essential". This module demonstrates the same property on the simulated
device: every step of :class:`SimtDistributedFilter` is a sequence of
work-group kernel launches over transaction-counted global memory —

  rand -> sampling+weight -> local sort -> estimate -> exchange -> resample

— with the host touching only the measurement (in) and the estimate (out).
It runs a scalar (1-D state) model so the whole state fits the kernel lane
model; the vectorized filters in :mod:`repro.core` remain the production
path. Its value is validation (the kernels compose into a correct filter)
and instrumentation (per-kernel transaction/barrier/divergence counts that
ground the analytic cost model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.kernel import Kernel, LaunchResult, launch_kernel
from repro.device.simt import WorkGroup
from repro.kernels.registry import default_registry
from repro.prng.philox import Philox4x32
from repro.utils.arrays import next_power_of_two
from repro.utils.validation import check_power_of_two, check_positive_int


@dataclass
class ScalarDeviceModel:
    """A 1-D auto-regressive model expressed as lane operations.

    x' = a x + sigma_q eta,   z = x + sigma_r eps  (weights = exp(loglik)).
    """

    a: float = 0.9
    sigma_q: float = 0.2
    sigma_r: float = 0.1
    prior_sigma: float = 1.0

    def transition_lanes(self, x: np.ndarray, noise: np.ndarray) -> np.ndarray:
        return self.a * x + self.sigma_q * noise

    def weight_lanes(self, x: np.ndarray, z: float) -> np.ndarray:
        d = (x - z) / self.sigma_r
        return np.exp(-0.5 * d * d)


@dataclass
class StepStats:
    """Aggregated device activity of one filtering step."""

    launches: dict[str, LaunchResult] = field(default_factory=dict)

    @property
    def total_global_bytes(self) -> int:
        return sum(l.global_bytes_read + l.global_bytes_written for l in self.launches.values())

    @property
    def total_barriers(self) -> int:
        return sum(l.stats.barriers for l in self.launches.values())


class SimtDistributedFilter:
    """Distributed particle filter whose every kernel runs on the SIMT
    simulator (ring topology, t=1, RWS resampling)."""

    def __init__(self, model: ScalarDeviceModel, n_particles: int, n_filters: int, seed: int = 0):
        self.model = model
        self.m = check_power_of_two(n_particles, "n_particles")
        self.F = check_positive_int(n_filters, "n_filters")
        self.philox = Philox4x32(key=seed)
        self.seed = seed
        self.k = 0
        self._counter = 0
        self.states = np.zeros(self.F * self.m, dtype=np.float64)
        self.weights = np.zeros(self.F * self.m, dtype=np.float64)
        self.last_stats: StepStats | None = None
        # Pool region: m own + 2 received (ring, t=1), padded to a power of 2.
        self.pool = next_power_of_two(self.m + 2)

    # -- host-side randomness feed (counter-based, like cuRAND device API) ---
    def _normals(self, n: int) -> np.ndarray:
        n_ctr = (n + 1) // 2
        counters = np.arange(self._counter, self._counter + n_ctr, dtype=np.uint64)
        self._counter += n_ctr
        words = self.philox.generate(counters)
        u = (words[:, :2].astype(np.float64) + 0.5) / 4294967296.0
        r = np.sqrt(-2.0 * np.log(u[:, 0]))
        theta = 2.0 * np.pi * u[:, 1]
        return np.concatenate([r * np.cos(theta), r * np.sin(theta)])[:n]

    def _uniforms(self, n: int) -> np.ndarray:
        n_ctr = (n + 3) // 4
        counters = np.arange(self._counter, self._counter + n_ctr, dtype=np.uint64)
        self._counter += n_ctr
        return (self.philox.generate(counters).reshape(-1)[:n].astype(np.float64)) / 4294967296.0

    # -- lifecycle ----------------------------------------------------------
    def initialize(self) -> None:
        self.states = self.model.prior_sigma * self._normals(self.F * self.m)
        self.weights = np.full(self.F * self.m, 1.0)
        self.k = 0

    def step(self, measurement: float) -> float:
        """One fully-on-device round; returns the max-weight estimate."""
        F, m = self.F, self.m
        stats = StepStats()
        noise = self._normals(F * m)
        rand_u = self._uniforms(F * m)  # resampling uniforms, pre-staged

        # ---- kernel 1+2: (rand feed is counter-based) sampling + weighting
        model = self.model
        z = float(measurement)

        def sampling_body(wg: WorkGroup, mems, gid):
            idx = gid * m + wg.lane
            x = mems["states"].read(idx)
            eta = mems["noise"].read(idx)
            x = model.transition_lanes(x, eta)
            w = model.weight_lanes(x, z)
            wg.op(6)
            mems["states"].write(idx, x)
            mems["weights"].write(idx, w)

        arrays, res = launch_kernel(
            Kernel("sampling", sampling_body), F, m,
            {"states": self.states, "weights": self.weights, "noise": noise},
        )
        self.states, self.weights = arrays["states"], arrays["weights"]
        stats.launches["sampling"] = res

        # ---- kernel 3: local bitonic sort (weights desc) + apply permutation
        def sort_body(wg: WorkGroup, mems, gid):
            idx = gid * m + wg.lane
            keys = wg.local_array(m)
            vals = wg.local_array(m, dtype=np.int64)
            keys.scatter(wg.lane, mems["weights"].read(idx))
            vals.scatter(wg.lane, wg.lane)
            wg.barrier()
            default_registry().workgroup("sort")(wg, keys, vals, descending=True)
            # Non-contiguous reads, contiguous writes (Section VI-C).
            perm = vals.gather(wg.lane)
            mems["states_out"].write(idx, mems["states"].read(gid * m + perm))
            mems["weights_out"].write(idx, keys.gather(wg.lane))

        arrays, res = launch_kernel(
            Kernel("sort", sort_body), F, m,
            {
                "states": self.states,
                "weights": self.weights,
                "states_out": np.empty_like(self.states),
                "weights_out": np.empty_like(self.weights),
            },
        )
        self.states, self.weights = arrays["states_out"], arrays["weights_out"]
        stats.launches["sort"] = res

        # ---- kernel 4: global estimate (rows sorted: best of each group)
        gsize = next_power_of_two(F)
        estimate_out = np.zeros(2)

        def estimate_body(wg: WorkGroup, mems, gid):
            valid = wg.lane < F
            src = np.minimum(wg.lane, F - 1) * m  # column 0 of each group
            w = np.where(valid, mems["weights"].read(src), -1.0)
            x = mems["states"].read(src)
            best = wg.local_array(gsize)
            best_x = wg.local_array(gsize)
            best.scatter(wg.lane, w)
            best_x.scatter(wg.lane, x)
            wg.barrier()
            stride = gsize // 2
            while stride >= 1:
                act = wg.lane < stride
                lanes = wg.lane[act]
                a, b = best.gather(lanes), best.gather(lanes + stride)
                xa, xb = best_x.gather(lanes), best_x.gather(lanes + stride)
                take_b = b > a
                best.scatter(lanes, np.where(take_b, b, a))
                best_x.scatter(lanes, np.where(take_b, xb, xa))
                wg.op()
                wg.barrier()
                stride //= 2
            mems["estimate"].write(np.array([0]), np.array([best_x[0]]))
            mems["estimate"].write(np.array([1]), np.array([best[0]]))

        arrays, res = launch_kernel(
            Kernel("estimate", estimate_body), 1, gsize,
            {"states": self.states, "weights": self.weights, "estimate": estimate_out},
        )
        estimate = float(arrays["estimate"][0])
        stats.launches["estimate"] = res

        # ---- kernel 5: ring exchange into the pool region (t = 1)
        P = self.pool
        pool_states = np.zeros(F * P)
        pool_weights = np.zeros(F * P)

        def exchange_body(wg: WorkGroup, mems, gid):
            idx = gid * m + wg.lane
            # Copy own particles into the pool slot.
            mems["pool_states"].write(gid * P + wg.lane, mems["states"].read(idx))
            mems["pool_weights"].write(gid * P + wg.lane, mems["weights"].read(idx))
            wg.barrier()
            # Two lanes fetch the neighbours' best particle (column 0).
            left, right = (gid - 1) % F, (gid + 1) % F
            lane0, lane1 = wg.lane == 0, wg.lane == 1
            for cond, nb, slot in ((lane0, left, m), (lane1, right, m + 1)):
                if F > 1 and cond.any():
                    src = np.full(int(cond.sum()), nb * m)
                    mems["pool_states"].write(np.full(src.size, gid * P + slot), mems["states"].read(src))
                    mems["pool_weights"].write(np.full(src.size, gid * P + slot), mems["weights"].read(src))
            wg.barrier()

        arrays, res = launch_kernel(
            Kernel("exchange", exchange_body), F, m,
            {
                "states": self.states,
                "weights": self.weights,
                "pool_states": pool_states,
                "pool_weights": pool_weights,
            },
        )
        pool_states, pool_weights = arrays["pool_states"], arrays["pool_weights"]
        stats.launches["exchange"] = res

        # ---- kernel 6: local RWS resampling from the pool
        def resample_body(wg: WorkGroup, mems, gid):
            w = mems["pool_weights"].read(gid * P + wg.lane)
            u = mems["uniforms"].read(gid * P + np.minimum(wg.lane, m - 1))
            idx = default_registry().workgroup("rws")(wg, w, u)
            out_lane = wg.lane < m
            lanes = wg.lane[out_lane]
            src = gid * P + idx[out_lane]
            mems["states_out"].write(gid * m + lanes, mems["pool_states"].read(src))

        uniforms = np.zeros(F * P)
        for g in range(F):
            uniforms[g * P : g * P + m] = self._uniforms(m)
        arrays, res = launch_kernel(
            Kernel("resample", resample_body), F, P,
            {
                "pool_states": pool_states,
                "pool_weights": pool_weights,
                "uniforms": uniforms,
                "states_out": np.empty(F * m),
            },
        )
        self.states = arrays["states_out"]
        self.weights = np.full(F * m, 1.0)
        stats.launches["resample"] = res

        self.last_stats = stats
        self.k += 1
        return estimate
