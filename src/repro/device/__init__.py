"""Simulated many-core device substrate.

The paper measures on CUDA/OpenCL GPUs and multi-core CPUs (Table III). This
package stands in for that hardware:

- :mod:`repro.device.spec` — device parameter sheets for every Table III
  platform (SMs/CUs, clocks, SP GFLOP/s, memory bandwidth, local memory,
  TDP).
- :mod:`repro.device.memory` — global/local memory models that count
  coalesced transactions and local-memory bank conflicts the way the
  hardware's memory controllers do.
- :mod:`repro.device.simt` — a lock-step work-group interpreter: kernels are
  written against lane-vector primitives with explicit barriers, and the
  interpreter records divergence, barrier counts, bank conflicts and global
  transactions.
- :mod:`repro.device.costmodel` — an analytic time model turning kernel
  workloads (flops, bytes, sync points, serial fractions) into per-kernel
  times on a named platform; this regenerates the paper's Fig. 3/4/5
  performance shapes.
"""

from repro.device.spec import DeviceSpec, PLATFORMS, get_platform
from repro.device.memory import GlobalMemory, LocalMemory, coalesced_transactions
from repro.device.simt import WorkGroup, SimtStats
from repro.device.kernel import Kernel, ValidationReport, launch_kernel, validate
from repro.device.costmodel import (
    CostModel,
    KernelWorkload,
    FilterRoundCost,
    filter_round_cost,
    filter_round_cost_with_strategy,
)
from repro.device.scaling import EMBEDDED_PLATFORMS, ClusterSpec, cluster_round_cost, cluster_speedup

# NOTE: repro.device.pipeline is intentionally NOT imported here - it depends
# on repro.kernels, which itself imports this package (the kernels are written
# against the SIMT primitives). Import it as a submodule:
#   from repro.device.pipeline import SimtDistributedFilter

__all__ = [
    "DeviceSpec",
    "PLATFORMS",
    "get_platform",
    "GlobalMemory",
    "LocalMemory",
    "coalesced_transactions",
    "WorkGroup",
    "SimtStats",
    "Kernel",
    "launch_kernel",
    "validate",
    "ValidationReport",
    "CostModel",
    "KernelWorkload",
    "FilterRoundCost",
    "filter_round_cost",
    "filter_round_cost_with_strategy",
    "EMBEDDED_PLATFORMS",
    "ClusterSpec",
    "cluster_round_cost",
    "cluster_speedup",
]
