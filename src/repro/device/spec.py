"""Device parameter sheets (the paper's Table III).

The numbers are the public specifications of the paper's six platforms. The
``*_efficiency`` fields are the fraction of peak a well-tuned kernel actually
attains; they are calibration knobs of the cost model, not hardware specs,
and the defaults were tuned once against the paper's headline rates (a few
hundred Hz at one million particles on the high-end GPUs, dual-CPU about 6.5x
a sequential centralized filter).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """One many-core platform.

    Attributes mirror Table III, plus cost-model efficiency knobs.
    """

    name: str
    device_type: str  # "gpu" | "cpu"
    n_sm: int  # streaming multiprocessors / compute units / cores
    core_clock_ghz: float
    sp_gflops: float  # peak single-precision GFLOP/s
    mem_bandwidth_gbs: float  # peak global-memory bandwidth
    local_mem_kb: float  # per-SM local (shared) memory
    main_mem_gb: float
    tdp_watt: float
    released: str
    warp_size: int = 32  # SIMT width (SIMD lanes on CPU)
    max_groups_per_sm: int = 8  # concurrent work groups per SM at our resource use
    launch_overhead_us: float = 5.0  # per-kernel launch cost
    compute_efficiency: float = 0.35  # fraction of peak flops attained
    mem_efficiency: float = 0.8  # fraction of peak bandwidth attained
    rng_efficiency: float = 1.0  # MTGP-style PRNG suitability (poor on CPUs)
    local_op_rate_gops: float | None = None  # local-mem op throughput; default derived
    runtime_overhead: float = 1.0  # e.g. OpenCL ~1.05 vs CUDA (paper: <=5%)
    #: host<->device link bandwidth (PCIe gen2 ~6 GB/s); None = unified memory
    host_link_gbs: float | None = 6.0
    host_link_latency_us: float = 10.0

    def __post_init__(self):
        if self.device_type not in ("gpu", "cpu"):
            raise ValueError(f"device_type must be 'gpu' or 'cpu', got {self.device_type!r}")
        for f in ("n_sm", "core_clock_ghz", "sp_gflops", "mem_bandwidth_gbs", "local_mem_kb", "tdp_watt"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")

    @property
    def local_ops_per_second(self) -> float:
        """Throughput of local-memory ops (compares/swaps in sorting etc.)."""
        if self.local_op_rate_gops is not None:
            return self.local_op_rate_gops * 1e9
        # One lane-op per clock per SIMT lane, derated like compute.
        return self.n_sm * self.warp_size * self.core_clock_ghz * 1e9 * self.compute_efficiency

    @property
    def peak_concurrent_groups(self) -> int:
        return self.n_sm * self.max_groups_per_sm

    def with_(self, **kwargs) -> "DeviceSpec":
        return replace(self, **kwargs)


#: Table III platforms. CPU SIMD width is 8 (AVX, single precision).
PLATFORMS: dict[str, DeviceSpec] = {
    "i7-2820qm": DeviceSpec(
        name="Intel Core i7-2820QM",
        device_type="cpu",
        n_sm=4,
        core_clock_ghz=2.3,
        sp_gflops=147.0,
        mem_bandwidth_gbs=21.3,
        local_mem_kb=32.0,  # L1 per core
        main_mem_gb=8.0,
        tdp_watt=45.0,
        released="Jan 2011",
        warp_size=8,
        max_groups_per_sm=2,
        launch_overhead_us=1.0,
        compute_efficiency=0.30,
        mem_efficiency=0.6,
        rng_efficiency=0.25,  # MTGP is tuned for GPUs; paper saw ~40% rand share
        host_link_gbs=None,
    ),
    "2x-e5-2650": DeviceSpec(
        name="2x Intel Xeon E5-2650",
        device_type="cpu",
        n_sm=16,
        core_clock_ghz=2.0,
        sp_gflops=512.0,
        mem_bandwidth_gbs=102.4,
        local_mem_kb=32.0,
        main_mem_gb=32.0,
        tdp_watt=190.0,
        released="Mar 2012",
        warp_size=8,
        max_groups_per_sm=2,
        launch_overhead_us=1.0,
        compute_efficiency=0.30,
        mem_efficiency=0.6,
        rng_efficiency=0.25,
        host_link_gbs=None,
    ),
    "gtx-580": DeviceSpec(
        name="NVIDIA GeForce GTX 580",
        device_type="gpu",
        n_sm=16,
        core_clock_ghz=1.544,
        sp_gflops=1581.0,
        mem_bandwidth_gbs=192.4,
        local_mem_kb=48.0,
        main_mem_gb=1.5,
        tdp_watt=244.0,
        released="Nov 2010",
    ),
    "gtx-680": DeviceSpec(
        name="NVIDIA GeForce GTX 680",
        device_type="gpu",
        n_sm=8,
        core_clock_ghz=1.006,
        sp_gflops=3090.0,
        mem_bandwidth_gbs=192.2,
        local_mem_kb=48.0,
        main_mem_gb=2.0,
        tdp_watt=195.0,
        released="Mar 2012",
        max_groups_per_sm=16,
        compute_efficiency=0.25,  # Kepler's static scheduling reaches less of peak
    ),
    "hd-6970": DeviceSpec(
        name="AMD Radeon HD 6970",
        device_type="gpu",
        n_sm=24,
        core_clock_ghz=0.880,
        sp_gflops=2703.0,
        mem_bandwidth_gbs=176.0,
        local_mem_kb=32.0,
        main_mem_gb=2.0,
        tdp_watt=250.0,
        released="Dec 2010",
        warp_size=64,
        launch_overhead_us=15.0,  # paper: Radeons stay behind for very small filters
        compute_efficiency=0.20,  # VLIW4 utilization
    ),
    "hd-7970": DeviceSpec(
        name="AMD Radeon HD 7970",
        device_type="gpu",
        n_sm=32,
        core_clock_ghz=0.925,
        sp_gflops=3789.0,
        mem_bandwidth_gbs=264.0,
        local_mem_kb=64.0,
        main_mem_gb=3.0,
        tdp_watt=250.0,
        released="Jan 2012",
        warp_size=64,
        launch_overhead_us=12.0,
        compute_efficiency=0.33,  # GCN
    ),
}


def get_platform(name: str) -> DeviceSpec:
    """Look up a Table III platform by key (case-insensitive)."""
    key = name.lower()
    if key not in PLATFORMS:
        raise ValueError(f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}")
    return PLATFORMS[key]
