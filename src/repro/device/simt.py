"""Lock-step SIMT work-group interpreter.

Device kernels in :mod:`repro.kernels` are written against this API: every
value is a *lane vector* (one element per thread of the work group), control
flow uses :meth:`WorkGroup.select` (predication — how SIMT hardware actually
executes divergent branches), and cross-lane communication goes through
:class:`~repro.device.memory.LocalMemory` with explicit :meth:`barrier`
calls. The interpreter executes the same data movement a GPU work group
would, while recording the costs that matter on real hardware: barrier
counts, divergent predications and bank-conflict serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.memory import LocalMemory
from repro.utils.validation import check_positive_int


@dataclass
class SimtStats:
    """Instrumentation collected while a work group executes."""

    barriers: int = 0
    divergent_selects: int = 0
    uniform_selects: int = 0
    lane_ops: int = 0
    local_access_cycles: int = 0
    local_conflicted: int = 0
    atomic_ops: int = 0

    def merge(self, other: "SimtStats") -> None:
        self.barriers += other.barriers
        self.divergent_selects += other.divergent_selects
        self.uniform_selects += other.uniform_selects
        self.lane_ops += other.lane_ops
        self.local_access_cycles += other.local_access_cycles
        self.local_conflicted += other.local_conflicted
        self.atomic_ops += other.atomic_ops


class WorkGroup:
    """One work group of ``size`` lock-step threads.

    Parameters
    ----------
    size:
        number of threads (the paper uses 512-1024 per group — one particle
        per thread, one sub-filter per group).
    group_id:
        this group's index within the launch grid.
    n_banks:
        local-memory banks (32 on the paper's NVIDIA parts).
    """

    def __init__(self, size: int, group_id: int = 0, n_banks: int = 32, warp_size: int = 32):
        self.size = check_positive_int(size, "size")
        self.group_id = int(group_id)
        self.n_banks = int(n_banks)
        self.warp_size = int(warp_size)
        self.lane = np.arange(size)
        self.stats = SimtStats()
        self._locals: list[LocalMemory] = []

    # -- memory ------------------------------------------------------------
    def local_array(self, shape, dtype=np.float64) -> LocalMemory:
        mem = LocalMemory(shape, dtype=dtype, n_banks=self.n_banks)
        self._locals.append(mem)
        return mem

    def barrier(self) -> None:
        """Work-group barrier; folds local-memory billing into the stats."""
        self.stats.barriers += 1
        self._collect_local()

    def _collect_local(self) -> None:
        for mem in self._locals:
            self.stats.local_access_cycles += mem.access_cycles
            self.stats.local_conflicted += mem.conflicted_accesses
            mem.access_cycles = 0
            mem.conflicted_accesses = 0

    # -- lane-level compute ----------------------------------------------------
    def op(self, n: int = 1) -> None:
        """Bill *n* lane-ops across the whole group (arith done in NumPy)."""
        self.stats.lane_ops += n * self.size

    def select(self, cond: np.ndarray, if_true: np.ndarray, if_false: np.ndarray) -> np.ndarray:
        """Predicated selection — the SIMT execution of an if/else.

        Divergence (some lanes true, some false) costs both paths on real
        hardware; we record whether this select diverged.
        """
        cond = np.asarray(cond, dtype=bool)
        if cond.all() or (~cond).all():
            self.stats.uniform_selects += 1
        else:
            self.stats.divergent_selects += 1
        self.op()
        return np.where(cond, if_true, if_false)

    def atomic_add_scalar(self, mem: LocalMemory, index: int, cond: np.ndarray) -> np.ndarray:
        """Atomic fetch-and-add of 1 at mem[index] for every lane with cond.

        Returns each participating lane's ticket (the pre-increment value it
        observed); non-participating lanes get -1. Atomics on the same
        address serialize, so the cost is the number of participants.
        """
        cond = np.asarray(cond, dtype=bool)
        n = int(cond.sum())
        self.stats.atomic_ops += n
        base = int(mem.data[index])
        tickets = np.full(self.size, -1, dtype=np.int64)
        tickets[cond] = base + np.arange(n)
        mem.data[index] = base + n
        return tickets

    # -- convenience ------------------------------------------------------------
    def finalize(self) -> SimtStats:
        self._collect_local()
        return self.stats
