"""Kernel abstraction: launch a work-item program over a grid of work groups.

A kernel body is a callable ``body(wg, global_mem, group_id, **args)``
operating on one :class:`~repro.device.simt.WorkGroup`. ``launch_kernel``
runs every group (sequentially — the simulator models cost, the host CPU
provides the arithmetic) and aggregates the per-group statistics, which can
then be priced by :class:`~repro.device.costmodel.CostModel`.

:func:`validate` is the differential harness over a registered
:class:`~repro.kernels.registry.KernelDef`: it runs the work-group form on a
:class:`WorkGroup`, checks bit-parity against the batch form, and
cross-checks the measured :class:`SimtStats` against the kernel's declared
``CostSig`` prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.device.memory import GlobalMemory
from repro.device.simt import SimtStats, WorkGroup
from repro.utils.validation import check_positive_int


@dataclass
class Kernel:
    """A named device kernel."""

    name: str
    body: Callable


@dataclass
class LaunchResult:
    """Aggregated execution record of one kernel launch."""

    n_groups: int
    group_size: int
    stats: SimtStats
    global_read_transactions: int
    global_write_transactions: int
    global_bytes_read: int
    global_bytes_written: int


def launch_kernel(
    kernel: Kernel,
    n_groups: int,
    group_size: int,
    global_arrays: dict[str, np.ndarray],
    warp_size: int = 32,
    n_banks: int = 32,
    **args,
) -> tuple[dict[str, np.ndarray], LaunchResult]:
    """Execute *kernel* over ``n_groups`` work groups of ``group_size``.

    ``global_arrays`` maps names to host arrays; each is wrapped in a
    transaction-counting :class:`GlobalMemory`. Returns the (mutated) arrays
    and the aggregated launch statistics.
    """
    check_positive_int(n_groups, "n_groups")
    check_positive_int(group_size, "group_size")
    mems = {k: GlobalMemory(v, warp_size=warp_size) for k, v in global_arrays.items()}
    total = SimtStats()
    for g in range(n_groups):
        wg = WorkGroup(group_size, group_id=g, n_banks=n_banks, warp_size=warp_size)
        kernel.body(wg, mems, g, **args)
        total.merge(wg.finalize())
    result = LaunchResult(
        n_groups=n_groups,
        group_size=group_size,
        stats=total,
        global_read_transactions=sum(m.read_transactions for m in mems.values()),
        global_write_transactions=sum(m.write_transactions for m in mems.values()),
        global_bytes_read=sum(m.bytes_read for m in mems.values()),
        global_bytes_written=sum(m.bytes_written for m in mems.values()),
    )
    return {k: m.data for k, m in mems.items()}, result


# ---------------------------------------------------------------------------
# Differential validation of registered kernels
# ---------------------------------------------------------------------------


@dataclass
class ValidationReport:
    """Outcome of one :func:`validate` run over a registered kernel."""

    kernel: str
    n: int
    group_size: int
    parity_ok: bool
    barriers_ok: bool
    work_ok: bool
    measured: SimtStats | None = None
    predicted_barriers: int = 0
    predicted_work: float = 0.0
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.parity_ok and self.barriers_ok and self.work_ok

    def raise_if_failed(self) -> "ValidationReport":
        if not self.ok:
            raise AssertionError(f"kernel {self.kernel!r} validation failed: " + "; ".join(self.messages))
        return self


def measured_group_work(stats: SimtStats) -> float:
    """The simulator's per-group work total comparable to a ``CostSig``:
    lane-ops plus local-memory access cycles plus serialized atomics."""
    return float(stats.lane_ops + stats.local_access_cycles + stats.atomic_ops)


def validate(kernel_def, n: int = 128, seed: int = 0) -> ValidationReport:
    """Differentially validate one registered kernel at problem size *n*.

    Runs the batch and work-group forms on identical inputs drawn from a
    seeded generator, applies the kernel's own ``compare`` (bit-parity by
    default), and cross-checks the measured :class:`SimtStats` against the
    declared ``CostSig``:

    - barriers: ``|measured - predicted| <= max(2, 0.25 * predicted)``
      (skipped when the kernel marks its barrier count data-dependent),
    - work: measured lane-ops + local cycles + atomics within a factor of
      ``kernel_def.work_tolerance`` of the predicted per-group
      ``local_ops + flops``.

    Nothing is raised — the report collects every failure; tests assert
    ``report.ok``.
    """
    if not kernel_def.validatable:
        raise ValueError(f"kernel {kernel_def.name!r} does not carry the validation protocol")
    rng = np.random.default_rng(seed)
    inputs = kernel_def.make_inputs(rng, n)
    params = kernel_def.make_params(n)
    workload = kernel_def.workload(params)

    expected = kernel_def.run_batch(inputs)
    wg = WorkGroup(params.group_size_)
    got = kernel_def.run_workgroup(wg, inputs)
    stats = wg.finalize()

    report = ValidationReport(
        kernel=kernel_def.name,
        n=n,
        group_size=params.group_size_,
        parity_ok=True,
        barriers_ok=True,
        work_ok=True,
        measured=stats,
    )
    try:
        kernel_def.compare(expected, got, inputs)
    except AssertionError as exc:
        report.parity_ok = False
        report.messages.append(f"parity: {exc}")

    report.predicted_barriers = workload.syncs_per_group
    if kernel_def.check_barriers:
        tol = max(2.0, 0.25 * workload.syncs_per_group)
        if abs(stats.barriers - workload.syncs_per_group) > tol:
            report.barriers_ok = False
            report.messages.append(
                f"barriers: measured {stats.barriers}, predicted {workload.syncs_per_group} (tol {tol:g})"
            )

    # Per-group work: the CostSig terms are device-wide, the harness runs one
    # group, so divide by n_groups.
    predicted = (workload.local_ops + workload.flops) / max(workload.n_groups, 1)
    report.predicted_work = predicted
    if predicted > 0:
        measured = measured_group_work(stats)
        tol = kernel_def.work_tolerance
        if not (predicted / tol <= measured <= predicted * tol):
            report.work_ok = False
            report.messages.append(
                f"work: measured {measured:g} outside [{predicted / tol:g}, {predicted * tol:g}] "
                f"(predicted {predicted:g}, tolerance x{tol:g})"
            )
    return report
