"""Kernel abstraction: launch a work-item program over a grid of work groups.

A kernel body is a callable ``body(wg, global_mem, group_id, **args)``
operating on one :class:`~repro.device.simt.WorkGroup`. ``launch_kernel``
runs every group (sequentially — the simulator models cost, the host CPU
provides the arithmetic) and aggregates the per-group statistics, which can
then be priced by :class:`~repro.device.costmodel.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.device.memory import GlobalMemory
from repro.device.simt import SimtStats, WorkGroup
from repro.utils.validation import check_positive_int


@dataclass
class Kernel:
    """A named device kernel."""

    name: str
    body: Callable


@dataclass
class LaunchResult:
    """Aggregated execution record of one kernel launch."""

    n_groups: int
    group_size: int
    stats: SimtStats
    global_read_transactions: int
    global_write_transactions: int
    global_bytes_read: int
    global_bytes_written: int


def launch_kernel(
    kernel: Kernel,
    n_groups: int,
    group_size: int,
    global_arrays: dict[str, np.ndarray],
    warp_size: int = 32,
    n_banks: int = 32,
    **args,
) -> tuple[dict[str, np.ndarray], LaunchResult]:
    """Execute *kernel* over ``n_groups`` work groups of ``group_size``.

    ``global_arrays`` maps names to host arrays; each is wrapped in a
    transaction-counting :class:`GlobalMemory`. Returns the (mutated) arrays
    and the aggregated launch statistics.
    """
    check_positive_int(n_groups, "n_groups")
    check_positive_int(group_size, "group_size")
    mems = {k: GlobalMemory(v, warp_size=warp_size) for k, v in global_arrays.items()}
    total = SimtStats()
    for g in range(n_groups):
        wg = WorkGroup(group_size, group_id=g, n_banks=n_banks, warp_size=warp_size)
        kernel.body(wg, mems, g, **args)
        total.merge(wg.finalize())
    result = LaunchResult(
        n_groups=n_groups,
        group_size=group_size,
        stats=total,
        global_read_transactions=sum(m.read_transactions for m in mems.values()),
        global_write_transactions=sum(m.write_transactions for m in mems.values()),
        global_bytes_read=sum(m.bytes_read for m in mems.values()),
        global_bytes_written=sum(m.bytes_written for m in mems.values()),
    )
    return {k: m.data for k, m in mems.items()}, result
