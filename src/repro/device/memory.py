"""Memory models: global-memory coalescing and local-memory bank conflicts.

GPGPU global memory delivers peak bandwidth only when the threads of a warp
access addresses that fall into few 128-byte segments (coalescing); local
(shared) memory is banked, and lanes hitting the same bank with different
addresses serialize. These two effects drive most of the paper's kernel
design choices (AoS layout, non-contiguous *reads* over writes, bank-conflict
avoiding scan), so the simulator counts both.
"""

from __future__ import annotations

import numpy as np

SEGMENT_BYTES = 128  # coalescing granularity


def coalesced_transactions(indices: np.ndarray, itemsize: int, segment_bytes: int = SEGMENT_BYTES) -> int:
    """Number of memory transactions a warp needs for the given element
    indices: one per distinct ``segment_bytes`` segment touched."""
    if np.size(indices) == 0:
        return 0
    addr = np.asarray(indices, dtype=np.int64) * itemsize
    return int(np.unique(addr // segment_bytes).size)


def bank_conflict_factor(indices: np.ndarray, n_banks: int = 32, itemsize: int = 4) -> int:
    """Serialization factor of one local-memory access by a warp.

    Each 4-byte word lives in bank ``(addr/4) % n_banks``. Lanes hitting the
    same bank at *different* word addresses serialize; same-word broadcast is
    free. Returns the max per-bank count of distinct words (1 = conflict-free).
    """
    if np.size(indices) == 0:
        return 1
    words = (np.asarray(indices, dtype=np.int64) * itemsize) // 4
    banks = words % n_banks
    worst = 1
    for b in np.unique(banks):
        worst = max(worst, int(np.unique(words[banks == b]).size))
    return worst


class GlobalMemory:
    """A flat global array that counts warp-level transactions.

    Reads/writes take explicit element indices per lane (SIMT scatter/
    gather); the counter model assumes one warp per access call, which is how
    the work-group interpreter invokes it.
    """

    def __init__(self, data: np.ndarray, warp_size: int = 32):
        self.data = np.asarray(data)
        self.warp_size = int(warp_size)
        self.read_transactions = 0
        self.write_transactions = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _count(self, indices: np.ndarray) -> int:
        total = 0
        idx = np.asarray(indices).reshape(-1)
        for w in range(0, idx.size, self.warp_size):
            total += coalesced_transactions(idx[w : w + self.warp_size], self.data.itemsize)
        return total

    def read(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        self.read_transactions += self._count(idx)
        self.bytes_read += idx.size * self.data.itemsize
        return self.data[idx]

    def write(self, indices: np.ndarray, values: np.ndarray) -> None:
        idx = np.asarray(indices)
        self.write_transactions += self._count(idx)
        self.bytes_written += idx.size * self.data.itemsize
        self.data[idx] = values


class LocalMemory:
    """Per-work-group scratchpad that counts bank-conflict serialization.

    ``gather``/``scatter`` model one warp-wide access; plain ``[]`` access is
    provided for setup code that is not part of the modelled kernel.
    """

    def __init__(self, shape, dtype=np.float64, n_banks: int = 32):
        self.data = np.zeros(shape, dtype=dtype)
        self.n_banks = int(n_banks)
        self.access_cycles = 0
        self.conflicted_accesses = 0
        self.accesses = 0

    def _bill(self, indices: np.ndarray) -> None:
        factor = bank_conflict_factor(indices, self.n_banks, itemsize=max(self.data.itemsize, 4))
        self.access_cycles += factor
        self.accesses += 1
        if factor > 1:
            self.conflicted_accesses += 1

    def gather(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        self._bill(idx)
        return self.data[idx]

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> None:
        idx = np.asarray(indices)
        self._bill(idx)
        self.data[idx] = values

    def __getitem__(self, key):
        return self.data[key]

    def __setitem__(self, key, value):
        self.data[key] = value

    @property
    def conflict_rate(self) -> float:
        return self.conflicted_accesses / self.accesses if self.accesses else 0.0
