"""Platform-scale extensions: embedded devices and multi-node clusters.

Section IX names two future scaling directions: "down to real-time
applications on embedded systems (with GPGPU cores), or up to ... clusters.
Each platform scale direction will present new challenges to performance
portability." This module implements both as cost-model extensions:

- embedded platform sheets (2012-era mobile SoC class) added to the registry,
- :class:`ClusterSpec` + :func:`cluster_round_cost`: the sub-filter network
  partitioned into contiguous blocks across nodes, with the exchange edges
  cut by the partition crossing the interconnect and the global estimate
  reduced by a log-depth allreduce.

The distributed algorithm's locality is what makes this work: a ring
partition cuts exactly two edges per node regardless of network size, so the
inter-node traffic per round is *constant* while the work per node shrinks —
near-linear scaling. All-to-All, by contrast, must pool globally every round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.device.costmodel import FilterRoundCost, filter_round_cost
from repro.device.spec import DeviceSpec
from repro.utils.validation import check_positive_int

#: Embedded-class platforms (the "scale down" direction).
EMBEDDED_PLATFORMS: dict[str, DeviceSpec] = {
    "embedded-soc-gpu": DeviceSpec(
        name="Embedded SoC GPGPU (Tegra-class, 2012)",
        device_type="gpu",
        n_sm=2,
        core_clock_ghz=0.52,
        sp_gflops=50.0,
        mem_bandwidth_gbs=6.4,
        local_mem_kb=16.0,
        main_mem_gb=1.0,
        tdp_watt=5.0,
        released="2012",
        warp_size=32,
        max_groups_per_sm=4,
        launch_overhead_us=20.0,
        host_link_gbs=None,  # unified memory on the SoC
    ),
    "embedded-arm-cpu": DeviceSpec(
        name="Embedded quad ARM Cortex-A9",
        device_type="cpu",
        n_sm=4,
        core_clock_ghz=1.3,
        sp_gflops=10.4,
        mem_bandwidth_gbs=4.3,
        local_mem_kb=32.0,
        main_mem_gb=1.0,
        tdp_watt=2.5,
        released="2012",
        warp_size=2,  # NEON, 2-wide effective SP
        max_groups_per_sm=1,
        launch_overhead_us=2.0,
        rng_efficiency=0.4,
        host_link_gbs=None,
    ),
}


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of many-core nodes (the "scale up" direction)."""

    node: DeviceSpec
    n_nodes: int
    interconnect_gbs: float = 4.0  # 2012-era QDR InfiniBand ~4 GB/s
    interconnect_latency_us: float = 2.0

    def __post_init__(self):
        check_positive_int(self.n_nodes, "n_nodes")
        if self.interconnect_gbs <= 0:
            raise ValueError("interconnect_gbs must be positive")


def _cut_edges_per_node(scheme: str, n_filters_per_node: int, n_nodes: int) -> float:
    """Exchange edges crossing a contiguous block partition, per node."""
    if n_nodes == 1:
        return 0.0
    if scheme in ("none",):
        return 0.0
    if scheme == "ring":
        return 2.0  # each block has two boundary neighbours
    if scheme == "torus":
        # Row-block partition of a near-square torus: the cut is two grid
        # rows per node boundary ~ 2 * sqrt(total filters).
        total = n_filters_per_node * n_nodes
        return 2.0 * math.sqrt(total)
    if scheme == "all-to-all":
        # The pool is global: every node's contributions go everywhere.
        return float(n_filters_per_node * (n_nodes - 1))
    raise ValueError(f"unknown scheme {scheme!r}")


def cluster_round_cost(
    cluster: ClusterSpec,
    n_particles: int,
    n_filters: int,
    state_dim: int,
    n_exchange: int = 1,
    scheme: str = "ring",
    resampler: str = "rws",
    dtype_bytes: int = 4,
) -> FilterRoundCost:
    """Per-round cost of the distributed filter spread over a cluster.

    ``n_filters`` is the *global* sub-filter count, split evenly over nodes;
    nodes advance in parallel, so the round time is one node's device time
    plus the inter-node exchange and the estimate allreduce.
    """
    if n_filters % cluster.n_nodes:
        raise ValueError(f"n_filters ({n_filters}) must divide evenly over {cluster.n_nodes} nodes")
    per_node = n_filters // cluster.n_nodes
    cost = filter_round_cost(
        cluster.node, n_particles, per_node, state_dim,
        n_exchange=n_exchange, scheme=scheme, resampler=resampler, dtype_bytes=dtype_bytes,
    )
    # Inter-node particle exchange over the cut edges.
    t = n_exchange
    bw = cluster.interconnect_gbs * 1e9
    lat = cluster.interconnect_latency_us * 1e-6
    if t > 0 and cluster.n_nodes > 1 and scheme != "none":
        cut = _cut_edges_per_node(scheme, per_node, cluster.n_nodes)
        msg_bytes = cut * t * (state_dim + 1) * dtype_bytes
        n_peers = 2 if scheme in ("ring", "torus") else cluster.n_nodes - 1
        cost.seconds["network"] = n_peers * lat + msg_bytes / bw
    else:
        cost.seconds["network"] = 0.0
    # Global estimate allreduce: log-depth tree over the nodes.
    if cluster.n_nodes > 1:
        rounds = math.ceil(math.log2(cluster.n_nodes))
        cost.seconds["network"] += rounds * (lat + (state_dim + 1) * dtype_bytes / bw)
    return cost


def cluster_speedup(
    cluster: ClusterSpec,
    n_particles: int,
    n_filters: int,
    state_dim: int,
    **kwargs,
) -> float:
    """Speedup of the cluster over one node for the same global problem."""
    single = ClusterSpec(node=cluster.node, n_nodes=1,
                         interconnect_gbs=cluster.interconnect_gbs,
                         interconnect_latency_us=cluster.interconnect_latency_us)
    t1 = cluster_round_cost(single, n_particles, n_filters, state_dim, **kwargs).total_seconds
    tn = cluster_round_cost(cluster, n_particles, n_filters, state_dim, **kwargs).total_seconds
    return t1 / tn
