"""Analytic cost model: kernel workloads -> seconds on a Table III platform.

The model prices a kernel the way one reasons about GPU performance by hand:

- compute-bound time = flops / attained FLOP rate,
- memory-bound time = bytes / attained bandwidth, derated by the coalescing
  quality of the access pattern,
- local-memory time = lane-ops / local-op rate,
- serialized work (atomic worklists, the tail of Vose's table build) runs one
  lane per group,
- barriers and kernel launches add fixed latencies,
- a launch that cannot fill the device (few groups / small groups) only
  reaches a proportional fraction of every throughput term.

Compute/local work overlaps global traffic (`max`), serial work and
synchronization do not (`+`). These are exactly the quantities the paper's
Section VI optimizations manipulate (AoS layout, non-contiguous reads over
writes, bank-conflict-free scans), so scaling m, N or the state dimension
reproduces the shapes of Figs. 3-5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.device.spec import DeviceSpec

_BARRIER_CYCLES = 40.0


@dataclass(frozen=True)
class KernelWorkload:
    """Device-wide work of one kernel launch."""

    name: str
    n_groups: int
    group_size: int
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    read_coalescing: float = 1.0  # fraction of peak bandwidth for the reads
    write_coalescing: float = 1.0
    local_ops: float = 0.0  # parallel lane-ops in local memory
    serial_ops: float = 0.0  # per-group serialized ops (run on one lane)
    syncs_per_group: int = 0
    launches: int = 1


@dataclass
class FilterRoundCost:
    """Per-kernel seconds for one filtering round on one platform."""

    device: DeviceSpec
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def update_rate_hz(self) -> float:
        return 1.0 / self.total_seconds if self.total_seconds > 0 else float("inf")

    def fractions(self) -> dict[str, float]:
        total = self.total_seconds
        return {k: v / total for k, v in self.seconds.items()} if total > 0 else {}


class CostModel:
    """Prices :class:`KernelWorkload` objects on one :class:`DeviceSpec`."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # -- primitive -----------------------------------------------------------
    def utilization(self, n_groups: int, group_size: int) -> float:
        """Fraction of peak throughput a launch of this shape can reach.

        The device needs ~4 warps in flight per SM to hide latency; fewer
        threads scale the attainable rate down linearly.
        """
        d = self.device
        threads = n_groups * group_size
        needed = d.n_sm * d.warp_size * 4
        return min(1.0, threads / needed)

    def kernel_time(self, w: KernelWorkload, rng_kernel: bool = False) -> float:
        d = self.device
        util = self.utilization(w.n_groups, w.group_size)
        compute_rate = d.sp_gflops * 1e9 * d.compute_efficiency * util
        if rng_kernel:
            compute_rate *= d.rng_efficiency
        bw = d.mem_bandwidth_gbs * 1e9 * d.mem_efficiency * util
        local_rate = d.local_ops_per_second * util

        compute_t = w.flops / compute_rate if w.flops else 0.0
        local_t = w.local_ops / local_rate if w.local_ops else 0.0
        mem_t = 0.0
        if w.bytes_read:
            mem_t += w.bytes_read / (bw * max(w.read_coalescing, 1e-3))
        if w.bytes_written:
            mem_t += w.bytes_written / (bw * max(w.write_coalescing, 1e-3))

        # Serialized per-group work: one lane per resident group makes progress.
        serial_t = 0.0
        if w.serial_ops:
            resident = min(w.n_groups, d.peak_concurrent_groups)
            serial_t = w.serial_ops / (resident * d.core_clock_ghz * 1e9)

        # Barriers: every group pays them; groups beyond residency queue in waves.
        sync_t = 0.0
        if w.syncs_per_group:
            waves = math.ceil(w.n_groups / d.peak_concurrent_groups)
            sync_t = w.syncs_per_group * waves * _BARRIER_CYCLES / (d.core_clock_ghz * 1e9)

        launch_t = w.launches * d.launch_overhead_us * 1e-6
        return (max(compute_t + local_t, mem_t) + serial_t + sync_t + launch_t) * d.runtime_overhead

    def kernel_def_time(self, kdef, params) -> float:
        """Price a registered kernel at the given :class:`CostParams` shape.

        *kdef* is a :class:`repro.kernels.registry.KernelDef`; its declared
        ``CostSig`` supplies both the workload and the RNG-efficiency flag,
        so the registry is the single source of per-kernel formulas.
        """
        return self.kernel_time(kdef.workload(params), rng_kernel=kdef.cost.rng_kernel)


# ---------------------------------------------------------------------------
# Filter-round workload builder
# ---------------------------------------------------------------------------

RNG_FLOPS_PER_VALUE = 30.0  # MTGP state update + tempering + Box-Muller share
_RNG_FLOPS_PER_VALUE = RNG_FLOPS_PER_VALUE  # backwards-compatible alias


def model_flops_per_particle(state_dim: int) -> float:
    """Sampling + weighting flops for the robotic-arm model at a given state
    dimension: per-joint sincos + 3x3 rotation composition dominate, plus the
    per-measurement-dimension Gaussian weight terms."""
    n_joints = max(state_dim - 4, 1)
    return 250.0 * n_joints + 80.0


def scattered_aos_efficiency(struct_bytes: float, segment_bytes: float = 128.0) -> float:
    """Bandwidth efficiency of randomly scattered Array-of-Structures reads.

    Each gathered particle pulls whole cache segments; the useful fraction is
    ``struct_bytes / (ceil(struct_bytes/segment) * segment)``. Small structs
    waste most of each segment (the reason the paper packs elements into
    larger aligned structures); large structs approach full bandwidth.
    """
    if struct_bytes <= 0:
        return 1.0
    segments = math.ceil(struct_bytes / segment_bytes)
    return struct_bytes / (segments * segment_bytes)


def filter_round_cost(
    device: DeviceSpec,
    n_particles: int,
    n_filters: int,
    state_dim: int,
    n_exchange: int = 1,
    scheme: str = "ring",
    resampler: str = "rws",
    dtype_bytes: int = 4,
) -> FilterRoundCost:
    """Per-kernel cost of one distributed-filter round (the paper's six
    kernels) for the robotic-arm model.

    Every stage workload is derived from the matching kernel's registered
    ``CostSig`` (see :mod:`repro.kernels.registry`) evaluated at this round's
    shape — the formulas live with the kernels, not here.
    """
    from repro.kernels.registry import CostParams, default_registry

    m, N, d, B = n_particles, n_filters, state_dim, dtype_bytes
    deg = {"ring": 2, "torus": 4, "all-to-all": 1, "none": 0}.get(scheme, 2)
    t = n_exchange
    reg = default_registry()
    cm = CostModel(device)
    out = FilterRoundCost(device=device)
    base = CostParams(m=m, state_dim=d, n_groups=N, dtype_bytes=B)

    # 1) PRNG kernel: d normals per particle, written to global memory.
    out.seconds["rand"] = cm.kernel_def_time(reg.get("rand"), base)

    # 2) Sampling + importance weighting (AoS state in global memory).
    out.seconds["sampling"] = cm.kernel_def_time(reg.get("sampling"), base)

    # 3) Local bitonic sort of (weight, index) in local memory, then apply the
    #    permutation to the state vectors: non-contiguous reads, contiguous
    #    writes (Section VI-C).
    out.seconds["sort"] = cm.kernel_def_time(reg.get("sort"), base)

    # 4) Global estimate: rows are sorted, only the final reduction rounds run.
    est_params = CostParams(
        m=m,
        state_dim=d,
        n_groups=max(N // 256, 1),
        group_size=256,
        n_filters=N,
        dtype_bytes=B,
    )
    out.seconds["estimate"] = cm.kernel_def_time(reg.get("estimate"), est_params)

    # 5) Particle exchange through cached global memory.
    if t == 0 or scheme == "none":
        out.seconds["exchange"] = 0.0
    elif scheme == "all-to-all":
        # Two phases: all supply to the pool, a top-t selection, all read back.
        exch = replace(base, group_size=max(t, 1), n_exchange=t, degree=deg)
        out.seconds["exchange"] = cm.kernel_def_time(reg.get("route_pooled"), exch)
    else:
        exch = replace(base, group_size=max(deg * t, 1), n_exchange=t, degree=deg)
        out.seconds["exchange"] = cm.kernel_def_time(reg.get("route_pairwise"), exch)

    # 6) Local resampling over m + deg*t pooled particles.
    if resampler not in ("rws", "vose", "metropolis"):
        raise ValueError(f"unknown resampler {resampler!r} for cost model")
    res_params = replace(base, pool=m + deg * t, n_exchange=t, degree=deg)
    out.seconds["resample"] = cm.kernel_def_time(reg.get(resampler), res_params)
    return out


def centralized_resample_time(device: DeviceSpec, n: int, resampler: str) -> float:
    """Sequential (one core, vectorized-C) resampling time — Fig. 5's
     'C (centr.)' lines. RWS pays a log(n) binary search per sample; Vose
    pays O(1) per sample after an O(n) table build."""
    rate = device.core_clock_ghz * 1e9 * 1.5  # scalar ILP ~1.5 ops/cycle
    if resampler == "rws":
        ops = n * 4.0 + n * math.log2(max(n, 2)) * 3.0 + n * 8.0  # scan + search + reorder
    elif resampler == "vose":
        ops = n * 12.0 + n * 5.0 + n * 8.0  # table build + O(1) draws + reorder
    else:
        raise ValueError(f"unknown resampler {resampler!r}")
    return ops / rate


def sequential_round_time(device: DeviceSpec, n_particles: int, state_dim: int) -> float:
    """One full centralized round on a single core (the paper's C reference,
    with SIMD only in the PRNG/Box-Muller as stated in Section VII-B)."""
    n, d = n_particles, state_dim
    # -O3 compiled C with SIMD PRNG/Box-Muller: ~6 useful ops/cycle on one core.
    rate = device.core_clock_ghz * 1e9 * 6.0
    rng_ops = n * d * _RNG_FLOPS_PER_VALUE / 4.0  # SIMD-vectorized PRNG
    model_ops = n * model_flops_per_particle(d) * 1.2  # scalar model code
    estimate_ops = n * (d + 2.0)
    return (rng_ops + model_ops + estimate_ops) / rate + centralized_resample_time(device, n, "vose")


# ---------------------------------------------------------------------------
# Host<->device transfers and data-layout variants (Section VI discussions)
# ---------------------------------------------------------------------------


def host_transfer_time(device: DeviceSpec, n_bytes: float) -> float:
    """One host<->device copy of *n_bytes* over the PCIe-class link.

    Unified-memory platforms (the CPUs — they *are* the host) transfer for
    free: the paper contrasts exactly this against discrete GPUs, whose "I/O
    channel between host and device memory is often a bottleneck".
    """
    if device.host_link_gbs is None:
        return 0.0
    return device.host_link_latency_us * 1e-6 + n_bytes / (device.host_link_gbs * 1e9)


def per_round_io_time(device: DeviceSpec, state_dim: int, dtype_bytes: int = 4) -> float:
    """The paper's strategy: only measurement data down + estimate up."""
    meas_bytes = (state_dim - 2) * dtype_bytes  # robot arm measurement vector
    est_bytes = state_dim * dtype_bytes
    return host_transfer_time(device, meas_bytes) + host_transfer_time(device, est_bytes)


def host_resampling_round_overhead(
    device: DeviceSpec,
    total_particles: int,
    state_dim: int,
    resample_period: int = 1,
    dtype_bytes: int = 4,
    host_clock_ghz: float = 3.0,
) -> float:
    """Amortized per-round cost of the related-work [2] strategy: resample on
    the *host* CPU — weights cross to the host, survivor descriptions cross
    back, and the resample itself runs sequentially.

    ``resample_period`` = resample every k rounds ("fast only if resampling
    is not needed very often"). Returns seconds per round, amortized.
    """
    if resample_period < 1:
        raise ValueError(f"resample_period must be >= 1, got {resample_period}")
    P = total_particles
    weights_down = host_transfer_time(device, P * dtype_bytes)
    survivors_up = host_transfer_time(device, P * 4)  # one index per survivor
    host_rate = host_clock_ghz * 1e9 * 1.5
    host_resample = (P * 4.0 + P * math.log2(max(P, 2)) * 3.0) / host_rate
    device_reorder = 0.0
    if device.host_link_gbs is not None:
        # Applying the survivor permutation on the device afterwards.
        bw = device.mem_bandwidth_gbs * 1e9 * device.mem_efficiency
        device_reorder = (P * state_dim * dtype_bytes) * (1.0 / (bw * scattered_aos_efficiency(state_dim * dtype_bytes)) + 1.0 / bw)
    return (weights_down + survivors_up + host_resample + device_reorder) / resample_period


def filter_round_cost_with_strategy(
    device: DeviceSpec,
    n_particles: int,
    n_filters: int,
    state_dim: int,
    layout: str = "aos",
    resampling_location: str = "device",
    resample_period: int = 1,
    **kwargs,
) -> FilterRoundCost:
    """Round cost including data-layout and resampling-placement choices.

    ``layout='soa'`` models Structure-of-Arrays particle storage: the
    scattered permutation/reorder gathers touch one 4-byte element per
    segment instead of a whole particle struct, which is why the paper
    stores particles in AoS format once the struct exceeds a few bytes.
    ``resampling_location='host'`` replaces on-device resampling with the
    related-work transfer-to-host strategy, amortized over
    ``resample_period`` rounds.
    """
    if layout not in ("aos", "soa"):
        raise ValueError(f"layout must be 'aos' or 'soa', got {layout!r}")
    if resampling_location not in ("device", "host"):
        raise ValueError(f"resampling_location must be 'device' or 'host', got {resampling_location!r}")
    dtype_bytes = kwargs.get("dtype_bytes", 4)
    cost = filter_round_cost(device, n_particles, n_filters, state_dim, **kwargs)
    cost.seconds["io"] = per_round_io_time(device, state_dim, dtype_bytes)
    if layout == "soa":
        # Scattered gathers now achieve element-granularity efficiency; scale
        # the sort/resample reorder-dominated kernels by the efficiency ratio.
        aos_eff = scattered_aos_efficiency(state_dim * dtype_bytes)
        soa_eff = scattered_aos_efficiency(dtype_bytes)
        penalty = aos_eff / soa_eff
        for kernel in ("sort", "resample"):
            cost.seconds[kernel] *= penalty
    if resampling_location == "host":
        cost.seconds["resample"] = host_resampling_round_overhead(
            device, n_particles * n_filters, state_dim, resample_period, dtype_bytes
        )
    return cost
