"""Esthera-Py: distributed particle filters for many-core architectures.

A from-scratch Python reproduction of Chitchian, van Amesfoort, Simonetto,
Keviczky & Sips, "Adapting Particle Filter Algorithms to Many-Core
Architectures" (IPPS 2013): a network of small sub-filters with local
resampling and neighbour particle exchange, a robotic-arm tracking
application, RWS vs. Vose resampling, and a simulated many-core device model
standing in for the paper's CUDA/OpenCL platforms.

Quickstart::

    from repro import DistributedParticleFilter, DistributedFilterConfig
    from repro.models import RobotArmModel, lemniscate, simulate_arm_tracking
    from repro.core import run_filter
    from repro.prng import make_rng

    model = RobotArmModel()
    pos, vel = lemniscate(200, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", 42))
    pf = DistributedParticleFilter(
        model, DistributedFilterConfig(n_particles=64, n_filters=64, seed=1)
    )
    result = run_filter(pf, model, truth)
    print(f"mean error {result.mean_error(warmup=20):.3f} m at {result.update_rate_hz:.1f} Hz")
"""

from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    FilterRun,
    run_filter,
)

__version__ = "1.0.0"

__all__ = [
    "CentralizedFilterConfig",
    "CentralizedParticleFilter",
    "DistributedFilterConfig",
    "DistributedParticleFilter",
    "FilterRun",
    "run_filter",
    "__version__",
]
