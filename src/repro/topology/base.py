"""Topology interface and factory."""

from __future__ import annotations

import abc

import numpy as np
import networkx as nx

from repro.utils.validation import check_positive_int


class ExchangeTopology(abc.ABC):
    """A set of neighbour relations between ``n_filters`` sub-filters.

    ``neighbor_table()`` is the device-friendly representation: a dense
    ``(n_filters, max_degree)`` int array padded with ``-1`` so that exchange
    kernels are branch-free gathers.
    """

    name: str = "base"
    #: All-to-All uses pooled exchange semantics instead of pairwise sends.
    pooled: bool = False

    def __init__(self, n_filters: int):
        self.n_filters = check_positive_int(n_filters, "n_filters")

    @abc.abstractmethod
    def neighbors(self, i: int) -> list[int]:
        """Sorted neighbour ids of sub-filter *i* (excluding *i* itself)."""

    @property
    def max_degree(self) -> int:
        return max((len(self.neighbors(i)) for i in range(self.n_filters)), default=0)

    def neighbor_table(self) -> np.ndarray:
        """Dense ``(n_filters, max_degree)`` table padded with -1."""
        deg = self.max_degree
        table = np.full((self.n_filters, deg), -1, dtype=np.int64)
        for i in range(self.n_filters):
            nb = self.neighbors(i)
            table[i, : len(nb)] = nb
        return table

    def as_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.n_filters))
        for i in range(self.n_filters):
            g.add_edges_from((i, j) for j in self.neighbors(i))
        return g

    def validate(self) -> None:
        """Check symmetry and self-loop freedom of the neighbour relation."""
        for i in range(self.n_filters):
            nb = self.neighbors(i)
            if i in nb:
                raise ValueError(f"filter {i} lists itself as neighbour")
            if len(set(nb)) != len(nb):
                raise ValueError(f"filter {i} has duplicate neighbours")
            for j in nb:
                if not 0 <= j < self.n_filters:
                    raise ValueError(f"filter {i} has out-of-range neighbour {j}")
                if i not in self.neighbors(j):
                    raise ValueError(f"edge {i}->{j} is not symmetric")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_filters={self.n_filters})"

    def healed_view(self, dead, bridge: bool = True) -> "ExchangeTopology":
        """The topology with the *dead* sub-filters routed around.

        Dead nodes stay in the graph (indices are stable — they name
        sub-filter slots) but lose all edges, so exchange kernels never
        read from or deliver to them. With ``bridge=True`` each removed
        node's neighbours are stitched into a cycle, preserving
        connectivity: a ring with a dead node heals back into a ring, a
        torus keeps its wrap-around paths. Dead nodes are processed in
        ascending order, and a node's bridge edges are visible when a
        later dead node is removed, so runs of adjacent failures still
        heal through (the chain contracts instead of splitting the graph).
        """
        from repro.topology.custom import GraphTopology

        dead = sorted({int(d) for d in dead})
        for d in dead:
            if not 0 <= d < self.n_filters:
                raise ValueError(f"dead id {d} out of range for {self.n_filters} filters")
        g = self.as_networkx()
        for d in dead:
            nbrs = sorted(g.neighbors(d))
            g.remove_edges_from([(d, v) for v in nbrs])
            if bridge and len(nbrs) >= 2:
                if len(nbrs) == 2:
                    g.add_edge(nbrs[0], nbrs[1])
                else:
                    g.add_edges_from(
                        (nbrs[i], nbrs[(i + 1) % len(nbrs)]) for i in range(len(nbrs))
                    )
        name = getattr(self, "name", "graph")
        return GraphTopology(g, name=f"{name}-healed" if dead else name)


def make_topology(name: str, n_filters: int, **kwargs) -> ExchangeTopology:
    """Factory: ``'ring' | 'torus' | 'all-to-all' | 'none'`` by name."""
    from repro.topology.alltoall import AllToAllTopology
    from repro.topology.custom import GraphTopology
    from repro.topology.ring import RingTopology
    from repro.topology.torus import Torus2DTopology

    key = name.lower().replace("_", "-")
    if key == "ring":
        return RingTopology(n_filters, **kwargs)
    if key in ("torus", "2d-torus", "torus2d"):
        return Torus2DTopology(n_filters, **kwargs)
    if key in ("all-to-all", "alltoall"):
        return AllToAllTopology(n_filters, **kwargs)
    if key in ("none", "isolated"):
        import networkx as nx

        return GraphTopology(nx.empty_graph(n_filters), name="none")
    raise ValueError(f"unknown topology {name!r}; choose ring, torus, all-to-all or none")
