"""All-to-All exchange (Fig. 1a): a shared particle pool.

Every sub-filter supplies its best ``t`` particles to a global pool, then all
sub-filters read back the same ``t`` best particles of the pool. This is the
natural scheme for globally shared memory — and the paper's headline negative
result: feeding identical particles to every sub-filter collapses diversity
and yields the *worst* estimates.
"""

from __future__ import annotations

from repro.topology.base import ExchangeTopology


class AllToAllTopology(ExchangeTopology):
    name = "all-to-all"
    pooled = True

    def neighbors(self, i: int) -> list[int]:
        if not 0 <= i < self.n_filters:
            raise IndexError(f"filter index {i} out of range")
        return [j for j in range(self.n_filters) if j != i]
