"""2D torus topology (Fig. 1c)."""

from __future__ import annotations

import math

from repro.topology.base import ExchangeTopology


def _near_square_factors(n: int) -> tuple[int, int]:
    """Factor n = rows * cols with rows <= cols as close to square as possible."""
    r = int(math.isqrt(n))
    while r > 1 and n % r:
        r -= 1
    return r, n // r


class Torus2DTopology(ExchangeTopology):
    """Sub-filters on a ``rows x cols`` grid with wrap-around links.

    Degree 4 (up/down/left/right). The paper finds the extra connectivity
    wins for *large* networks, where it propagates likely particles faster.

    Parameters
    ----------
    rows, cols:
        optional explicit grid shape; by default the most-square
        factorization of ``n_filters`` is used. A prime ``n_filters``
        degenerates to a 1 x n grid (a ring with doubled links collapsed).
    """

    name = "torus"

    def __init__(self, n_filters: int, rows: int | None = None, cols: int | None = None):
        super().__init__(n_filters)
        if rows is None and cols is None:
            rows, cols = _near_square_factors(n_filters)
        elif rows is None:
            rows = n_filters // cols
        elif cols is None:
            cols = n_filters // rows
        if rows * cols != n_filters:
            raise ValueError(f"rows*cols must equal n_filters: {rows}*{cols} != {n_filters}")
        self.rows, self.cols = int(rows), int(cols)

    def neighbors(self, i: int) -> list[int]:
        if not 0 <= i < self.n_filters:
            raise IndexError(f"filter index {i} out of range")
        r, c = divmod(i, self.cols)
        cand = {
            ((r - 1) % self.rows) * self.cols + c,
            ((r + 1) % self.rows) * self.cols + c,
            r * self.cols + (c - 1) % self.cols,
            r * self.cols + (c + 1) % self.cols,
        }
        cand.discard(i)  # collapses duplicated wrap links on 1- or 2-wide grids
        return sorted(cand)
