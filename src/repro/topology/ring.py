"""Bidirectional ring topology (Fig. 1b)."""

from __future__ import annotations

from repro.topology.base import ExchangeTopology


class RingTopology(ExchangeTopology):
    """Each sub-filter exchanges with its two ring neighbours.

    The paper finds the ring is the best scheme for *small* networks: minimal
    connectivity preserves particle diversity.
    """

    name = "ring"

    def neighbors(self, i: int) -> list[int]:
        if not 0 <= i < self.n_filters:
            raise IndexError(f"filter index {i} out of range")
        n = self.n_filters
        if n == 1:
            return []
        if n == 2:
            return [(i + 1) % 2]
        return sorted({(i - 1) % n, (i + 1) % n})
