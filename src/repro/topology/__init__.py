"""Particle-exchange topologies (Fig. 1 of the paper).

Sub-filters form a network; each round every sub-filter sends its best ``t``
particles to each neighbour. The paper considers All-to-All, Ring and 2D
Torus and finds that lower connectivity preserves diversity (All-to-All is
worst, Ring wins for small networks, Torus for large ones). Arbitrary graphs
are supported through :class:`~repro.topology.custom.GraphTopology` for
ablations.
"""

from repro.topology.base import ExchangeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import Torus2DTopology
from repro.topology.alltoall import AllToAllTopology
from repro.topology.custom import GraphTopology
from repro.topology.base import make_topology
from repro.topology.shards import (
    ShardPlan,
    ShardView,
    make_shard_plan,
    shard_table_view,
)

__all__ = [
    "ExchangeTopology", "RingTopology", "Torus2DTopology",
    "AllToAllTopology", "GraphTopology", "make_topology",
    "ShardPlan", "ShardView", "make_shard_plan", "shard_table_view",
    "resolve_topology",
]


def resolve_topology(spec, n_filters: int) -> ExchangeTopology:
    """Accept a topology name or a pre-built topology, validated against
    *n_filters*. The single entry point every backend uses, so a size
    mismatch fails identically everywhere."""
    if isinstance(spec, ExchangeTopology):
        if spec.n_filters != n_filters:
            raise ValueError(
                f"topology has {spec.n_filters} filters, config says {n_filters}"
            )
        return spec
    return make_topology(str(spec), n_filters)


__all__ = [
    "ExchangeTopology",
    "RingTopology",
    "Torus2DTopology",
    "AllToAllTopology",
    "GraphTopology",
    "make_topology",
    "resolve_topology",
]
