"""Particle-exchange topologies (Fig. 1 of the paper).

Sub-filters form a network; each round every sub-filter sends its best ``t``
particles to each neighbour. The paper considers All-to-All, Ring and 2D
Torus and finds that lower connectivity preserves diversity (All-to-All is
worst, Ring wins for small networks, Torus for large ones). Arbitrary graphs
are supported through :class:`~repro.topology.custom.GraphTopology` for
ablations.
"""

from repro.topology.base import ExchangeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import Torus2DTopology
from repro.topology.alltoall import AllToAllTopology
from repro.topology.custom import GraphTopology
from repro.topology.base import make_topology

__all__ = [
    "ExchangeTopology",
    "RingTopology",
    "Torus2DTopology",
    "AllToAllTopology",
    "GraphTopology",
    "make_topology",
]
