"""Arbitrary exchange graphs via networkx, for topology ablations."""

from __future__ import annotations

import networkx as nx

from repro.topology.base import ExchangeTopology


class GraphTopology(ExchangeTopology):
    """Wrap any undirected networkx graph with nodes ``0..n-1``.

    Enables ablations beyond the paper's three schemes (random regular
    graphs, hypercubes, expanders, ...).
    """

    def __init__(self, graph: nx.Graph, name: str = "graph"):
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("graph nodes must be exactly 0..n-1")
        if any(graph.has_edge(i, i) for i in nodes):
            raise ValueError("self-loops are not allowed")
        super().__init__(len(nodes))
        self.graph = graph
        self.name = name

    def neighbors(self, i: int) -> list[int]:
        if not 0 <= i < self.n_filters:
            raise IndexError(f"filter index {i} out of range")
        return sorted(self.graph.neighbors(i))

    @classmethod
    def random_regular(cls, degree: int, n_filters: int, seed: int = 0) -> "GraphTopology":
        """A random *degree*-regular graph — connectivity between ring (2)
        and torus (4) for the exchange-scheme ablation."""
        g = nx.random_regular_graph(degree, n_filters, seed=seed)
        return cls(nx.convert_node_labels_to_integers(g), name=f"regular-{degree}")

    @classmethod
    def hypercube(cls, dim: int) -> "GraphTopology":
        g = nx.hypercube_graph(dim)
        return cls(nx.convert_node_labels_to_integers(g), name=f"hypercube-{dim}")
