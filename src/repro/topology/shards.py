"""Shard planning: partition the sub-filter graph over workers/hosts.

A :class:`ShardPlan` assigns every sub-filter to a shard and rewrites the
exchange neighbour table from the shard's point of view: a column of a
sub-filter's receive row is **local** when its source lives in the same
shard (the exchange can be satisfied from the worker's own post-sort send
buffer — zero wire bytes) and **cut** otherwise (the particles must
serialize across the shard boundary). Because exchange topologies are
symmetric (``validate`` enforces it), a shard's cut in-edges and cut
out-edges coincide, so the per-round wire traffic of a shard is exactly
``t`` particles per directed cut edge — independent of how many particles
or sub-filters the shard holds. That is the scaling the shard benchmark
pins: cut bytes grow with the partition's cut size, not with the total
particle count.

The plan also feeds the paper's analytic cost model: each shard is priced
as its own ``n_groups = |shard|`` filter round via the kernels' registered
``CostSig`` formulas, with the cut-byte estimate layered on top — the
"which partition is cheapest" question answered before any process spawns
(`esthera shard-plan`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import ExchangeTopology


def make_shard_plan(topology: ExchangeTopology, n_shards: int,
                    strategy: str = "contiguous") -> "ShardPlan":
    """Partition *topology*'s sub-filters into *n_shards* shards.

    Strategies:

    - ``"contiguous"`` — equal consecutive blocks (shard ``s`` owns
      ``[s*B, (s+1)*B)``). Minimal cut for ring/torus-style locality and
      identical to the classic per-worker block split, so it is the
      backend's default.
    - ``"strided"`` — round-robin (``f % n_shards``). Deliberately
      locality-hostile: nearly every edge is a cut edge. Useful as the
      pessimal contrast in benchmarks and tests.
    """
    F = topology.n_filters
    n_shards = int(n_shards)
    if not 1 <= n_shards <= F:
        raise ValueError(f"n_shards must be in [1, {F}], got {n_shards}")
    if strategy == "contiguous":
        if F % n_shards:
            raise ValueError(
                f"contiguous plan needs n_shards ({n_shards}) to divide "
                f"n_filters ({F})")
        assignment = np.repeat(np.arange(n_shards, dtype=np.int64),
                               F // n_shards)
    elif strategy == "strided":
        assignment = (np.arange(F, dtype=np.int64) % n_shards)
    else:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; "
            f"expected one of ['contiguous', 'strided']")
    return ShardPlan(assignment, n_shards, topology=topology)


class ShardPlan:
    """An assignment of every sub-filter to a shard, plus its cut analysis."""

    def __init__(self, assignment, n_shards: int,
                 topology: ExchangeTopology | None = None):
        self.assignment = np.asarray(assignment, dtype=np.int64).copy()
        self.n_shards = int(n_shards)
        self.topology = topology
        if self.assignment.ndim != 1:
            raise ValueError("assignment must be a 1-D filter→shard vector")
        if self.assignment.size and not (
                (self.assignment >= 0).all()
                and (self.assignment < self.n_shards).all()):
            raise ValueError("assignment references shards outside "
                             f"[0, {self.n_shards})")

    @property
    def n_filters(self) -> int:
        return int(self.assignment.size)

    def members(self, shard: int) -> np.ndarray:
        """Global sub-filter ids owned by *shard*, ascending."""
        return np.flatnonzero(self.assignment == int(shard))

    def counts(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.n_shards)

    # -- cut analysis ---------------------------------------------------------
    def cut_edges(self) -> np.ndarray:
        """Directed exchange edges crossing a shard boundary, as an
        ``(E, 2)`` array of ``(dst, src)`` pairs (dst receives from src)."""
        if self.topology is None:
            raise ValueError("cut analysis needs the plan's topology")
        table = self.topology.neighbor_table()
        if table.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        F, D = table.shape
        dst = np.repeat(np.arange(F, dtype=np.int64), D)
        src = table.reshape(-1)
        valid = src >= 0
        dst, src = dst[valid], src[valid]
        crossing = self.assignment[dst] != self.assignment[src]
        return np.stack([dst[crossing], src[crossing]], axis=1)

    def cut_size(self) -> int:
        """Number of directed cut edges."""
        return int(self.cut_edges().shape[0])

    def cut_bytes_per_round(self, n_exchange: int, state_dim: int,
                            state_itemsize: int = 4,
                            weight_itemsize: int = 8) -> int:
        """Predicted serialized payload bytes per round: ``t`` particles
        (state + log-weight) per directed cut edge. Framing/pickle overhead
        is excluded — it is O(edges), not O(particles)."""
        t = max(int(n_exchange), 0)
        per_edge = t * (state_dim * state_itemsize + weight_itemsize)
        return self.cut_size() * per_edge

    def summary(self, n_exchange: int = 1, state_dim: int = 1) -> dict:
        counts = self.counts()
        return {
            "n_filters": self.n_filters,
            "n_shards": self.n_shards,
            "shard_sizes": counts.tolist(),
            "cut_edges": self.cut_size(),
            "cut_bytes_per_round": self.cut_bytes_per_round(
                n_exchange, state_dim),
        }

    # -- cost-model feed ------------------------------------------------------
    def shard_cost_params(self, shard: int, n_particles: int, state_dim: int,
                          n_exchange: int = 1, dtype_bytes: int = 4):
        """A per-shard :class:`~repro.kernels.registry.CostParams`: the shard
        priced as its own ``n_groups = |shard|`` filter round."""
        from repro.kernels.registry import CostParams

        size = int(self.counts()[int(shard)])
        deg = self.topology.max_degree if self.topology is not None else 2
        return CostParams(
            m=int(n_particles), state_dim=int(state_dim),
            n_groups=max(size, 1), dtype_bytes=int(dtype_bytes),
            pool=int(n_particles) + deg * max(int(n_exchange), 1),
            n_exchange=max(int(n_exchange), 1), degree=max(deg, 1))


@dataclass(frozen=True)
class ShardView:
    """One worker's rewritten neighbour table.

    Every ``(row, column)`` slot of the worker's ``(B, D)`` receive table is
    classified exactly once:

    - **local**: the source is owned by the same worker — the worker fills
      the slot from its own post-sort send buffer (``local_src`` is the
      source's local row index); nothing crosses the wire.
    - **wire**: everything else — out-of-shard sources *and* masked/dead
      slots, which the master fills with the same row-0 filler + ``-inf``
      log-weights the dense routing path uses, so the pooled candidate set
      is bit-identical to an unsharded round.

    ``wire_src`` (global source rows, ``-1`` preserved) exists for the
    master's packing; workers only need the slot coordinates.
    """

    worker: int
    ids: np.ndarray       # (B,) global sub-filter ids, ascending
    n_cols: int           # D, the dense table width
    local_i: np.ndarray   # local-slot row coordinates
    local_j: np.ndarray   # local-slot column coordinates
    local_src: np.ndarray  # local row index of each local slot's source
    wire_i: np.ndarray    # wire-slot row coordinates (row-major order)
    wire_j: np.ndarray    # wire-slot column coordinates
    wire_src: np.ndarray  # global source row of each wire slot (-1 kept)
    wire_valid: np.ndarray  # live-source mask over the wire slots

    @property
    def n_rows(self) -> int:
        return int(self.ids.size)

    @property
    def n_wire_slots(self) -> int:
        return int(self.wire_i.size)

    def wire_payload(self) -> tuple:
        """The arrays a worker needs to reconstruct its receive table."""
        return (self.ids, self.n_cols, self.local_i, self.local_j,
                self.local_src, self.wire_i, self.wire_j, self.wire_valid)


def shard_table_view(worker: int, ids, owner, table, mask) -> ShardView:
    """Build *worker*'s :class:`ShardView` from the (healed) dense table.

    ``owner`` maps every global sub-filter id to its owning worker (``-1``
    for unowned/dead); ``table``/``mask`` are the healer's frozen neighbour
    table for this round.
    """
    ids = np.asarray(ids, dtype=np.int64)
    owner = np.asarray(owner, dtype=np.int64)
    table = np.asarray(table)
    mask = np.asarray(mask, dtype=bool)
    rows = table[ids]            # (B, D) global sources
    rmask = mask[ids]
    valid = rmask & (rows >= 0)
    src_owner = np.where(valid, owner[np.maximum(rows, 0)], -1)
    local = valid & (src_owner == int(worker))
    wire = ~local
    # global id -> local row index for in-shard sources
    lookup = np.full(owner.shape[0], -1, dtype=np.int64)
    lookup[ids] = np.arange(ids.size, dtype=np.int64)
    li, lj = np.nonzero(local)
    wi, wj = np.nonzero(wire)
    return ShardView(
        worker=int(worker), ids=ids, n_cols=int(rows.shape[1] if rows.ndim == 2 else 0),
        local_i=li, local_j=lj, local_src=lookup[rows[li, lj]],
        wire_i=wi, wire_j=wj, wire_src=rows[wi, wj],
        wire_valid=valid[wi, wj])
