"""The multiprocess backend's data plane: pipe vs shared-memory transports.

Every filtering round moves the same four payloads between the master and a
worker block: the scattered measurement/control, the gathered top-t send
buffers + per-block estimate partials, and the routed incoming particles for
the local resample. :class:`PipeTransport` moves all of them as pickles over
``multiprocessing`` pipes — simple, but every round pays serialization and
pipe-buffer copies proportional to the payload. :class:`SharedMemoryTransport`
keeps the payloads in preallocated, double-buffered
:class:`multiprocessing.shared_memory.SharedMemory` slabs that the worker
inherits over ``fork``; the pipes then carry only tiny control headers
(round counter, exchange width, slab sequence number), so the per-round
byte traffic through the kernel is O(1) instead of O(payload).

Protocol
--------
Each channel pair owns one shared segment holding **two** copies of a
:class:`SlabLayout` (one per round parity ``k % 2``). Round ``k`` writes only
buffer ``k & 1``; the master never reuses a buffer until the worker has
acknowledged the next header for it, which the strict phase1 → phase2 → k+1
lockstep of the backend guarantees. Headers are:

- master → worker  ``("phase1", k, t, seq, z_spec, u_spec, trace, widths?)``
- worker → master  ``("p1", k, seq, heal_stats)``  (payload in the slab)
- master → worker  ``("phase2s", k, width)``        (payload in the slab)

``widths?`` is a flag (shm) or an inline int64 vector (pipe): under adaptive
allocation the master scatters each block's per-sub-filter live widths with
phase 1 (shm: the ``widths`` slab field), and the worker ships back its
pre-resample allocation metrics — per-sub-filter ESS and weight-mass
log-sum-exp — in the ``ess`` / ``mass_lse`` slab fields (pipe: inline tuple
members). Fixed allocation never touches any of these.

``trace`` is the per-round telemetry context: when the master's tracer is
enabled the flag rides the phase-1 header (both transports), the worker
records stage/kernel spans for the round, and ships them — with its clock
reading for offset alignment — in the phase-2 reply.

Payloads that do not fit their slab (an oversized measurement, or a healed
topology whose routed width exceeds the preallocated capacity) transparently
fall back to the inline pickle form of the pipe transport, so correctness
never depends on the capacity estimate. Every such fallback is counted on
the master channel (``fallbacks``) and surfaces as the backend's
``transport_fallbacks`` telemetry counter. Rare control messages (``init``,
``adopt``, ``get_state``, ``stop``) and structured ``("error", traceback)``
replies always travel inline on the pipe.

Failure / reclaim semantics
---------------------------
The *master* channel owns the segment: :meth:`ShmMasterChannel.reclaim`
closes and **unlinks** it (unlinking also unregisters it from the
``resource_tracker``, so no leak warnings are emitted even when the worker
was killed mid-round and never ran its own ``close``). ``close``/``reclaim``
are idempotent and guard against ``BufferError`` from still-exported NumPy
views — the unlink always happens. Workers only ever ``close`` their
inherited mapping, never unlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

_ALIGN = 64  # slab field alignment [bytes]; keeps rows cache-line friendly


@dataclass(frozen=True)
class TransportCaps:
    """What a transport's data plane can and cannot do.

    The backend probes these instead of matching on transport names, so new
    transports only have to describe themselves:

    - ``zero_copy``: payloads move through preallocated shared slabs rather
      than being serialized per round.
    - ``framed``: payloads are serialized frames whose shapes may change
      round to round — a prerequisite for elastic ownership (a worker's
      sub-filter count growing mid-run) and for shard-aware cut-only
      exchange, neither of which fits a fixed-size slab.
    - ``cross_host``: the wire could, in principle, span machines (the
      channel is address-based, not fd-inheritance-based).
    - ``byte_counters``: the channel counts bytes on the wire
      (``bytes_sent`` / ``bytes_received`` on ``chan.conn``), feeding the
      cut-edge byte telemetry.
    """

    zero_copy: bool = False
    framed: bool = True
    cross_host: bool = False
    byte_counters: bool = False

    @property
    def elastic(self) -> bool:
        """Framed transports tolerate per-worker shapes changing mid-run."""
        return self.framed


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SlabField:
    """One named array inside a slab buffer."""

    name: str
    offset: int  # byte offset from the buffer base
    shape: tuple[int, ...]
    dtype: np.dtype


class SlabLayout:
    """Byte layout of everything one worker block moves per round.

    Parameters
    ----------
    n_block:
        sub-filters owned by the worker (``B``).
    n_particles / state_dim:
        per-sub-filter particle count ``m`` and state dimension ``d``.
    t_cap:
        top-t send capacity per sub-filter (``max(n_exchange, 1)``).
    recv_cap:
        incoming-particle capacity per sub-filter. Sized with healing slack
        for pairwise topologies; routed widths beyond it fall back to the
        inline pipe path.
    meas_cap / ctrl_cap:
        float64 element capacity of the scatter slots.
    dtype:
        the particle-state dtype.
    weight_dtype:
        the log-weight dtype (default float64; a float32
        :class:`~repro.core.dtypes.DtypePolicy` shrinks the weight slabs to
        match so the wire format is exactly the in-memory format). Estimate
        partials and allocation metrics stay float64 regardless — they are
        reductions.
    """

    def __init__(self, n_block: int, n_particles: int, state_dim: int,
                 t_cap: int, recv_cap: int, meas_cap: int, ctrl_cap: int,
                 dtype, weight_dtype=None) -> None:
        self.n_block = int(n_block)
        self.n_particles = int(n_particles)
        self.state_dim = int(state_dim)
        self.t_cap = int(t_cap)
        self.recv_cap = int(recv_cap)
        self.meas_cap = int(meas_cap)
        self.ctrl_cap = int(ctrl_cap)
        self.dtype = np.dtype(dtype)
        self.weight_dtype = np.dtype(np.float64 if weight_dtype is None else weight_dtype)
        B, d, f64 = self.n_block, self.state_dim, np.dtype(np.float64)
        wdt = self.weight_dtype
        specs = [
            # gather (worker → master)
            ("send_states", (B, self.t_cap, d), self.dtype),
            ("send_logw", (B, self.t_cap), wdt),
            ("best_states", (B, d), self.dtype),
            ("best_logw", (B,), wdt),
            # per-sub-filter estimate partials [w·x (d) | w.sum | row shift]:
            # keyed by global filter id on the master, so the weighted-mean
            # reduction is invariant to how filters are sharded over workers.
            ("partial", (B, d + 2), f64),
            # adaptive-allocation metrics (worker → master; fixed: unused)
            ("ess", (B,), f64),
            ("mass_lse", (B,), f64),
            # per-sub-filter live widths (master → worker; fixed: unused)
            ("widths", (B,), np.dtype(np.int64)),
            # routed exchange (master → worker)
            ("recv_states", (B, self.recv_cap, d), self.dtype),
            ("recv_logw", (B, self.recv_cap), wdt),
            # scatter (master → worker)
            ("meas", (self.meas_cap,), f64),
            ("ctrl", (self.ctrl_cap,), f64),
        ]
        self.fields: dict[str, SlabField] = {}
        offset = 0
        for name, shape, dt in specs:
            self.fields[name] = SlabField(name, offset, shape, dt)
            offset += _align(int(np.prod(shape)) * dt.itemsize)
        #: bytes of ONE buffer; a segment holds two (double buffering).
        self.nbytes = max(offset, _ALIGN)

    @property
    def segment_nbytes(self) -> int:
        """Total segment size: two buffers plus the heartbeat tail."""
        return 2 * self.nbytes + _ALIGN

    def heartbeat_view(self, buf) -> np.ndarray:
        """The out-of-band liveness slots appended after both buffers.

        Two int64 words: ``[0]`` the worker's monotonic beat counter,
        ``[1]`` the phase code of the latest beat. The region sits outside
        the double-buffered payload area, so heartbeat publication never
        races the round's data exchange — the master may read it at any
        time, including mid-phase.
        """
        return np.ndarray((2,), dtype=np.int64, buffer=buf,
                          offset=2 * self.nbytes)

    def views(self, buf, parity: int) -> dict[str, np.ndarray]:
        """NumPy views of every field of buffer ``parity`` over *buf*."""
        base = int(parity) * self.nbytes
        return {
            f.name: np.ndarray(f.shape, dtype=f.dtype, buffer=buf,
                               offset=base + f.offset)
            for f in self.fields.values()
        }


# ---------------------------------------------------------------------------
# Pipe transport: the classic pickle-everything data plane.
# ---------------------------------------------------------------------------


class PipeMasterChannel:
    """Master end of a pipe-only channel: every payload is pickled."""

    n_segments = 0
    #: inline-fallback count; always 0 for the pipe transport, whose inline
    #: form *is* the normal path rather than a degraded one.
    fallbacks = 0

    def __init__(self, parent, child):
        self.conn = parent
        self._child = child
        self._beat_count = 0

    def after_start(self) -> None:
        """Drop the worker-side pipe end so EOF means "worker gone"."""
        self._child.close()

    # -- heartbeats -----------------------------------------------------------
    def note_beat(self, msg) -> None:
        """Absorb an out-of-band ``("beat", count, code)`` pipe message."""
        self._beat_count = max(self._beat_count, int(msg[1]))

    def heartbeat(self) -> int:
        """Latest liveness counter observed from the worker."""
        return self._beat_count

    # -- control-plane passthrough ------------------------------------------
    def request(self, msg) -> None:
        self.conn.send(msg)

    # -- phase 1 -------------------------------------------------------------
    def send_phase1(self, z, u, k: int, t: int, trace: bool = False,
                    widths=None) -> int:
        """Scatter the round inputs; returns the inline-fallback count (0).

        ``widths`` (adaptive allocation only) is the block's per-sub-filter
        live-width vector for this round; the worker resizes before sampling.
        """
        w = None if widths is None else np.ascontiguousarray(widths, dtype=np.int64)
        self.conn.send(("phase1", z, u, k, t, bool(trace), w))
        return 0

    def decode_phase1(self, msg, t: int):
        """The 7-tuple ``(send_states, send_logw, best_states, best_logw,
        partial, heal_stats, alloc)`` — already inline for the pipe
        transport. ``alloc`` is ``None`` (fixed allocation) or the block's
        ``(ess, mass_lse)`` metric vectors."""
        return msg

    # -- phase 2 -------------------------------------------------------------
    def phase2_buffers(self, k: int, width: int):
        """Writable routing destination, or ``None`` (pipe: route to scratch)."""
        return None

    def send_phase2_ready(self, k: int, width: int) -> None:  # pragma: no cover
        raise RuntimeError("pipe transport has no shared phase-2 buffers")

    def send_phase2(self, k: int, states, logw) -> bool:
        """Deliver the routed particles; returns True iff this send had to
        fall back from a shared slab to the inline pickle form (never, for
        the pipe transport)."""
        if states is None:
            self.conn.send(("phase2", None, None))
        else:
            self.conn.send(("phase2", np.ascontiguousarray(states),
                            np.ascontiguousarray(logw)))
        return False

    def decode_phase2(self, msg) -> tuple[dict, dict, dict | None]:
        return msg[1], msg[2], msg[3] if len(msg) > 3 else None

    # -- lifecycle -----------------------------------------------------------
    def reclaim(self) -> int:
        """Release transport resources; number of shared segments unlinked."""
        return 0

    def close(self) -> int:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        return self.reclaim()


class PipeWorkerChannel:
    """Worker end of a pipe-only channel."""

    def __init__(self, conn):
        self.conn = conn
        self._beats = 0

    def beat(self, code: int = 0) -> None:
        """Publish liveness: one tiny ``("beat", count, code)`` message.

        Beats also wake the master's ``connection.wait`` immediately, so on
        the pipe transport heartbeat *arrival* is event-driven even though
        miss detection is clocked by the supervisor's check interval.
        Failures are swallowed — a dying pipe must not mask the real fault.
        """
        self._beats += 1
        try:
            self.conn.send(("beat", self._beats, int(code)))
        except (OSError, ValueError, BrokenPipeError):  # pragma: no cover
            pass

    def recv(self):
        return self.conn.recv()

    def send(self, obj) -> None:
        self.conn.send(obj)

    def reply_phase1(self, k: int, send_states, send_logw, best_states,
                     best_logw, partial, heal_stats, alloc=None) -> None:
        self.conn.send((send_states, np.ascontiguousarray(send_logw),
                        best_states.copy(), best_logw.copy(), partial,
                        heal_stats, alloc))

    def reply_phase2(self, stage_seconds: dict, kernel_seconds: dict,
                     telemetry: dict | None = None) -> None:
        self.conn.send(("ok", stage_seconds, kernel_seconds, telemetry))

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class PipeTransport:
    """Pickle-over-pipe data plane (the reference transport)."""

    name = "pipe"
    caps = TransportCaps(zero_copy=False, framed=True, cross_host=False)

    def channel_pair(self, ctx, layout: SlabLayout):
        parent, child = ctx.Pipe()
        return PipeMasterChannel(parent, child), PipeWorkerChannel(child)


# ---------------------------------------------------------------------------
# Shared-memory transport: slabs carry the data, pipes carry headers.
# ---------------------------------------------------------------------------


def _pack_scatter(slot: np.ndarray, arr):
    """Stage a scatter array into a float64 slab slot.

    Returns the spec shipped in the header: ``None`` (no array),
    ``("shm", shape)`` (payload in the slot) or ``("inline", arr)`` when the
    array does not fit or is not float64-exact (non-float64 dtypes keep their
    exact bit pattern only on the inline path).
    """
    if arr is None:
        return None
    a = np.asarray(arr)
    if a.dtype != np.float64 or a.size > slot.size:
        return ("inline", arr)
    slot[: a.size] = a.reshape(-1)
    return ("shm", a.shape)


def _unpack_scatter(slot: np.ndarray, spec):
    if spec is None:
        return None
    kind, payload = spec
    if kind == "inline":
        return payload
    size = int(np.prod(payload)) if payload else 1
    return slot[:size].reshape(payload).copy()


class ShmMasterChannel:
    """Master end of a shared-memory channel.

    Owns the shared segment (created *before* fork so the worker inherits
    the mapping — no name-based re-attach, hence no ``resource_tracker``
    double registration) and the double-buffered views into it.
    """

    def __init__(self, ctx, layout: SlabLayout):
        parent, child = ctx.Pipe()
        self.conn = parent
        self._child = child
        self.layout = layout
        self._seg: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=layout.segment_nbytes
        )
        self._views = (layout.views(self._seg.buf, 0), layout.views(self._seg.buf, 1))
        self._hb = layout.heartbeat_view(self._seg.buf)
        self._hb[:] = 0
        self._seq = 0
        #: payload sends that had to leave the slab for the inline pipe path
        #: (oversized scatter arrays, healed-wider phase-2 widths).
        self.fallbacks = 0
        #: the worker-side channel, built pre-fork so the child inherits the
        #: segment object (and its views) directly through ``fork``.
        self.worker = ShmWorkerChannel(child, self._seg, self._views, layout)

    @property
    def n_segments(self) -> int:
        return 1 if self._seg is not None else 0

    def after_start(self) -> None:
        self._child.close()

    def request(self, msg) -> None:
        self.conn.send(msg)

    # -- phase 1 -------------------------------------------------------------
    def send_phase1(self, z, u, k: int, t: int, trace: bool = False,
                    widths=None) -> int:
        """Scatter the round inputs; returns how many arrays fell back inline."""
        self._seq += 1
        v = self._views[k & 1]
        z_spec = _pack_scatter(v["meas"], z)
        u_spec = _pack_scatter(v["ctrl"], u)
        fell_back = sum(1 for spec in (z_spec, u_spec)
                        if spec is not None and spec[0] == "inline")
        self.fallbacks += fell_back
        has_widths = widths is not None
        if has_widths:
            v["widths"][...] = widths
        self.conn.send(("phase1", k, t, self._seq, z_spec, u_spec, bool(trace),
                        has_widths))
        return fell_back

    def decode_phase1(self, msg, t: int):
        if not (isinstance(msg, tuple) and msg and msg[0] == "p1"):
            raise RuntimeError(f"shm protocol: expected p1 ack, got {msg!r}")
        _, k, seq, heal_stats = msg
        if seq != self._seq:
            raise RuntimeError(
                f"shm protocol: stale slab ack (seq {seq} != {self._seq})")
        v = self._views[k & 1]
        # The metric views are handed out unconditionally; the master reads
        # them only under adaptive allocation (when the worker wrote them).
        return (v["send_states"], v["send_logw"], v["best_states"],
                v["best_logw"], v["partial"].copy(), heal_stats,
                (v["ess"], v["mass_lse"]))

    # -- phase 2 -------------------------------------------------------------
    def phase2_buffers(self, k: int, width: int):
        """Zero-copy routing destination when *width* fits the slab."""
        if width > self.layout.recv_cap:
            return None
        v = self._views[k & 1]
        return v["recv_states"][:, :width], v["recv_logw"][:, :width]

    def send_phase2_ready(self, k: int, width: int) -> None:
        self.conn.send(("phase2s", k, width))

    def send_phase2(self, k: int, states, logw) -> bool:
        """Deliver the routed particles; True iff the slab was bypassed."""
        if states is None:
            self.conn.send(("phase2s", k, 0))
            return False
        bufs = self.phase2_buffers(k, states.shape[1])
        if bufs is None:
            # Healed topology grew past the preallocated capacity: fall back
            # to the inline pipe form for this round.
            self.fallbacks += 1
            self.conn.send(("phase2", np.ascontiguousarray(states),
                            np.ascontiguousarray(logw)))
            return True
        bufs[0][...] = states
        bufs[1][...] = logw
        self.send_phase2_ready(k, states.shape[1])
        return False

    def decode_phase2(self, msg) -> tuple[dict, dict, dict | None]:
        return msg[1], msg[2], msg[3] if len(msg) > 3 else None

    # -- heartbeats -----------------------------------------------------------
    def note_beat(self, msg) -> None:
        """No-op: shm beats live in the slab tail, never on the pipe."""

    def heartbeat(self) -> int:
        """Read the worker's liveness counter straight from shared memory."""
        if self._hb is None:
            return -1
        return int(self._hb[0])

    # -- lifecycle -----------------------------------------------------------
    def reclaim(self) -> int:
        """Close and unlink the shared segment (idempotent).

        Unlink always runs — it is what unregisters the segment from the
        ``resource_tracker`` — even if ``close`` hits a ``BufferError`` from
        a still-exported view.
        """
        if self._seg is None:
            return 0
        self._views = ()
        self._hb = None
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._seg = None
        return 1

    def close(self) -> int:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        return self.reclaim()


class ShmWorkerChannel:
    """Worker end of a shared-memory channel.

    Translates slab headers into the same logical messages the pipe worker
    receives, so the worker loop is transport-agnostic.
    """

    def __init__(self, conn, seg, views, layout: SlabLayout):
        self.conn = conn
        self._seg = seg
        self._views = views
        self.layout = layout
        self._seq = 0
        self._hb = layout.heartbeat_view(seg.buf)
        self._beats = 0

    def beat(self, code: int = 0) -> None:
        """Publish liveness into the slab tail — truly out-of-band.

        An aligned int64 store the master can read at any instant without
        any pipe traffic; the code slot is written *before* the counter so a
        reader that sees the new count also sees its phase code.
        """
        if self._hb is None:  # pragma: no cover - beat after close
            return
        self._beats += 1
        self._hb[1] = int(code)
        self._hb[0] = self._beats

    def recv(self):
        msg = self.conn.recv()
        kind = msg[0] if isinstance(msg, tuple) and msg else None
        if kind == "phase1":
            _, k, t, seq, z_spec, u_spec, trace, has_widths = msg
            self._seq = seq
            v = self._views[k & 1]
            # Copy out of the slab: the widths outlive this round's buffer.
            widths = v["widths"].copy() if has_widths else None
            return ("phase1", _unpack_scatter(v["meas"], z_spec),
                    _unpack_scatter(v["ctrl"], u_spec), k, t, trace, widths)
        if kind == "phase2s":
            _, k, width = msg
            if width == 0:
                return ("phase2", None, None)
            v = self._views[k & 1]
            return ("phase2", v["recv_states"][:, :width],
                    v["recv_logw"][:, :width])
        return msg

    def send(self, obj) -> None:
        self.conn.send(obj)

    def reply_phase1(self, k: int, send_states, send_logw, best_states,
                     best_logw, partial, heal_stats, alloc=None) -> None:
        v = self._views[k & 1]
        v["send_states"][...] = send_states
        v["send_logw"][...] = send_logw
        v["best_states"][...] = best_states
        v["best_logw"][...] = best_logw
        v["partial"][...] = partial
        if alloc is not None:
            v["ess"][...] = alloc[0]
            v["mass_lse"][...] = alloc[1]
        self.conn.send(("p1", k, self._seq, heal_stats))

    def reply_phase2(self, stage_seconds: dict, kernel_seconds: dict,
                     telemetry: dict | None = None) -> None:
        self.conn.send(("ok", stage_seconds, kernel_seconds, telemetry))

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        # The worker only drops its inherited mapping; the master owns the
        # segment's lifetime (and the unlink).
        self._views = ()
        self._hb = None
        if self._seg is not None:
            try:
                self._seg.close()
            except BufferError:  # pragma: no cover
                pass
            self._seg = None


class SharedMemoryTransport:
    """Zero-copy data plane over ``multiprocessing.shared_memory`` slabs."""

    name = "shm"
    caps = TransportCaps(zero_copy=True, framed=False, cross_host=False)

    def channel_pair(self, ctx, layout: SlabLayout):
        master = ShmMasterChannel(ctx, layout)
        return master, master.worker


_TRANSPORTS = {
    "pipe": PipeTransport,
    "shm": SharedMemoryTransport,
    "shared_memory": SharedMemoryTransport,
}


def transport_choices() -> list[str]:
    """The registered transport names, sorted — the CLI's choices list."""
    return sorted(_TRANSPORTS)


def transport_caps(spec) -> TransportCaps:
    """The :class:`TransportCaps` a spec resolves to (without building it)."""
    if isinstance(spec, str):
        try:
            return _TRANSPORTS[spec].caps
        except KeyError:
            raise ValueError(
                f"unknown transport {spec!r}; expected one of {sorted(_TRANSPORTS)}"
            ) from None
    return spec.caps


def make_transport(spec):
    """Resolve a transport spec: a name, a class, or an instance."""
    if isinstance(spec, str):
        try:
            return _TRANSPORTS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown transport {spec!r}; expected one of {sorted(_TRANSPORTS)}"
            ) from None
    if isinstance(spec, type):
        return spec()
    return spec


# The socket transport lives in its own module (it builds on the pipe
# channels defined above); importing it registers "tcp" in ``_TRANSPORTS``.
# The import is effect-only — socket_transport registers itself at its own
# module bottom, which keeps the mutual import safe whichever side loads
# first.
from repro.backends import socket_transport as _socket_transport  # noqa: E402, F401
