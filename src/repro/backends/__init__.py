"""Execution backends.

Every backend executes the same Algorithm 2 round — the shared
:class:`~repro.engine.pipeline.StepPipeline` over the canonical stage set —
and differs only in *where* and *how* the stages run:

- :class:`~repro.backends.sequential.SequentialDistributedParticleFilter` —
  the pipeline over deliberately loop-based, unoptimized stage
  implementations (the paper's Section VIII-A "sequential reference
  implementations ... much easier to implement as intended"), used to
  validate the vectorized filter.
- :class:`~repro.backends.device_backend.DeviceSimulatedFilter` — wraps any
  distributed filter, computing the numbers with vectorized NumPy while a
  :class:`~repro.backends.device_backend.DeviceCostHook` accounts *simulated*
  per-kernel time on a named Table III platform via the cost model. This is
  the stand-in for running on the paper's GPUs.
- :class:`~repro.backends.multiprocess.MultiprocessDistributedParticleFilter`
  — genuinely distributed execution across OS processes: workers run the
  local-only stage subset, the exchange stage is routed through the master's
  message-passing boundary (the cluster/mpi4py-shaped deployment).
"""

from repro.backends.sequential import SequentialDistributedParticleFilter
from repro.backends.device_backend import DeviceSimulatedFilter
from repro.backends.multiprocess import MultiprocessDistributedParticleFilter

__all__ = [
    "SequentialDistributedParticleFilter",
    "DeviceSimulatedFilter",
    "MultiprocessDistributedParticleFilter",
]
