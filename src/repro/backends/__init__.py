"""Execution backends.

- :class:`~repro.backends.sequential.SequentialDistributedParticleFilter` —
  a deliberately loop-based, unoptimized reference implementation of
  Algorithm 2 (the paper's Section VIII-A "sequential reference
  implementations ... much easier to implement as intended"), used to
  validate the vectorized filter.
- :class:`~repro.backends.device_backend.DeviceSimulatedFilter` — wraps any
  distributed filter, computing the numbers with vectorized NumPy while
  accounting *simulated* per-kernel time on a named Table III platform via
  the cost model. This is the stand-in for running on the paper's GPUs.
- :class:`~repro.backends.multiprocess.MultiprocessDistributedParticleFilter`
  — genuinely distributed execution across OS processes with message-passing
  boundary exchange (the cluster/mpi4py-shaped deployment of the algorithm).
"""

from repro.backends.sequential import SequentialDistributedParticleFilter
from repro.backends.device_backend import DeviceSimulatedFilter
from repro.backends.multiprocess import MultiprocessDistributedParticleFilter

__all__ = [
    "SequentialDistributedParticleFilter",
    "DeviceSimulatedFilter",
    "MultiprocessDistributedParticleFilter",
]
