"""Device-simulated execution: NumPy computes, the cost model keeps time.

:class:`DeviceSimulatedFilter` wraps a :class:`DistributedParticleFilter`;
every ``step`` produces the same estimate the wrapped filter produces, while
the per-round device time on the chosen Table III platform is accounted by
:func:`repro.device.costmodel.filter_round_cost`. This is the substitution
for the paper's CUDA/OpenCL runs: estimation *accuracy* is real, estimation
*rate* is modelled.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import DistributedParticleFilter
from repro.device.costmodel import FilterRoundCost, filter_round_cost
from repro.device.spec import DeviceSpec, get_platform


class DeviceSimulatedFilter:
    """A distributed filter whose clock is a simulated many-core device."""

    def __init__(self, inner: DistributedParticleFilter, platform: str | DeviceSpec):
        self.inner = inner
        self.device = platform if isinstance(platform, DeviceSpec) else get_platform(platform)
        cfg = inner.config
        scheme = inner.topology.name if hasattr(inner.topology, "name") else "ring"
        self._round_cost: FilterRoundCost = filter_round_cost(
            self.device,
            n_particles=cfg.n_particles,
            n_filters=cfg.n_filters,
            state_dim=inner.model.state_dim,
            n_exchange=cfg.n_exchange,
            scheme=scheme,
            resampler=cfg.resampler if cfg.resampler in ("rws", "vose") else "rws",
            dtype_bytes=np.dtype(cfg.dtype).itemsize,
        )
        self.simulated_seconds = 0.0
        self.simulated_kernel_seconds: dict[str, float] = {k: 0.0 for k in self._round_cost.seconds}

    # -- filter protocol ------------------------------------------------------
    @property
    def timer(self):
        return self.inner.timer

    def initialize(self) -> None:
        self.inner.initialize()
        self.simulated_seconds = 0.0
        self.simulated_kernel_seconds = {k: 0.0 for k in self._round_cost.seconds}

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        est = self.inner.step(measurement, control)
        self.simulated_seconds += self._round_cost.total_seconds
        for k, v in self._round_cost.seconds.items():
            self.simulated_kernel_seconds[k] += v
        return est

    # -- simulated performance ---------------------------------------------------
    @property
    def round_cost(self) -> FilterRoundCost:
        return self._round_cost

    @property
    def simulated_update_rate_hz(self) -> float:
        return 1.0 / self._round_cost.total_seconds

    def simulated_breakdown(self) -> dict[str, float]:
        return self._round_cost.fractions()
