"""Device-simulated execution: NumPy computes, the cost model keeps time.

:class:`DeviceSimulatedFilter` wraps a :class:`DistributedParticleFilter`;
every ``step`` produces the same estimate the wrapped filter produces, while
the per-round device time on the chosen Table III platform is accounted by
:func:`repro.device.costmodel.filter_round_cost`. This is the substitution
for the paper's CUDA/OpenCL runs: estimation *accuracy* is real, estimation
*rate* is modelled.

The accounting is a :class:`DeviceCostHook` attached to the wrapped filter's
:class:`~repro.engine.pipeline.StepPipeline`: each stage-end event charges
that kernel's modelled seconds under the canonical stage name (the ``rand``
kernel — the paper's separate PRNG pass — is folded into the ``sampling``
stage, where the draws actually happen). Charging per stage rather than per
round means a partial round, an extra observer, or a future stage added to
the pipeline is priced automatically.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import DistributedParticleFilter
from repro.device.costmodel import FilterRoundCost, filter_round_cost
from repro.device.spec import DeviceSpec, get_platform
from repro.engine import StageHook


class DeviceCostHook(StageHook):
    """Charges the cost model's per-kernel seconds as pipeline stages end.

    ``cost`` is read through a callable so the owning filter can recompute
    it lazily when the wrapped filter's configuration changes.
    """

    def __init__(self, cost_provider, tracer=None):
        self._cost_provider = cost_provider
        self.tracer = tracer
        self.simulated_seconds = 0.0
        self.simulated_kernel_seconds: dict[str, float] = {}

    def reset(self) -> None:
        self.simulated_seconds = 0.0
        self.simulated_kernel_seconds = {}

    def _charge(self, kernel: str, cost: FilterRoundCost) -> None:
        sec = cost.seconds.get(kernel)
        if sec is None:
            return
        self.simulated_seconds += sec
        self.simulated_kernel_seconds[kernel] = (
            self.simulated_kernel_seconds.get(kernel, 0.0) + sec
        )
        if self.tracer is not None:
            # Modelled device time is a counter, not a span: it has no wall-
            # clock extent on the host timeline.
            self.tracer.count(f"device.{kernel}.seconds", sec)

    def on_stage_end(self, name: str, state, elapsed: float) -> None:
        cost = self._cost_provider()
        self._charge(name, cost)
        if name == "sampling":
            # The paper's PRNG pass is a separate kernel; its draws happen
            # inside the sampling stage, so it is billed alongside it.
            self._charge("rand", cost)


class DeviceSimulatedFilter:
    """A distributed filter whose clock is a simulated many-core device."""

    def __init__(self, inner: DistributedParticleFilter, platform: str | DeviceSpec):
        self.inner = inner
        self.device = platform if isinstance(platform, DeviceSpec) else get_platform(platform)
        self._cost_key = None
        self._round_cost: FilterRoundCost | None = None
        self._hook = DeviceCostHook(lambda: self.round_cost,
                                    tracer=getattr(inner, "tracer", None))
        inner.pipeline.add_hook(self._hook)

    def _current_cost_key(self) -> tuple:
        cfg = self.inner.config
        scheme = getattr(self.inner.topology, "name", "ring")
        return (
            cfg.n_particles, cfg.n_filters, self.inner.model.state_dim,
            cfg.n_exchange, scheme, cfg.resampler, np.dtype(cfg.dtype).itemsize,
        )

    # -- filter protocol ------------------------------------------------------
    @property
    def timer(self):
        return self.inner.timer

    def initialize(self) -> None:
        self.inner.initialize()
        self._hook.reset()

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        return self.inner.step(measurement, control)

    # -- simulated performance ---------------------------------------------------
    @property
    def simulated_seconds(self) -> float:
        return self._hook.simulated_seconds

    @property
    def simulated_kernel_seconds(self) -> dict[str, float]:
        return self._hook.simulated_kernel_seconds

    @property
    def round_cost(self) -> FilterRoundCost:
        """The per-round kernel cost, recomputed if the wrapped filter's
        configuration changed since the last query."""
        key = self._current_cost_key()
        if self._round_cost is None or key != self._cost_key:
            m, f, d, t, scheme, resampler, itemsize = key
            self._round_cost = filter_round_cost(
                self.device,
                n_particles=m,
                n_filters=f,
                state_dim=d,
                n_exchange=t,
                scheme=scheme,
                resampler=resampler if resampler in ("rws", "vose", "metropolis") else "rws",
                dtype_bytes=itemsize,
            )
            self._cost_key = key
        return self._round_cost

    @property
    def simulated_update_rate_hz(self) -> float:
        # Guarded division: a degenerate cost model (all-zero seconds)
        # reports an infinite rate instead of raising ZeroDivisionError.
        return self.round_cost.update_rate_hz

    def simulated_breakdown(self) -> dict[str, float]:
        return self.round_cost.fractions()
