"""Loop-based reference implementation of the distributed filter.

Every operation is written per sub-filter, per particle, exactly following
Algorithm 2's pseudocode — no batching, no clever indexing. It is orders of
magnitude slower than the vectorized filter and exists purely as the
correctness oracle (the paper similarly validated its CUDA/OpenCL kernels
against sequential reference implementations).

The oracle runs the *same* :class:`~repro.engine.pipeline.StepPipeline` as
the vectorized filter, with the loop-based stage implementations from
:mod:`repro.engine.loop_stages` — so it reports the same canonical per-stage
timings through the timer hook (previously its ``kernel_seconds`` came back
empty) and honours the full configuration surface (``roughening``,
``frim_redraws``, ``exchange_select="sample"``) instead of silently
diverging from the vectorized filter.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.engine import (
    AllocationTelemetryHook,
    ExecutionContext,
    FilterState,
    KernelTimingHook,
    TimerHook,
    build_loop_pipeline,
)
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.telemetry import Tracer
from repro.topology import resolve_topology


class SequentialDistributedParticleFilter:
    """Algorithm 2, straight from the pseudocode, one particle at a time."""

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig | None = None):
        self.model = model
        self.config = config or DistributedFilterConfig(n_particles=16, n_filters=4)
        cfg = self.config
        self.topology = resolve_topology(cfg.topology, cfg.n_filters)
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(cfg.rng, cfg.seed), self.timer)
        self.resampler = make_resampler(cfg.resampler)
        self.policy = make_policy(cfg.resample_policy, cfg.resample_arg)
        from repro.allocation import make_allocation_policy

        self.alloc_policy = make_allocation_policy(cfg)
        from repro.core.dtypes import resolve_dtype_policy

        # The oracle never takes compiled shortcuts (it *is* the reference),
        # but it honours the dtype policy so float32 runs can be validated
        # against it on the same precision.
        self.dtype_policy = resolve_dtype_policy(cfg.dtype_policy, cfg.dtype)
        self.dtype = self.dtype_policy.state
        self._state = FilterState()
        self._ctx = ExecutionContext(
            model=model, config=cfg, rng=self.rng, resampler=self.resampler,
            policy=self.policy, dtype=self.dtype, topology=self.topology,
            table=self.topology.neighbor_table(),
            mask=self.topology.neighbor_table() >= 0,
            alloc_policy=self.alloc_policy,
            dtype_policy=self.dtype_policy,
        )
        self.tracer = Tracer()
        self.kernel_hook = KernelTimingHook(tracer=self.tracer)
        self.pipeline = build_loop_pipeline(
            hooks=[TimerHook(self.timer, tracer=self.tracer), self.kernel_hook,
                   AllocationTelemetryHook(tracer=self.tracer)])

    # -- state delegation ------------------------------------------------------
    @property
    def states(self) -> np.ndarray | None:
        return self._state.states

    @property
    def log_weights(self) -> np.ndarray | None:
        return self._state.log_weights

    @property
    def widths(self) -> np.ndarray | None:
        return self._state.widths

    @property
    def k(self) -> int:
        return self._state.k

    @property
    def last_estimate(self) -> np.ndarray | None:
        return self._state.last_estimate

    @property
    def heal_counters(self) -> dict[str, int]:
        return self._state.heal_counters

    @property
    def kernel_seconds(self) -> dict[str, float]:
        """Cumulative wall time of registered kernels dispatched this run."""
        return self.kernel_hook.kernel_seconds

    @property
    def telemetry_errors(self) -> int:
        """Hook/exporter callbacks that raised and were isolated."""
        return self.pipeline.telemetry_errors

    @property
    def filters(self) -> list[dict] | None:
        """Per-sub-filter view of the population (legacy inspection shape)."""
        if self._state.states is None:
            return None
        return [
            {"states": self._state.states[f], "logw": self._state.log_weights[f]}
            for f in range(self.config.n_filters)
        ]

    # -- lifecycle ----------------------------------------------------------
    def initialize(self) -> None:
        cfg = self.config
        states = np.stack([
            self.model.initial_particles(cfg.n_particles, self.rng, dtype=self.dtype)
            for _ in range(cfg.n_filters)
        ])
        log_weights = np.zeros((cfg.n_filters, cfg.n_particles),
                               dtype=self.dtype_policy.weight)
        from repro.allocation import allocation_capacity, pad_population

        capacity = allocation_capacity(cfg)
        widths = None
        if capacity != cfg.n_particles:
            states, log_weights = pad_population(states, log_weights, capacity)
            widths = np.full(cfg.n_filters, cfg.n_particles, dtype=np.int64)
        self._state.reset(states, log_weights, widths=widths)

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self._state.states is None:
            self.initialize()
        return self.pipeline.run(self._ctx, self._state, measurement, control)

    # -- checkpoint / restore ---------------------------------------------------
    def save_checkpoint(self, path: str) -> dict:
        """Atomically write a snapshot resumable bit-identically; see
        :mod:`repro.resilience.checkpoint` for the format and guarantees."""
        from repro.resilience.checkpoint import save_filter_checkpoint

        return save_filter_checkpoint(self, path, backend="sequential")

    def load_checkpoint(self, path: str) -> dict:
        """Restore a :meth:`save_checkpoint` snapshot (population + RNG +
        step counter); the next :meth:`step` continues the original trace."""
        from repro.resilience.checkpoint import load_filter_checkpoint

        return load_filter_checkpoint(self, path, backend="sequential")
