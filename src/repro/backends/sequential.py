"""Loop-based reference implementation of the distributed filter.

Every operation is written per sub-filter, per particle, exactly following
Algorithm 2's pseudocode — no batching, no clever indexing. It is orders of
magnitude slower than the vectorized filter and exists purely as the
correctness oracle (the paper similarly validated its CUDA/OpenCL kernels
against sequential reference implementations).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import global_estimate
from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.topology import ExchangeTopology, make_topology


class SequentialDistributedParticleFilter:
    """Algorithm 2, straight from the pseudocode, one particle at a time."""

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig | None = None):
        self.model = model
        self.config = config or DistributedFilterConfig(n_particles=16, n_filters=4)
        cfg = self.config
        if isinstance(cfg.topology, ExchangeTopology):
            self.topology = cfg.topology
        else:
            self.topology = make_topology(str(cfg.topology), cfg.n_filters)
        self.timer = PhaseTimer()
        self.rng = TimingRNG(make_rng(cfg.rng, cfg.seed), self.timer)
        self.resampler = make_resampler(cfg.resampler)
        self.policy = make_policy(cfg.resample_policy, cfg.resample_arg)
        self.k = 0
        self.filters: list[dict] | None = None  # per-sub-filter state dicts

    def initialize(self) -> None:
        cfg = self.config
        self.filters = []
        for f in range(cfg.n_filters):
            states = self.model.initial_particles(cfg.n_particles, self.rng, dtype=np.dtype(cfg.dtype))
            self.filters.append({"states": states, "logw": np.zeros(cfg.n_particles)})
        self.k = 0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if self.filters is None:
            self.initialize()
        cfg = self.config

        # Sample and weight, one particle at a time (Algorithm 2 lines 3-7).
        for sub in self.filters:
            for i in range(cfg.n_particles):
                sub["states"][i] = self.model.transition(sub["states"][i], control, self.k, self.rng)
                sub["logw"][i] += float(self.model.log_likelihood(sub["states"][i][None, :], measurement, self.k)[0])

        # Sort each sub-filter by weight, descending (line 8).
        for sub in self.filters:
            order = np.argsort(-sub["logw"], kind="stable")
            sub["states"] = sub["states"][order]
            sub["logw"] = sub["logw"][order]

        # Global estimate (line 9).
        all_states = np.stack([sub["states"] for sub in self.filters])
        all_logw = np.stack([sub["logw"] for sub in self.filters])
        estimate = global_estimate(all_states, all_logw, cfg.estimator)

        # Exchange with neighbours (lines 10-14): collect everyone's top-t
        # against the pre-exchange state, then append to the recipients.
        t = cfg.n_exchange
        incoming: list[list[tuple[np.ndarray, float]]] = [[] for _ in self.filters]
        if t > 0:
            if self.topology.pooled:
                contributions = []
                for sub in self.filters:
                    contributions += [(sub["states"][i].copy(), sub["logw"][i]) for i in range(t)]
                contributions.sort(key=lambda p: -p[1])
                best = contributions[:t]
                for f in range(cfg.n_filters):
                    incoming[f] += [(s.copy(), w) for s, w in best]
            else:
                for f, sub in enumerate(self.filters):
                    for q in self.topology.neighbors(f):
                        incoming[q] += [(sub["states"][i].copy(), sub["logw"][i]) for i in range(t)]

        # Local resampling from the pooled set (lines 15-19).
        for f, sub in enumerate(self.filters):
            w_local = np.exp(sub["logw"] - sub["logw"].max())
            if not bool(self.policy.should_resample(w_local[None, :], self.rng)[0]):
                continue
            pool_states = list(sub["states"]) + [s for s, _ in incoming[f]]
            pool_logw = np.concatenate([sub["logw"], np.array([w for _, w in incoming[f]])]) if incoming[f] else sub["logw"]
            w = np.exp(pool_logw - pool_logw.max())
            idx = self.resampler.resample(w, cfg.n_particles, self.rng)
            sub["states"] = np.stack([pool_states[i] for i in idx]).astype(sub["states"].dtype)
            sub["logw"] = np.zeros(cfg.n_particles)

        self.k += 1
        return estimate
