"""Message-passing execution of the distributed filter across processes.

The paper's design is explicitly distributed-memory friendly: all operations
are local to a sub-filter except the neighbour exchange and the estimate
reduction. This backend demonstrates that property end to end with real OS
processes: sub-filters are partitioned into contiguous blocks, one block per
worker process, and each round runs as

1. master -> workers: measurement + control (*scatter*),
2. workers: sample, weight, sort locally; reply with their sub-filters' top-t
   particles and local-estimate partials (*gather*),
3. master: routes exchanged particles along the global topology, reduces the
   global estimate,
4. master -> workers: each block's incoming particles; workers pool and
   resample locally.

Exactly the mpi4py communication pattern (scatter/gather + point-to-point
boundary exchange), built on ``multiprocessing`` pipes so it runs anywhere.

Fault tolerance
---------------
Because the algorithm is local by construction, a failed worker block is
survivable: the master detects it (deadline on every ``recv`` via
``Connection.poll``, liveness checks on the process, remote tracebacks as
structured ``("error", tb)`` replies), reroutes the exchange topology around
the dead sub-filters with a :class:`~repro.resilience.TopologyHealer`, drops
the dead block's partials from the estimate reduction, and — when
``respawn_dead=True`` — respawns the block by cloning particles from the
nearest surviving topological neighbours (the exchange primitive reused as
a recovery primitive). ``on_failure="raise"`` instead surfaces a typed
:class:`~repro.resilience.WorkerTimeoutError` /
:class:`~repro.resilience.WorkerCrashedError`. A seeded
:class:`~repro.resilience.FaultPlan` can inject crashes, hangs, poisoned
weights and corrupted exchange particles for reproducible chaos testing.
See ``docs/robustness.md`` for the failure model.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback

import numpy as np

from repro.core.estimator import max_weight_estimate, weighted_mean_estimate
from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.engine import (
    ExecutionContext,
    FilterState,
    KernelTimingHook,
    StepPipeline,
    TimerHook,
)
from repro.engine.vector_stages import LocalHealStage, ResampleStage, SampleWeightStage, SortStage
from repro.kernels.registry import default_registry
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.resilience.errors import (
    NoLiveWorkersError,
    WorkerCrashedError,
    WorkerFailure,
    WorkerTimeoutError,
)
from repro.resilience.faults import FaultInjectionHook, FaultPlan, corrupt_send_states
from repro.resilience.healing import TopologyHealer
from repro.resilience.monitor import HealMonitorHook, ResilienceReport
from repro.topology import resolve_topology
from repro.utils.arrays import sanitize_log_weights
from repro.utils.validation import check_positive_int, check_timeout


def _worker_loop(conn, model, config, block_lo, block_hi, worker_id,
                 fault_plan=None, seed_tag=0):
    """One worker process: owns sub-filters ``block_lo:block_hi``.

    The round's kernels are not implemented here: the worker builds the
    shared engine stages over its local block and runs the *local-only*
    subset of Algorithm 2 — ``sampling -> heal -> sort`` on a phase-1
    message, ``resample`` on a phase-2 message — while the exchange stage is
    routed through the master's message-passing boundary. Fault injection
    and self-healing accounting attach as stage hooks; a timer hook records
    per-stage seconds under the canonical stage names, shipped back with the
    phase-2 reply.

    Any exception inside a message handler is reported back to the master
    as a structured ``("error", traceback_str)`` reply instead of dying
    silently (which would leave the master blocked on ``recv``). The
    ``seed_tag`` distinguishes RNG streams across respawns of the same
    block so a replacement worker never replays its predecessor's draws.
    """
    timer = PhaseTimer()
    rng = TimingRNG(
        make_rng(config.rng, config.seed).spawn(1000 + worker_id + 100_000 * seed_tag), timer
    )
    dtype = np.dtype(config.dtype)
    F = block_hi - block_lo
    m = config.n_particles
    state = FilterState()
    ctx = ExecutionContext(
        model=model, config=config, rng=rng,
        resampler=make_resampler(config.resampler),
        policy=make_policy(config.resample_policy, config.resample_arg),
        dtype=dtype,
    )
    heal_hook = HealMonitorHook()
    kernel_hook = KernelTimingHook()
    hooks = [FaultInjectionHook(fault_plan, worker_id), heal_hook, TimerHook(timer), kernel_hook]
    local_pipeline = StepPipeline(
        [SampleWeightStage(), LocalHealStage(), SortStage(force=True)], hooks=hooks
    )
    resample_pipeline = StepPipeline([ResampleStage()], hooks=hooks)
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            try:
                if kind == "init":
                    flat = model.initial_particles(F * m, rng, dtype=dtype)
                    state.reset(flat.reshape(F, m, model.state_dim), np.zeros((F, m)))
                    conn.send(("ok",))
                elif kind == "adopt":
                    # Respawn path: start from particles cloned off a donor.
                    _, new_states, new_logw = msg
                    state.reset(
                        np.ascontiguousarray(new_states, dtype=dtype).reshape(F, m, model.state_dim),
                        np.asarray(new_logw, dtype=np.float64).reshape(F, m).copy(),
                    )
                    conn.send(("ok",))
                elif kind == "phase1":
                    _, z, u, k, t = msg
                    state.measurement, state.control, state.k = z, u, k
                    timer.reset()
                    local_pipeline.run_stages(ctx, state)
                    states, logw = state.states, state.log_weights
                    send_states = states[:, : max(t, 1)].copy()
                    send_logw = logw[:, : max(t, 1)].copy()
                    corrupt_send_states(fault_plan, worker_id, k, send_states)
                    # Local-estimate partials for a weighted-mean reduction.
                    shift = logw.max()
                    w = np.exp(logw - shift)
                    partial = (w.reshape(-1) @ states.reshape(-1, model.state_dim), w.sum(), shift)
                    conn.send((send_states, send_logw, states[:, 0].copy(),
                               logw[:, 0].copy(), partial, dict(heal_hook.last_round)))
                elif kind == "phase2":
                    _, recv_states, recv_logw = msg
                    if recv_states is not None and recv_states.shape[1] > 0:
                        recv_logw = np.asarray(recv_logw, dtype=np.float64).copy()
                        # Corrupted incoming particles must never be selected.
                        sanitize_log_weights(recv_logw, recv_states)
                        state.pooled_states = np.concatenate(
                            [state.states, recv_states.astype(state.states.dtype)], axis=1
                        )
                        state.pooled_logw = np.concatenate([state.log_weights, recv_logw], axis=1)
                    else:
                        state.pooled_states, state.pooled_logw = state.states, state.log_weights
                    resample_pipeline.run_stages(ctx, state)
                    kernel_seconds = dict(kernel_hook.kernel_seconds)
                    kernel_hook.kernel_seconds.clear()
                    kernel_hook.kernel_calls.clear()
                    conn.send(("ok", dict(timer.seconds), kernel_seconds))
                elif kind == "get_state":
                    conn.send((state.states, state.log_weights))
                elif kind == "stop":
                    conn.send(("bye",))
                    return
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown message {kind!r}")
            except Exception:  # noqa: BLE001 - forwarded to the master
                conn.send(("error", traceback.format_exc()))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class MultiprocessDistributedParticleFilter:
    """The distributed filter executed across worker processes.

    Statistically equivalent to :class:`DistributedParticleFilter` (different
    RNG stream layout), with genuinely distributed state: the master never
    holds the particle population, only boundary particles and estimates —
    the same data-movement contract as a cluster implementation.

    Parameters
    ----------
    recv_timeout:
        deadline [s] for every worker reply, enforced with
        ``Connection.poll``; ``None`` waits forever (liveness is still
        checked every second, so a *crashed* worker is always detected).
    max_retries:
        number of poll windows the deadline is split into (exponential
        backoff); each expired window counts as a retry before the final
        :class:`WorkerTimeoutError`.
    on_failure:
        ``"raise"`` — surface the typed failure to the caller;
        ``"heal"`` — declare the block dead, reroute the exchange topology
        around its sub-filters, drop its partials from the estimate
        reduction, and keep filtering with the survivors.
    respawn_dead:
        with ``on_failure="heal"``, respawn dead blocks at the end of the
        round from particles cloned off the nearest live topological
        neighbours.
    fault_plan:
        optional :class:`~repro.resilience.FaultPlan` injected into every
        worker for reproducible chaos testing.
    heal_bridge:
        bridge a dead sub-filter's neighbours into a cycle (keeps a ring a
        ring); ``False`` just drops the dead node's edges.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig,
                 n_workers: int = 2, *, recv_timeout: float | None = 30.0,
                 max_retries: int = 3, on_failure: str = "raise",
                 respawn_dead: bool = False, fault_plan: FaultPlan | None = None,
                 heal_bridge: bool = True):
        check_positive_int(n_workers, "n_workers")
        if config.n_filters % n_workers:
            raise ValueError(f"n_filters ({config.n_filters}) must divide over {n_workers} workers")
        if on_failure not in ("raise", "heal"):
            raise ValueError(f"on_failure must be 'raise' or 'heal', got {on_failure!r}")
        self.model = model
        self.config = config
        self.n_workers = n_workers
        self.recv_timeout = check_timeout(recv_timeout, "recv_timeout")
        self.max_retries = check_positive_int(max_retries, "max_retries")
        self.on_failure = on_failure
        self.respawn_dead = bool(respawn_dead)
        self.fault_plan = fault_plan
        self.topology = resolve_topology(config.topology, config.n_filters)
        self._table = self.topology.neighbor_table()
        self._mask = self._table >= 0
        self._healer = TopologyHealer(self.topology, bridge=heal_bridge)
        self.report = ResilienceReport()
        self.timer = PhaseTimer()
        self.kernel_seconds: dict[str, float] = {}
        self.k = 0
        self._procs: list = []
        self._conns: list = []
        self._worker_alive: list[bool] = []
        self._seed_tags = [0] * n_workers
        self._block = config.n_filters // n_workers
        self._started = False
        self.last_estimate: np.ndarray | None = None

    # -- process management -----------------------------------------------
    def _block_range(self, w: int) -> tuple[int, int]:
        return w * self._block, (w + 1) * self._block

    def _live_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if self._worker_alive[w]]

    def _spawn_worker(self, w: int) -> None:
        ctx = mp.get_context("fork")
        parent, child = ctx.Pipe()
        lo, hi = self._block_range(w)
        p = ctx.Process(
            target=_worker_loop,
            args=(child, self.model, self.config, lo, hi, w,
                  self.fault_plan, self._seed_tags[w]),
            daemon=True,
        )
        p.start()
        child.close()  # keep only the worker's copy; EOF then means "worker gone"
        self._procs[w] = p
        self._conns[w] = parent
        self._worker_alive[w] = True

    def _start(self) -> None:
        self._procs = [None] * self.n_workers
        self._conns = [None] * self.n_workers
        self._worker_alive = [False] * self.n_workers
        for w in range(self.n_workers):
            self._spawn_worker(w)
        self._started = True

    def close(self) -> None:
        """Stop the worker processes.

        Robust against workers that already crashed or hung: the farewell
        handshake is bounded by ``poll``, and any process still alive after
        a short join is terminated — leaked workers never outlive the run.
        """
        if not self._started:
            return
        for c, p in zip(self._conns, self._procs):
            if c is None:
                continue
            try:
                if p is not None and p.is_alive():
                    c.send(("stop",))
                    if c.poll(1.0):
                        c.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            try:
                c.close()
            except OSError:  # pragma: no cover
                pass
        for p in self._procs:
            if p is None:
                continue
            p.join(timeout=2)
            if p.is_alive():
                p.terminate()
                p.join(timeout=2)
        self._procs, self._conns, self._worker_alive = [], [], []
        self._started = False

    def __enter__(self):
        self.initialize()
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- guarded messaging -------------------------------------------------
    def _send(self, w: int, msg) -> None:
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError) as e:
            raise WorkerCrashedError(
                f"worker {w} pipe failed on send: {e}", worker_id=w, step=self.k
            ) from e

    def _recv(self, w: int, what: str = "reply"):
        """Receive with deadline, liveness checks and bounded backoff.

        The deadline is split into ``max_retries`` exponentially growing
        poll windows; between windows the worker process's liveness is
        checked so a crash is reported as :class:`WorkerCrashedError`
        immediately rather than after the full deadline. With
        ``recv_timeout=None`` the poll loop runs forever in 1 s windows
        (still crash-aware). A structured ``("error", tb)`` reply becomes a
        :class:`WorkerCrashedError` carrying the remote traceback.
        """
        conn, proc = self._conns[w], self._procs[w]
        if self.recv_timeout is None:
            windows = None  # poll forever in 1 s slices
        else:
            n = self.max_retries
            total = float(2 ** n - 1)
            windows = [self.recv_timeout * (2 ** i) / total for i in range(n)]
        attempt = 0
        while True:
            win = 1.0 if windows is None else windows[attempt]
            try:
                if conn.poll(win):
                    msg = conn.recv()
                    if isinstance(msg, tuple) and msg and isinstance(msg[0], str) and msg[0] == "error":
                        raise WorkerCrashedError(
                            f"worker {w} raised remotely during {what}:\n{msg[1]}",
                            worker_id=w, step=self.k, remote_traceback=msg[1],
                        )
                    return msg
            except (EOFError, OSError) as e:
                raise WorkerCrashedError(
                    f"worker {w} pipe failed during {what}: {e}", worker_id=w, step=self.k
                ) from e
            if proc is not None and not proc.is_alive():
                raise WorkerCrashedError(
                    f"worker {w} process exited (code {proc.exitcode}) during {what}",
                    worker_id=w, step=self.k,
                )
            if windows is not None:
                attempt += 1
                if attempt >= len(windows):
                    self.report.timeouts += 1
                    raise WorkerTimeoutError(
                        f"worker {w} did not reply within {self.recv_timeout}s during {what}",
                        worker_id=w, step=self.k,
                    )
                self.report.retries += 1

    # -- failure handling ----------------------------------------------------
    def _handle_failure(self, w: int, exc: WorkerFailure) -> None:
        """Record a failure, then heal or re-raise per ``on_failure``."""
        if isinstance(exc, WorkerTimeoutError):
            kind = "timeout"
        elif getattr(exc, "remote_traceback", None) is not None:
            kind = "error"
        else:
            kind = "crash"
        lo, hi = self._block_range(w)
        self.report.record_failure(self.k, w, kind, detail=str(exc).splitlines()[0],
                                   filters=range(lo, hi))
        if self.on_failure == "raise":
            raise exc
        self._declare_dead(w)

    def _declare_dead(self, w: int) -> None:
        """Terminate worker *w* and route the topology around its block."""
        p = self._procs[w]
        if p is not None and p.is_alive():
            p.terminate()
            p.join(timeout=2)
        c = self._conns[w]
        if c is not None:
            try:
                c.close()
            except OSError:  # pragma: no cover
                pass
        self._conns[w] = None
        self._worker_alive[w] = False
        lo, hi = self._block_range(w)
        self._healer.mark_dead(range(lo, hi))

    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Currently-dead worker blocks (healed around, not yet respawned)."""
        if not self._started:
            return ()
        return tuple(w for w in range(self.n_workers) if not self._worker_alive[w])

    def diagnostics(self) -> dict:
        """JSON-ready resilience snapshot: failures, heals, liveness."""
        out = self.report.summary()
        out["live_workers"] = list(self._live_workers()) if self._started else []
        out["dead_filters"] = list(self._healer.dead)
        return out

    # -- filter protocol ------------------------------------------------------
    def initialize(self) -> None:
        if not self._started:
            self._start()
        for w in self._live_workers():
            try:
                self._send(w, ("init",))
            except WorkerFailure as e:
                self._handle_failure(w, e)
        for w in self._live_workers():
            try:
                self._recv(w, what="init")
            except WorkerFailure as e:
                self._handle_failure(w, e)
        self.k = 0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if not self._started:
            self.initialize()
        cfg = self.config
        t = cfg.n_exchange
        if not self._live_workers():
            raise NoLiveWorkersError("all worker blocks are dead", step=self.k)

        # Phase 1: scatter the measurement, gather tops + estimate partials.
        for w in self._live_workers():
            try:
                self._send(w, ("phase1", measurement, control, self.k, t))
            except WorkerFailure as e:
                self._handle_failure(w, e)
        replies = {}
        for w in self._live_workers():
            try:
                replies[w] = self._recv(w, what="phase1")
            except WorkerFailure as e:
                self._handle_failure(w, e)
        live = [w for w in self._live_workers() if w in replies]
        if not live:
            raise NoLiveWorkersError("all worker blocks died during phase 1", step=self.k)

        # Assemble full-population buffers; dead blocks hold -inf weight
        # placeholders so shapes stay (F, ...) and nothing selects them.
        F, d = cfg.n_filters, self.model.state_dim
        tp = replies[live[0]][0].shape[1]
        send_states = np.zeros((F, tp, d), dtype=replies[live[0]][0].dtype)
        send_logw = np.full((F, tp), -np.inf)
        best_states = np.zeros((F, d))
        best_logw = np.full(F, -np.inf)
        partials = []
        for w in live:
            lo, hi = self._block_range(w)
            r = replies[w]
            send_states[lo:hi], send_logw[lo:hi] = r[0], r[1]
            best_states[lo:hi], best_logw[lo:hi] = r[2], r[3]
            partials.append(r[4])
            self.report.merge_worker_stats(r[5])

        # Global estimate reduction over the live blocks only.
        with self.timer.phase("estimate"):
            estimate = self._reduce_estimate(best_states, best_logw, partials)
        self.last_estimate = estimate

        # Route exchanged particles along the (possibly healed) topology.
        with self.timer.phase("exchange"):
            table, mask = self._healer.neighbor_table()
            if t > 0 and table.shape[1] > 0:
                if self.topology.pooled:
                    # Pooled routing self-heals: dead blocks' -inf placeholders
                    # can never enter the global top-t.
                    recv_states, recv_logw = self._route(
                        "route_pooled", send_states[:, :t], send_logw[:, :t], t
                    )
                    recv_states, recv_logw = recv_states.copy(), recv_logw.copy()
                else:
                    recv_states, recv_logw = self._route(
                        "route_pairwise", send_states[:, :t], send_logw[:, :t], table, mask
                    )
            else:
                recv_states = recv_logw = None

        # Phase 2: deliver each block's incoming particles; workers resample.
        for w in list(live):
            lo, hi = self._block_range(w)
            try:
                if recv_states is None:
                    self._send(w, ("phase2", None, None))
                else:
                    self._send(w, ("phase2", recv_states[lo:hi], recv_logw[lo:hi]))
            except WorkerFailure as e:
                live.remove(w)
                self._handle_failure(w, e)
        stage_seconds: dict[str, float] = {}
        round_kernel_seconds: dict[str, float] = {}
        for w in list(live):
            try:
                reply = self._recv(w, what="phase2")
            except WorkerFailure as e:
                self._handle_failure(w, e)
                continue
            if len(reply) > 1 and isinstance(reply[1], dict):
                for name, sec in reply[1].items():
                    stage_seconds[name] = max(stage_seconds.get(name, 0.0), sec)
            if len(reply) > 2 and isinstance(reply[2], dict):
                for name, sec in reply[2].items():
                    round_kernel_seconds[name] = max(round_kernel_seconds.get(name, 0.0), sec)
        # Workers run concurrently: the critical path per stage is the
        # slowest block, so fold the per-stage *max* into the master's timer
        # (and likewise for the per-kernel breakdown).
        for name, sec in stage_seconds.items():
            self.timer.seconds[name] = self.timer.seconds.get(name, 0.0) + sec
        for name, sec in round_kernel_seconds.items():
            self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + sec

        if self.respawn_dead and self.dead_workers:
            self._respawn_dead_workers()
        self.k += 1
        return estimate

    def _route(self, kernel: str, *args):
        """Dispatch an exchange-routing kernel through the registry, timed."""
        start = time.perf_counter()
        out = default_registry().batch(kernel)(*args)
        elapsed = time.perf_counter() - start
        self.kernel_seconds[kernel] = self.kernel_seconds.get(kernel, 0.0) + elapsed
        return out

    def _reduce_estimate(self, best_states: np.ndarray, best_logw: np.ndarray,
                         partials: list) -> np.ndarray:
        """Two-round reduction over live partials, NaN-safe by construction."""
        if self.config.estimator == "max_weight":
            return max_weight_estimate(best_states[:, None, :], best_logw[:, None])
        finite = [p for p in partials
                  if np.isfinite(p[2]) and np.isfinite(p[1]) and np.all(np.isfinite(p[0]))]
        if finite:
            g = max(p[2] for p in finite)
            num = sum(p[0] * np.exp(p[2] - g) for p in finite)
            den = sum(p[1] * np.exp(p[2] - g) for p in finite)
            if den > 0 and np.all(np.isfinite(num)):
                return (num / den).astype(np.float64)
        # No usable partial survived: weighted mean over the per-filter
        # best particles (itself guarded against NaN states/weights).
        return weighted_mean_estimate(best_states[:, None, :], best_logw[:, None])

    # -- recovery ---------------------------------------------------------------
    def _respawn_dead_workers(self) -> None:
        """Respawn dead blocks from particles cloned off live donors.

        For each dead sub-filter the healer names the nearest live donor by
        hop count on the original topology; the donor block's current
        particles seed the replacement (uniform weights), the new process
        adopts them, and the healed topology restitches the revived ids.
        """
        cfg = self.config
        donor_map = self._healer.donor_map()
        state_cache: dict[int, tuple] = {}
        for w in sorted(self.dead_workers):
            lo, hi = self._block_range(w)
            new_states = np.empty((self._block, cfg.n_particles, self.model.state_dim),
                                  dtype=np.dtype(cfg.dtype))
            new_logw = np.zeros((self._block, cfg.n_particles))
            ok = True
            for f in range(lo, hi):
                donor = donor_map.get(f)
                owner = None if donor is None else donor // self._block
                if owner is None or not self._worker_alive[owner]:
                    ok = False
                    break
                if owner not in state_cache:
                    try:
                        self._send(owner, ("get_state",))
                        state_cache[owner] = self._recv(owner, what="get_state")
                    except WorkerFailure as e:
                        self._handle_failure(owner, e)
                        ok = False
                        break
                donor_states = state_cache[owner][0]
                new_states[f - lo] = donor_states[donor - owner * self._block]
            if not ok:
                continue  # no live donor this round; try again next step
            self._seed_tags[w] += 1
            self._spawn_worker(w)
            try:
                self._send(w, ("adopt", new_states, new_logw))
                self._recv(w, what="adopt")
            except WorkerFailure as e:
                self._handle_failure(w, e)
                continue
            self._healer.revive(range(lo, hi))
            self.report.respawns += 1

    def gather_population(self) -> tuple[np.ndarray, np.ndarray]:
        """Collect the full (states, log_weights) for inspection/tests.

        Dead blocks (healed mode) are returned as NaN so the caller can see
        exactly which sub-filter slots are out of service.
        """
        cfg = self.config
        states = np.full((cfg.n_filters, cfg.n_particles, self.model.state_dim),
                         np.nan, dtype=np.dtype(cfg.dtype))
        logw = np.full((cfg.n_filters, cfg.n_particles), np.nan)
        for w in self._live_workers():
            self._send(w, ("get_state",))
        for w in self._live_workers():
            lo, hi = self._block_range(w)
            s, l = self._recv(w, what="get_state")
            states[lo:hi], logw[lo:hi] = s, l
        return states, logw
