"""Message-passing execution of the distributed filter across processes.

The paper's design is explicitly distributed-memory friendly: all operations
are local to a sub-filter except the neighbour exchange and the estimate
reduction. This backend demonstrates that property end to end with real OS
processes: sub-filters are partitioned into contiguous blocks, one block per
worker process, and each round runs as

1. master -> workers: measurement + control (*scatter*),
2. workers: sample, weight, sort locally; reply with their sub-filters' top-t
   particles and local-estimate partials (*gather*),
3. master: routes exchanged particles along the global topology, reduces the
   global estimate,
4. master -> workers: each block's incoming particles; workers pool and
   resample locally.

Exactly the mpi4py communication pattern (scatter/gather + point-to-point
boundary exchange), built on ``multiprocessing`` pipes so it runs anywhere.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.estimator import global_estimate
from repro.core.parameters import DistributedFilterConfig
from repro.core.registry import make_policy, make_resampler
from repro.kernels.exchange import route_pairwise, route_pooled
from repro.metrics.timing import PhaseTimer
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.topology import ExchangeTopology, make_topology
from repro.utils.validation import check_positive_int



def _worker_loop(conn, model, config, block_lo, block_hi, worker_id):
    """One worker process: owns sub-filters ``block_lo:block_hi``."""
    rng = make_rng(config.rng, config.seed).spawn(1000 + worker_id)
    resampler = make_resampler(config.resampler)
    policy = make_policy(config.resample_policy, config.resample_arg)
    dtype = np.dtype(config.dtype)
    F = block_hi - block_lo
    m = config.n_particles
    states = None
    logw = None
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "init":
                flat = model.initial_particles(F * m, rng, dtype=dtype)
                states = flat.reshape(F, m, model.state_dim)
                logw = np.zeros((F, m))
                conn.send(("ok",))
            elif kind == "phase1":
                _, z, u, k, t = msg
                states = model.transition(states, u, k, rng)
                logw = logw + model.log_likelihood(states, z, k).astype(np.float64)
                order = np.argsort(-logw, axis=1, kind="stable")
                logw = np.take_along_axis(logw, order, axis=1)
                states = np.take_along_axis(states, order[:, :, None], axis=1)
                send_states = states[:, : max(t, 1)].copy()
                send_logw = logw[:, : max(t, 1)].copy()
                # Local-estimate partials for a weighted-mean reduction.
                shift = logw.max()
                w = np.exp(logw - shift)
                partial = (w.reshape(-1) @ states.reshape(-1, model.state_dim), w.sum(), shift)
                conn.send((send_states, send_logw, states[:, 0].copy(), logw[:, 0].copy(), partial))
            elif kind == "phase2":
                _, recv_states, recv_logw = msg
                if recv_states is not None and recv_states.shape[1] > 0:
                    pooled_states = np.concatenate([states, recv_states.astype(states.dtype)], axis=1)
                    pooled_logw = np.concatenate([logw, recv_logw], axis=1)
                else:
                    pooled_states, pooled_logw = states, logw
                local_w = np.exp(logw - logw.max(axis=1, keepdims=True))
                mask = policy.should_resample(local_w, rng)
                if mask.any():
                    w = np.exp(pooled_logw - pooled_logw.max(axis=1, keepdims=True))
                    idx = resampler.resample_batch(w[mask], m, rng)
                    states[mask] = np.take_along_axis(pooled_states[mask], idx[:, :, None], axis=1)
                    logw[mask] = 0.0
                conn.send(("ok",))
            elif kind == "get_state":
                conn.send((states, logw))
            elif kind == "stop":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {kind!r}")
    finally:
        conn.close()


class MultiprocessDistributedParticleFilter:
    """The distributed filter executed across worker processes.

    Statistically equivalent to :class:`DistributedParticleFilter` (different
    RNG stream layout), with genuinely distributed state: the master never
    holds the particle population, only boundary particles and estimates —
    the same data-movement contract as a cluster implementation.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig, n_workers: int = 2):
        check_positive_int(n_workers, "n_workers")
        if config.n_filters % n_workers:
            raise ValueError(f"n_filters ({config.n_filters}) must divide over {n_workers} workers")
        self.model = model
        self.config = config
        self.n_workers = n_workers
        if isinstance(config.topology, ExchangeTopology):
            self.topology = config.topology
        else:
            self.topology = make_topology(str(config.topology), config.n_filters)
        self._table = self.topology.neighbor_table()
        self._mask = self._table >= 0
        self.timer = PhaseTimer()
        self.k = 0
        self._procs: list[mp.Process] = []
        self._conns = []
        self._block = config.n_filters // n_workers
        self._started = False
        self.last_estimate: np.ndarray | None = None

    # -- process management -----------------------------------------------
    def _start(self) -> None:
        ctx = mp.get_context("fork")
        for w in range(self.n_workers):
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_worker_loop,
                args=(child, self.model, self.config, w * self._block, (w + 1) * self._block, w),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
            self._conns.append(parent)
        self._started = True

    def close(self) -> None:
        """Stop the worker processes."""
        if not self._started:
            return
        for c in self._conns:
            try:
                c.send(("stop",))
                c.recv()
                c.close()
            except (BrokenPipeError, EOFError):  # pragma: no cover
                pass
        for p in self._procs:
            p.join(timeout=5)
        self._procs, self._conns = [], []
        self._started = False

    def __enter__(self):
        self.initialize()
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- filter protocol ------------------------------------------------------
    def initialize(self) -> None:
        if not self._started:
            self._start()
        for c in self._conns:
            c.send(("init",))
        for c in self._conns:
            c.recv()
        self.k = 0

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if not self._started:
            self.initialize()
        cfg = self.config
        t = cfg.n_exchange
        # Phase 1: scatter the measurement, gather tops + estimate partials.
        for c in self._conns:
            c.send(("phase1", measurement, control, self.k, t))
        replies = [c.recv() for c in self._conns]
        send_states = np.concatenate([r[0] for r in replies])  # (F, t', d)
        send_logw = np.concatenate([r[1] for r in replies])
        best_states = np.concatenate([r[2] for r in replies])  # (F, d)
        best_logw = np.concatenate([r[3] for r in replies])

        # Global estimate reduction.
        if cfg.estimator == "max_weight":
            estimate = best_states[int(np.argmax(best_logw))].astype(np.float64)
        else:
            shifts = np.array([r[4][2] for r in replies])
            g = shifts.max()
            num = sum(r[4][0] * np.exp(r[4][2] - g) for r in replies)
            den = sum(r[4][1] * np.exp(r[4][2] - g) for r in replies)
            estimate = (num / den).astype(np.float64) if den > 0 else best_states.mean(axis=0)
        self.last_estimate = estimate

        # Route exchanged particles along the global topology (same kernels
        # the single-process filter uses).
        if t > 0 and self._table.shape[1] > 0:
            if self.topology.pooled:
                recv_states, recv_logw = route_pooled(send_states[:, :t], send_logw[:, :t], t)
                recv_states, recv_logw = recv_states.copy(), recv_logw.copy()
            else:
                recv_states, recv_logw = route_pairwise(
                    send_states[:, :t], send_logw[:, :t], self._table, self._mask
                )
        else:
            recv_states = recv_logw = None

        # Phase 2: deliver each block's incoming particles; workers resample.
        for w, c in enumerate(self._conns):
            lo, hi = w * self._block, (w + 1) * self._block
            if recv_states is None:
                c.send(("phase2", None, None))
            else:
                c.send(("phase2", recv_states[lo:hi], recv_logw[lo:hi]))
        for c in self._conns:
            c.recv()
        self.k += 1
        return estimate

    def gather_population(self) -> tuple[np.ndarray, np.ndarray]:
        """Collect the full (states, log_weights) for inspection/tests."""
        for c in self._conns:
            c.send(("get_state",))
        parts = [c.recv() for c in self._conns]
        return np.concatenate([p[0] for p in parts]), np.concatenate([p[1] for p in parts])
