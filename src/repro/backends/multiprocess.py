"""Message-passing execution of the distributed filter across processes.

The paper's design is explicitly distributed-memory friendly: all operations
are local to a sub-filter except the neighbour exchange and the estimate
reduction. This backend demonstrates that property end to end with real OS
processes: sub-filters are partitioned into contiguous blocks, one block per
worker process, and each round runs as

1. master -> workers: measurement + control (*scatter*),
2. workers: sample, weight, sort locally; reply with their sub-filters' top-t
   particles and local-estimate partials (*gather*),
3. master: routes exchanged particles along the global topology, reduces the
   global estimate,
4. master -> workers: each block's incoming particles; workers pool and
   resample locally.

Exactly the mpi4py communication pattern (scatter/gather + point-to-point
boundary exchange), built on ``multiprocessing`` pipes so it runs anywhere.

Data plane
----------
How the payloads move is delegated to a :mod:`~repro.backends.transport`
(``transport="pipe"`` pickles everything over the pipes; ``transport="shm"``
keeps the per-round payloads in preallocated double-buffered shared-memory
slabs and ships only tiny headers). Independently of the transport, the
master's gather is a poll-driven event loop over all live workers
(:func:`multiprocessing.connection.wait`): replies are consumed in arrival
order, and for pairwise topologies a block's phase-2 routing is dispatched
as soon as the blocks it routes *from* have reported — overlapping the
master's exchange routing with still-running workers. The routing table is
frozen at round start so results are bit-identical regardless of arrival
order (a block that dies mid-round keeps its ``-inf`` placeholders for the
current round — harmless at the resampler — and is healed out of the table
from the next round on).

Fault tolerance
---------------
Because the algorithm is local by construction, a failed worker block is
survivable: the master detects it (deadline on every reply via the event
loop's poll windows, liveness checks on the process, remote tracebacks as
structured ``("error", tb)`` replies), reroutes the exchange topology around
the dead sub-filters with a :class:`~repro.resilience.TopologyHealer`, drops
the dead block's partials from the estimate reduction, and — when
``respawn_dead=True`` — respawns the block by cloning particles from the
nearest surviving topological neighbours (the exchange primitive reused as
a recovery primitive), with fresh transport slabs. A dead worker's shared
segments are reclaimed (closed *and* unlinked) immediately and counted in
``ResilienceReport.segments_reclaimed``. ``on_failure="raise"`` instead
surfaces a typed :class:`~repro.resilience.WorkerTimeoutError` /
:class:`~repro.resilience.WorkerCrashedError`. A seeded
:class:`~repro.resilience.FaultPlan` can inject crashes, hangs, poisoned
weights and corrupted exchange particles for reproducible chaos testing.

Durability
----------
All master↔worker waiting (gathers, handshakes, the farewell on ``close``)
runs on the shared :class:`~repro.resilience.retry.RetryPolicy` primitives.
With a :class:`~repro.resilience.supervisor.Supervisor` attached, workers
additionally publish out-of-band heartbeats at every stage boundary (shm: a
dedicated slab field; pipe: tiny beat messages), so a worker killed or hung
*inside* a long compute phase is detected by the failure detector before
the gather deadline — escalating retry → heal → respawn →
checkpoint-and-abort. :meth:`MultiprocessDistributedParticleFilter.save_checkpoint`
/ ``load_checkpoint`` write and restore atomic, versioned snapshots
(population, per-worker RNG states, healed topology, resilience counters)
with a golden-trace guarantee: resuming at a step boundary is bit-identical
to the uninterrupted run, including runs whose topology healed or respawned
mid-flight.

See ``docs/robustness.md`` for the failure model and
``docs/architecture.md`` ("Data plane") for the transport protocol.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from multiprocessing.connection import wait as _wait_for_connections

import numpy as np

from repro.allocation import (
    allocation_capacity,
    make_allocation_policy,
    mass_concentration,
    pad_population,
    row_logsumexp,
    share_from_logsumexp,
    subfilter_ess,
)
from repro.backends.transport import SlabLayout, make_transport
from repro.backends.worker_rng import FilterStripedRNG
from repro.core.dtypes import resolve_dtype_policy
from repro.core.estimator import max_weight_estimate, weighted_mean_estimate
from repro.core.parameters import DistributedFilterConfig, distributed_config_to_dict
from repro.core.registry import make_policy, make_resampler
from repro.engine import (
    ExecutionContext,
    FilterState,
    KernelTimingHook,
    StepPipeline,
    TimerHook,
)
from repro.engine.vector_stages import LocalHealStage, ResampleStage, SampleWeightStage, SortStage
from repro.kernels.registry import CostParams, default_registry
from repro.metrics.timing import PhaseTimer, TimingRNG
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng
from repro.resilience.checkpoint import (
    corrupt_checkpoint_file,
    normalize_config_record,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.errors import (
    CheckpointError,
    NoLiveWorkersError,
    WorkerCrashedError,
    WorkerFailure,
    WorkerHeartbeatError,
    WorkerTimeoutError,
)
from repro.resilience.faults import FaultInjectionHook, FaultPlan, corrupt_send_states
from repro.resilience.healing import TopologyHealer
from repro.resilience.membership import Membership
from repro.resilience.monitor import HealMonitorHook, ResilienceReport
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import HeartbeatHook, Supervisor
from repro.telemetry.tracer import Tracer, spans_from_wire, spans_to_wire
from repro.topology import resolve_topology, shard_table_view
from repro.utils.arrays import sanitize_log_weights
from repro.utils.validation import check_positive_int


def _delegated_init(model, rng, i, m, dtype):
    """Draw one sub-filter's initial particles from its own stream."""
    with rng.delegating(i):
        return model.initial_particles(m, rng, dtype=dtype)


def _worker_loop(chan, model, config, ids, worker_id,
                 fault_plan=None, rng_spec=("worker", 0), heartbeat=False):
    """One worker process: owns the global sub-filters listed in ``ids``.

    The round's kernels are not implemented here: the worker builds the
    shared engine stages over its local block and runs the *local-only*
    subset of Algorithm 2 — ``sampling -> heal -> sort`` on a phase-1
    message, ``resample`` on a phase-2 message — while the exchange stage is
    routed through the master's message-passing boundary. Fault injection
    and self-healing accounting attach as stage hooks; a timer hook records
    per-stage seconds under the canonical stage names, shipped back with the
    phase-2 reply. All payload movement goes through the worker *channel*
    (:mod:`repro.backends.transport`), which presents the same logical
    messages whether the bytes travelled by pipe pickle or shared slab.

    Any exception inside a message handler is reported back to the master
    as a structured ``("error", traceback_str)`` reply instead of dying
    silently (which would leave the master blocked on ``recv``).

    ``rng_spec`` selects the randomness partition: ``("worker", seed_tag)``
    is the historical one-stream-per-process policy (the tag distinguishes
    respawn generations so a replacement never replays its predecessor's
    draws); ``("filter", {filter_id: tag})`` serves the same batched draws
    through a :class:`FilterStripedRNG` — one stream per owned sub-filter —
    which makes every draw a function of the *sub-filter*, not the worker,
    so results are invariant to how sub-filters shard over processes.

    Beyond the classic message kinds, three support the shard-aware
    topology: ``("shard", payload)`` installs a
    :class:`~repro.topology.ShardView` (one-way; no reply), ``("phase2c",
    t, packed_s, packed_w)`` runs phase 2 from cut-edge particles only
    (local slots are filled from the worker's own post-sort buffers,
    bit-identical to the dense route), and ``("grow", ...)`` merges adopted
    sub-filters into the local population mid-run (elastic rebalancing).

    With ``heartbeat=True`` a :class:`HeartbeatHook` leads the hook list,
    publishing liveness at every stage boundary *from the compute thread* —
    deliberately not from a side thread, so a hang (injected or real) stops
    the beats exactly like a crash does. ``snapshot``/``restore`` messages
    serve the checkpoint layer: the reply/restore payload carries the
    block's population, the RNG's full internal state, and the self-healing
    counters — everything that determines the block's future draws.
    """
    timer = PhaseTimer()
    ids = np.sort(np.asarray(ids, dtype=np.int64))
    rng_mode, rng_arg = rng_spec
    if rng_mode == "filter":
        inner = FilterStripedRNG(config.rng, config.seed, ids,
                                 tags=[int(rng_arg.get(int(f), 0)) for f in ids])
    else:
        inner = make_rng(config.rng, config.seed).spawn(
            1000 + worker_id + 100_000 * int(rng_arg))
    rng = TimingRNG(inner, timer)
    from repro.kernels.forms import ExecutionPolicy

    dtype_policy = resolve_dtype_policy(config.dtype_policy, config.dtype)
    dtype = dtype_policy.state
    wdt = dtype_policy.weight
    F = int(ids.size)
    m = config.n_particles
    shard_view = None
    m_cap = allocation_capacity(config)
    adaptive = m_cap != m
    state = FilterState()
    ctx = ExecutionContext(
        model=model, config=config, rng=rng,
        resampler=make_resampler(config.resampler),
        policy=make_policy(config.resample_policy, config.resample_arg),
        dtype=dtype,
        exec_policy=ExecutionPolicy.from_config(config.execution),
        dtype_policy=dtype_policy,
    )
    tracer = Tracer()
    heal_hook = HealMonitorHook(tracer=tracer)

    def _cost_params():
        # Adaptive allocation: charge kernels at the block's actual mean
        # live width, which moves between rounds.
        m_live = m if state.widths is None else max(1, round(state.live_particles / F))
        return CostParams(m=m_live, state_dim=model.state_dim, n_groups=F,
                          dtype_bytes=dtype.itemsize, n_exchange=config.n_exchange)

    kernel_hook = KernelTimingHook(tracer=tracer, cost_params=_cost_params)
    hooks = [FaultInjectionHook(fault_plan, worker_id, tracer=tracer),
             heal_hook, TimerHook(timer, tracer=tracer), kernel_hook]
    if heartbeat:
        # First in the list: the stage-entry beat lands before fault
        # injection can kill/hang the stage, mirroring a real worker that
        # was demonstrably alive when the stage began.
        hooks.insert(0, HeartbeatHook(chan, fault_plan, worker_id))
    local_pipeline = StepPipeline(
        [SampleWeightStage(), LocalHealStage(), SortStage(force=True)], hooks=hooks
    )
    resample_pipeline = StepPipeline([ResampleStage()], hooks=hooks)
    reported_errors = 0

    def _finish_phase2(recv_states, recv_logw):
        """Pool incoming particles, resample, reply with round telemetry."""
        nonlocal reported_errors
        if recv_states is not None and recv_states.shape[1] > 0:
            recv_logw = np.asarray(recv_logw, dtype=wdt).copy()
            # Corrupted incoming particles must never be selected.
            sanitize_log_weights(recv_logw, recv_states)
            state.pooled_states = np.concatenate(
                [state.states, recv_states.astype(state.states.dtype)], axis=1
            )
            state.pooled_logw = np.concatenate([state.log_weights, recv_logw], axis=1)
        else:
            state.pooled_states, state.pooled_logw = state.states, state.log_weights
        resample_pipeline.run_stages(ctx, state)
        kernel_seconds = dict(kernel_hook.kernel_seconds)
        kernel_hook.kernel_seconds.clear()
        kernel_hook.kernel_calls.clear()
        # Telemetry piggybacks on the phase-2 reply: this round's spans
        # (empty unless the master requested tracing in the phase-1
        # header), counter deltas, suppressed hook-error count, and this
        # process's clock *now* — the master uses receipt time minus this
        # clock to align the timelines.
        spans, counters = tracer.drain()
        errors = (local_pipeline.telemetry_errors
                  + resample_pipeline.telemetry_errors)
        telemetry = {
            "pid": tracer.pid,
            "clock": tracer.clock(),
            "spans": spans_to_wire(spans),
            "counters": counters,
            "errors": errors - reported_errors,
        }
        reported_errors = errors
        chan.reply_phase2(dict(timer.seconds), kernel_seconds, telemetry)

    try:
        while True:
            msg = chan.recv()
            if heartbeat:
                chan.beat(0)
            kind = msg[0]
            try:
                if kind == "init":
                    if rng_mode == "filter":
                        # One init draw per sub-filter from its own stream —
                        # the same (m, d) draw it would perform under any
                        # partition, which is what shard parity pins.
                        states = np.stack([
                            _delegated_init(model, rng, i, m, dtype)
                            for i in range(F)])
                    else:
                        flat = model.initial_particles(F * m, rng, dtype=dtype)
                        states = flat.reshape(F, m, model.state_dim)
                    logw = np.zeros((F, m), dtype=wdt)
                    widths = None
                    if adaptive:
                        states, logw = pad_population(states, logw, m_cap)
                        widths = np.full(F, m, dtype=np.int64)
                    state.reset(states, logw, widths=widths)
                    chan.send(("ok",))
                elif kind == "adopt":
                    # Respawn path: start from particles cloned off a donor.
                    _, new_states, new_logw, new_widths = msg
                    state.reset(
                        np.ascontiguousarray(new_states, dtype=dtype).reshape(
                            F, m_cap, model.state_dim),
                        np.asarray(new_logw, dtype=wdt).reshape(F, m_cap).copy(),
                        widths=new_widths,
                    )
                    chan.send(("ok",))
                elif kind == "phase1":
                    _, z, u, k, t, trace, new_widths = msg
                    tracer.enabled = bool(trace)
                    if new_widths is not None and state.widths is not None:
                        w_arr = np.asarray(new_widths, dtype=np.int64)
                        if not np.array_equal(w_arr, state.widths):
                            # Deterministic resize before sampling (no RNG,
                            # no pool at round start), so checkpoint/resume
                            # stays bit-exact across a width change.
                            ctx.invoke_kernel(state, "migrate_resize",
                                              state.states, state.log_weights,
                                              state.widths, w_arr)
                            state.widths = w_arr.copy()
                    state.measurement, state.control, state.k = z, u, k
                    timer.reset()
                    local_pipeline.run_stages(ctx, state)
                    states, logw = state.states, state.log_weights
                    tp = max(t, 1)
                    if fault_plan is None:
                        # The channel copies on send; no private copy needed.
                        send_states = states[:, :tp]
                    else:
                        # Corruption must hit only the *sent* copy, never the
                        # worker's own particles.
                        send_states = states[:, :tp].copy()
                        corrupt_send_states(fault_plan, worker_id, k, send_states)
                    # Per-sub-filter estimate partials, keyed downstream by
                    # global id: [Σ_j w·x (d) | Σ_j w | row shift]. Row-local
                    # shifts (not a block max) make every row's value
                    # independent of which other rows share the worker, so
                    # the master's reduction is shard-invariant. einsum
                    # accumulates each row sequentially over m — the same
                    # bits under any partition.
                    d_ = model.state_dim
                    shift = logw.max(axis=1)
                    safe = np.where(np.isfinite(shift), shift, 0.0)
                    w = state.scratch("partial.w", logw.shape, np.float64)
                    np.subtract(logw, safe[:, None], out=w)
                    np.exp(w, out=w)
                    partial = np.empty((F, d_ + 2), dtype=np.float64)
                    partial[:, :d_] = np.einsum("fm,fmd->fd", w, states)
                    partial[:, d_] = w.sum(axis=1)
                    partial[:, d_ + 1] = shift
                    alloc = None
                    if adaptive:
                        # Pre-resample allocation metrics: per-sub-filter ESS
                        # plus the weight-mass logsumexp, which is globally
                        # comparable — the master concatenates all blocks'
                        # rows and softmaxes once.
                        alloc = (subfilter_ess(logw), row_logsumexp(logw))
                    chan.reply_phase1(k, send_states, logw[:, :tp], states[:, 0],
                                      logw[:, 0], partial, dict(heal_hook.last_round),
                                      alloc)
                elif kind == "phase2":
                    _, recv_states, recv_logw = msg
                    _finish_phase2(recv_states, recv_logw)
                elif kind == "shard":
                    # One-way push of this worker's ShardView payload (slot
                    # coordinates of local vs. wire exchange sources). No
                    # reply: the framed transport preserves ordering, so the
                    # next phase2c is guaranteed to see it installed.
                    shard_view = msg[1]
                elif kind == "phase2c":
                    # Cut-edge phase 2: the master shipped only the wire
                    # slots; local slots are filled from this worker's own
                    # post-sort buffers. The reconstructed receive table is
                    # bit-identical to the dense route's.
                    _, t2, packed_s, packed_w = msg
                    if shard_view is None:
                        raise RuntimeError("phase2c before any shard view")
                    _vids, D, li, lj, lsrc, wi, wj, _wvalid = shard_view
                    if D == 0 or t2 == 0:
                        _finish_phase2(None, None)
                    else:
                        rs = np.empty((F, D, t2, model.state_dim),
                                      dtype=state.states.dtype)
                        rw = np.empty((F, D, t2), dtype=wdt)
                        if li.size:
                            rs[li, lj] = state.states[lsrc, :t2]
                            rw[li, lj] = state.log_weights[lsrc, :t2]
                        if wi.size:
                            rs[wi, wj] = packed_s
                            rw[wi, wj] = packed_w
                        _finish_phase2(rs.reshape(F, D * t2, model.state_dim),
                                       rw.reshape(F, D * t2))
                elif kind == "grow":
                    # Elastic rebalance: merge adopted sub-filters (donor
                    # clones, uniform weights) into the local population,
                    # keeping global-id-ascending row order, and give each
                    # adopted id a fresh generation-tagged RNG stream.
                    _, new_ids, g_states, g_logw, g_widths, g_tags = msg
                    new_ids = np.asarray(new_ids, dtype=np.int64)
                    merged = np.concatenate([ids, new_ids])
                    order = np.argsort(merged)
                    n_new = int(new_ids.size)
                    ns = np.empty((F + n_new, m_cap, model.state_dim), dtype=dtype)
                    lw = np.empty((F + n_new, m_cap), dtype=wdt)
                    ns[:F] = state.states
                    ns[F:] = np.ascontiguousarray(g_states, dtype=dtype).reshape(
                        n_new, m_cap, model.state_dim)
                    lw[:F] = state.log_weights
                    lw[F:] = np.asarray(g_logw, dtype=wdt).reshape(n_new, m_cap)
                    new_widths = None
                    if state.widths is not None:
                        new_widths = np.concatenate(
                            [state.widths,
                             np.asarray(g_widths, dtype=np.int64)])[order]
                    k_saved = state.k
                    heal_saved = dict(state.heal_counters)
                    state.reset(np.ascontiguousarray(ns[order]),
                                np.ascontiguousarray(lw[order]),
                                widths=new_widths)
                    state.k, state.heal_counters = k_saved, heal_saved
                    ids = merged[order]
                    F = int(ids.size)
                    if hasattr(rng.inner, "adopt"):
                        rng.inner.adopt(new_ids, [int(x) for x in g_tags])
                    shard_view = None  # stale coordinates after the merge
                    chan.send(("ok",))
                elif kind == "get_state":
                    chan.send((state.states, state.log_weights))
                elif kind == "snapshot":
                    # Checkpoint capture: population + the exact RNG state +
                    # healing counters (+ live widths under adaptive
                    # allocation). Tagged so a gather that had to abort a
                    # round can tell snapshots from stale round replies.
                    chan.send(("snap", state.states, state.log_weights,
                               rng.state_dict(),
                               {k: int(v) for k, v in state.heal_counters.items()},
                               None if state.widths is None else state.widths.copy()))
                elif kind == "restore":
                    _, new_states, new_logw, k, rng_state, heal_counters, widths = msg
                    state.reset(
                        np.ascontiguousarray(new_states, dtype=dtype).reshape(
                            F, m_cap, model.state_dim),
                        np.asarray(new_logw, dtype=wdt).reshape(F, m_cap).copy(),
                        widths=widths,
                    )
                    state.k = int(k)
                    # Merge over reset()'s defaults: an elastic restore sends
                    # no counters (they are shard-local aggregates) and must
                    # still leave every counter key present.
                    state.heal_counters.update(
                        {key: int(v) for key, v in heal_counters.items()})
                    rng.load_state_dict(rng_state)
                    chan.send(("ok",))
                elif kind == "stop":
                    chan.send(("bye",))
                    return
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown message {kind!r}")
            except Exception:  # noqa: BLE001 - forwarded to the master
                chan.send(("error", traceback.format_exc()))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        chan.close()


class MultiprocessDistributedParticleFilter:
    """The distributed filter executed across worker processes.

    Statistically equivalent to :class:`DistributedParticleFilter` (different
    RNG stream layout), with genuinely distributed state: the master never
    holds the particle population, only boundary particles and estimates —
    the same data-movement contract as a cluster implementation.

    Parameters
    ----------
    transport:
        the data plane moving per-round payloads between master and workers:
        ``"pipe"`` (pickle over pipes, the reference) or ``"shm"``
        (preallocated double-buffered shared-memory slabs; pipes carry only
        control headers). Filtering results are bit-identical across
        transports.
    recv_timeout:
        deadline [s] for every worker reply, enforced with poll windows in
        the gather event loop; ``None`` waits forever (liveness is still
        checked every second, so a *crashed* worker is always detected).
    max_retries:
        number of poll windows the deadline is split into (exponential
        backoff); each expired window counts as a retry before the final
        :class:`WorkerTimeoutError`.
    on_failure:
        ``"raise"`` — surface the typed failure to the caller;
        ``"heal"`` — declare the block dead, reroute the exchange topology
        around its sub-filters, drop its partials from the estimate
        reduction, and keep filtering with the survivors.
    respawn_dead:
        with ``on_failure="heal"``, respawn dead blocks at the end of the
        round from particles cloned off the nearest live topological
        neighbours (with fresh transport slabs).
    fault_plan:
        optional :class:`~repro.resilience.FaultPlan` injected into every
        worker for reproducible chaos testing.
    heal_bridge:
        bridge a dead sub-filter's neighbours into a cycle (keeps a ring a
        ring); ``False`` just drops the dead node's edges.
    supervisor:
        optional :class:`~repro.resilience.supervisor.Supervisor`. When set,
        workers publish stage-boundary heartbeats and the gather loop runs
        the supervisor's failure detector while it waits, so a kill/hang
        *during* a compute phase is detected before the gather deadline
        (as a :class:`WorkerHeartbeatError`). When ``None`` (default) no
        heartbeat work happens anywhere — neither in the workers nor in the
        gather loop — keeping the undisturbed hot path unchanged.
    """

    def __init__(self, model: StateSpaceModel, config: DistributedFilterConfig,
                 n_workers: int = 2, *, transport: str = "pipe",
                 recv_timeout: float | None = 30.0,
                 max_retries: int = 3, on_failure: str = "raise",
                 respawn_dead: bool = False, rebalance_dead: bool = False,
                 shard_exchange: str = "auto",
                 fault_plan: FaultPlan | None = None,
                 heal_bridge: bool = True, supervisor: Supervisor | None = None):
        check_positive_int(n_workers, "n_workers")
        if config.n_filters % n_workers:
            raise ValueError(f"n_filters ({config.n_filters}) must divide over {n_workers} workers")
        if on_failure not in ("raise", "heal"):
            raise ValueError(f"on_failure must be 'raise' or 'heal', got {on_failure!r}")
        self.model = model
        self.config = config
        self.n_workers = n_workers
        self.transport = make_transport(transport)
        caps = self.transport.caps
        if shard_exchange not in ("auto", "on", "off"):
            raise ValueError(
                f"shard_exchange must be 'auto', 'on' or 'off', "
                f"got {shard_exchange!r}")
        if shard_exchange == "on" and not caps.framed:
            raise ValueError(
                f"shard_exchange='on' needs a framed transport "
                f"(transport {self.transport.name!r} moves payloads through "
                f"fixed-size slabs)")
        #: cut-edge exchange: ship only the particles that actually cross a
        #: shard boundary. ``auto`` turns it on for cross-host transports
        #: (where wire bytes are the cost that matters) and leaves local
        #: transports on the dense route; results are bitwise identical
        #: either way.
        self.shard_exchange = shard_exchange
        self._shard_exchange_on = (
            shard_exchange == "on"
            or (shard_exchange == "auto" and caps.cross_host))
        if rebalance_dead:
            if respawn_dead:
                raise ValueError(
                    "respawn_dead and rebalance_dead are exclusive recovery "
                    "strategies; pick one")
            if on_failure != "heal":
                raise ValueError("rebalance_dead requires on_failure='heal'")
            if not caps.elastic:
                raise ValueError(
                    f"rebalance_dead needs an elastic (framed) transport, "
                    f"not {self.transport.name!r}")
            if config.rng_streams != "filter":
                raise ValueError(
                    "rebalance_dead requires rng_streams='filter': adopted "
                    "sub-filters must carry their own RNG streams to stay "
                    "deterministic on the surviving workers")
        self.rebalance_dead = bool(rebalance_dead)
        #: the waiting discipline shared by every master↔worker path.
        self.retry = RetryPolicy(timeout=recv_timeout, max_retries=max_retries)
        self.recv_timeout = self.retry.timeout
        self.max_retries = self.retry.max_retries
        self._close_retry = RetryPolicy(timeout=1.0, max_retries=1)
        self.supervisor = supervisor
        self.on_failure = on_failure
        self.respawn_dead = bool(respawn_dead)
        self.fault_plan = fault_plan
        self.topology = resolve_topology(config.topology, config.n_filters)
        self._table = self.topology.neighbor_table()
        self._mask = self._table >= 0
        self.heal_bridge = bool(heal_bridge)
        self._healer = TopologyHealer(self.topology, bridge=self.heal_bridge)
        #: width-aware allocation: the master owns the policy and the global
        #: width vector; workers only ever see their own block's widths.
        self.alloc_policy = make_allocation_policy(config)
        self._capacity = allocation_capacity(config)
        self._widths: np.ndarray | None = None
        self.alloc_counters = {"particles_migrated": 0, "width_changes": 0}
        self.report = ResilienceReport()
        self.timer = PhaseTimer()
        self.kernel_seconds: dict[str, float] = {}
        #: master-side telemetry collector; worker spans are merged into it
        #: clock-aligned at phase-2 receipt. Disabled (near-zero cost) until
        #: an exporter is attached or ``tracer.enabled`` is set.
        self.tracer = Tracer()
        self.tracer.labels[self.tracer.pid] = "master"
        #: hook/exporter exceptions suppressed across master AND workers.
        self.telemetry_errors = 0
        #: payload sends that left the shm slab for the inline pipe path
        #: (oversized arrays, healed-wider phase-2 widths). Always 0 for the
        #: pipe transport, whose inline form is the native path.
        self.transport_fallbacks = 0
        self.k = 0
        self._procs: list = []
        self._chans: list = []
        #: group membership: worker statuses + the filter→worker shard
        #: assignment, with an epoch that invalidates cached shard views.
        self.membership = Membership(config.n_filters, n_workers)
        self._seed_tags = [0] * n_workers
        #: per-sub-filter RNG generation tags (``rng_streams="filter"``):
        #: bumped when a sub-filter is re-seeded by respawn or rebalance
        #: adoption, so a replacement stream never replays the original.
        self._filter_tags = np.zeros(config.n_filters, dtype=np.int64)
        self._block = config.n_filters // n_workers
        #: cached per-worker ShardViews + the (membership, topology) epoch
        #: they were pushed at; a stale view is recomputed and re-pushed.
        self._shard_views: dict[int, object] = {}
        self._shard_sync: dict[int, tuple] = {}
        self._topo_epoch = 0
        #: serialized cut-edge payload bytes/particles (shard exchange).
        self.shard_cut_bytes = 0
        self.shard_cut_particles = 0
        #: cumulative transport byte counters (transports that meter them).
        self.transport_bytes = {"sent": 0, "received": 0}
        self._started = False
        self._scratch_pool: dict[str, np.ndarray] = {}
        self.last_estimate: np.ndarray | None = None
        # Slab capacities for the shared-memory transport, sized exactly to
        # the unhealed topology so the routed width fills the slab slot
        # end-to-end (a full-width slice is contiguous, letting the master
        # gather straight into the slab). A healed topology whose table grows
        # wider (torus bridging) transparently falls back to the inline pipe
        # path for the affected rounds, so this is a fast path, not a limit.
        t_cap = max(config.n_exchange, 1)
        recv_cap = t_cap if self.topology.pooled else self._table.shape[1] * t_cap
        # Slab field sizes derive from the resolved dtype policy: the wire
        # format is exactly the in-memory format, so a float32 policy halves
        # the per-round particle/weight payload end to end.
        self.dtype_policy = resolve_dtype_policy(config.dtype_policy, config.dtype)
        self._layout = SlabLayout(
            n_block=self._block, n_particles=config.n_particles,
            state_dim=model.state_dim, t_cap=t_cap, recv_cap=max(recv_cap, 1),
            meas_cap=max(int(getattr(model, "measurement_dim", 1)), 1),
            ctrl_cap=max(int(getattr(model, "control_dim", 0)), 1),
            dtype=self.dtype_policy.state,
            weight_dtype=self.dtype_policy.weight,
        )

    # -- process management -----------------------------------------------
    def _owned(self, w: int) -> np.ndarray:
        """Global sub-filter ids worker *w* currently owns, ascending."""
        return self.membership.owned(w)

    def _live_workers(self) -> list[int]:
        return self.membership.live_workers()

    def _rng_spec(self, w: int) -> tuple:
        if self.config.rng_streams == "filter":
            return ("filter", {int(f): int(self._filter_tags[f])
                               for f in self._owned(w)})
        return ("worker", self._seed_tags[w])

    def _spawn_worker(self, w: int) -> None:
        ctx = mp.get_context("fork")
        master_chan, worker_chan = self.transport.channel_pair(ctx, self._layout)
        p = ctx.Process(
            target=_worker_loop,
            args=(worker_chan, self.model, self.config, self._owned(w).copy(),
                  w, self.fault_plan, self._rng_spec(w),
                  self.supervisor is not None),
            daemon=True,
        )
        p.start()
        master_chan.after_start()  # drop the worker-side ends: EOF = worker gone
        self._procs[w] = p
        self._chans[w] = master_chan
        self.membership.join(w, self.k)
        self._shard_sync.pop(w, None)  # a fresh process holds no view

    def _start(self, assignment=None) -> None:
        self._procs = [None] * self.n_workers
        self._chans = [None] * self.n_workers
        self.membership = Membership(self.config.n_filters, self.n_workers,
                                     assignment=assignment)
        self._shard_views, self._shard_sync = {}, {}
        for w in range(self.n_workers):
            self._spawn_worker(w)
        self._started = True

    def close(self) -> None:
        """Stop the worker processes and release transport resources.

        Robust against workers that already crashed or hung: the farewell
        handshake is bounded by ``poll``, and any process still alive after
        a short join is terminated — leaked workers (and leaked shared
        segments) never outlive the run.
        """
        if not self._started:
            return
        for chan, p in zip(self._chans, self._procs):
            if chan is None:
                continue
            try:
                if p is not None and p.is_alive():
                    chan.request(("stop",))
                    # Same bounded-wait discipline as the gathers; drains any
                    # heartbeat messages queued ahead of the farewell.
                    dl = self._close_retry.deadline(time.perf_counter())
                    while True:
                        if not chan.conn.poll(dl.remaining(time.perf_counter())):
                            if dl.expire(time.perf_counter()) != "retry":
                                break
                            continue
                        msg = chan.conn.recv()
                        if not (isinstance(msg, tuple) and msg
                                and isinstance(msg[0], str) and msg[0] == "beat"):
                            break
            except (BrokenPipeError, EOFError, OSError):
                pass
        for p in self._procs:
            if p is None:
                continue
            p.join(timeout=2)
            if p.is_alive():
                p.terminate()
                p.join(timeout=2)
        # Unlink shared segments only after the workers are gone so a live
        # worker never loses its mapping mid-write.
        for chan in self._chans:
            if chan is not None:
                chan.close()
        self._procs, self._chans = [], []
        for w in range(self.n_workers):
            if self.membership.is_live(w):
                self.membership.leave(w, self.k, detail="close")
        self._started = False

    def __enter__(self):
        self.initialize()
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- guarded messaging -------------------------------------------------
    def _send(self, w: int, msg) -> None:
        try:
            self._chans[w].request(msg)
        except (BrokenPipeError, OSError) as e:
            raise WorkerCrashedError(
                f"worker {w} pipe failed on send: {e}", worker_id=w, step=self.k
            ) from e

    def _recv(self, w: int, what: str = "reply"):
        """Receive one reply from one worker (control-plane paths).

        Same deadline/liveness/backoff semantics as :meth:`_gather`, for
        the serial handshakes (init, adopt, get_state, restore).
        """
        out = self._gather([w], what=what, handle_failures=False)
        return out[w]

    def _gather(self, workers, what: str, handler=None, handle_failures=True,
                accept=None):
        """Poll-driven gather: consume replies from *workers* in arrival order.

        The reference implementation received replies in worker order, so a
        slow worker 0 head-of-line-blocked the master even when workers 1..n
        had long replied. Here a single :func:`multiprocessing.connection.wait`
        loop drains whichever connections are ready (ties broken by worker id
        for determinism) and invokes *handler(w, msg)* on each arrival —
        which is what lets the master overlap exchange routing with
        still-running workers.

        Waiting runs on the shared :class:`RetryPolicy` deadlines: each
        worker gets ``recv_timeout`` split into ``max_retries``
        exponentially growing poll windows (``None`` polls forever in 1 s
        windows); each expired window bumps ``report.retries``, the last one
        bumps ``report.timeouts`` and raises/heals a
        :class:`WorkerTimeoutError`. A readable connection that EOFs, a
        dead process, or a structured ``("error", tb)`` reply becomes a
        :class:`WorkerCrashedError`. With a supervisor attached, the loop
        additionally samples every pending worker's heartbeat counter at
        the supervisor's check interval; a worker whose beats stall for
        ``max_missed`` consecutive windows fails *mid-window* with a
        :class:`WorkerHeartbeatError` (or ``WorkerCrashedError`` if the
        process is found dead) — before the gather deadline fires.

        With ``handle_failures`` a failure is routed through
        :meth:`_handle_failure` (which re-raises under
        ``on_failure="raise"``); otherwise it propagates to the caller.
        ``accept`` optionally filters replies: messages it rejects (stale
        round replies drained during checkpoint-on-abort) are discarded and
        the wait continues. ``("beat", ...)`` messages are absorbed into
        the channel's heartbeat counter and never complete a wait.

        Returns ``{worker_id: reply}`` for the workers that replied.
        """
        now = time.perf_counter()
        deadlines = {w: self.retry.deadline(now) for w in workers}
        pending = set(workers)
        results: dict[int, object] = {}
        sup = self.supervisor
        if sup is not None:
            for w in workers:
                sup.begin_wait(w, self._chans[w].heartbeat(), now)

        def fail(w: int, exc: WorkerFailure) -> None:
            pending.discard(w)
            if handle_failures:
                self._handle_failure(w, exc)
            else:
                raise exc

        while pending:
            conn_of = {self._chans[w].conn: w for w in pending}
            now = time.perf_counter()
            timeout = min(deadlines[w].remaining(now) for w in pending)
            if sup is not None:
                timeout = min(timeout, sup.check_interval)
            ready = _wait_for_connections(list(conn_of), timeout)
            for conn in sorted(ready, key=conn_of.__getitem__):
                w = conn_of[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError) as e:
                    fail(w, WorkerCrashedError(
                        f"worker {w} pipe failed during {what}: {e}",
                        worker_id=w, step=self.k))
                    continue
                if isinstance(msg, tuple) and msg and isinstance(msg[0], str) \
                        and msg[0] == "beat":
                    self._chans[w].note_beat(msg)
                    continue
                if isinstance(msg, tuple) and msg and isinstance(msg[0], str) \
                        and msg[0] == "error":
                    fail(w, WorkerCrashedError(
                        f"worker {w} raised remotely during {what}:\n{msg[1]}",
                        worker_id=w, step=self.k, remote_traceback=msg[1]))
                    continue
                if accept is not None and not accept(msg):
                    continue  # stale reply from an interrupted round
                if sup is not None:
                    sup.note_reply(w, time.perf_counter())
                pending.discard(w)
                results[w] = msg
                if handler is not None:
                    handler(w, msg)
            # Bookkeeping runs every iteration (not only on an empty poll):
            # on the pipe transport, beats from healthy workers keep waking
            # the wait, and the stalled worker must still be noticed.
            now = time.perf_counter()
            for w in sorted(pending):
                proc = self._procs[w]
                if sup is not None:
                    verdict = sup.observe(w, self._chans[w].heartbeat(), now, self.k)
                    if verdict != "ok":
                        self.report.heartbeat_misses += 1
                        self.tracer.count("heartbeat.miss")
                    if verdict == "dead":
                        self.report.heartbeat_failures += 1
                        self.tracer.count("heartbeat.dead")
                        if proc is not None and not proc.is_alive():
                            fail(w, WorkerCrashedError(
                                f"worker {w} process exited (code {proc.exitcode}) "
                                f"during {what} (heartbeat lost)",
                                worker_id=w, step=self.k))
                        else:
                            fail(w, WorkerHeartbeatError(
                                f"worker {w} stopped heartbeating during {what} "
                                f"({sup.max_missed} windows of "
                                f"{sup.beat_timeout:g}s missed)",
                                worker_id=w, step=self.k))
                        continue
                if not deadlines[w].due(now):
                    continue
                if proc is not None and not proc.is_alive():
                    fail(w, WorkerCrashedError(
                        f"worker {w} process exited (code {proc.exitcode}) during {what}",
                        worker_id=w, step=self.k))
                    continue
                expiry = deadlines[w].expire(now)
                if expiry == "timeout":
                    self.report.timeouts += 1
                    self.tracer.count("retry.timeout")
                    fail(w, WorkerTimeoutError(
                        f"worker {w} did not reply within {self.recv_timeout}s during {what}",
                        worker_id=w, step=self.k))
                elif expiry == "retry":
                    self.report.retries += 1
                    self.tracer.count("retry.window_expired")
        return results

    # -- failure handling ----------------------------------------------------
    def _handle_failure(self, w: int, exc: WorkerFailure) -> None:
        """Record a failure, then heal or checkpoint-and-raise per ``on_failure``."""
        if isinstance(exc, WorkerHeartbeatError):
            kind = "heartbeat"
        elif isinstance(exc, WorkerTimeoutError):
            kind = "timeout"
        elif getattr(exc, "remote_traceback", None) is not None:
            kind = "error"
        else:
            kind = "crash"
        self.report.record_failure(self.k, w, kind, detail=str(exc).splitlines()[0],
                                   filters=[int(f) for f in self._owned(w)])
        if self.on_failure == "raise":
            sup = self.supervisor
            if sup is not None and sup.checkpoint_on_abort:
                self._checkpoint_and_abort(w)
            raise exc
        self.report.record_escalation("heal")
        self.tracer.count("escalation.heal")
        if self.supervisor is not None:
            self.supervisor.escalate("heal", w, self.k, detail=kind)
        self._declare_dead(w)

    def _checkpoint_and_abort(self, w: int) -> None:
        """Final ladder rung: retire the failed worker, save the survivors.

        Best-effort by design — the *original* failure is the one the caller
        must see, so a checkpoint that cannot be taken (no live workers, a
        second failure mid-save) is swallowed after being counted. The saved
        checkpoint is marked ``boundary: False``: survivors were interrupted
        mid-round, so resuming replays the aborted step (deterministically,
        but not bit-identical to a run that never aborted).
        """
        sup = self.supervisor
        self._declare_dead(w)
        sup.escalate("abort", w, self.k,
                     detail=f"checkpoint to {sup.checkpoint_on_abort}")
        self.report.record_escalation("abort")
        self.tracer.count("escalation.abort")
        try:
            self.save_checkpoint(sup.checkpoint_on_abort, boundary=False)
        except Exception:
            self.tracer.count("checkpoint.abort_save_failed")

    def _declare_dead(self, w: int, count_reclaim: bool = True) -> None:
        """Terminate worker *w*, reclaim its slabs, heal around its block.

        ``count_reclaim=False`` is the checkpoint-restore path: blocks that
        were already dead at save time are retired again in the fresh
        process tree, but their reclaims were counted before the save — the
        restored report must not count them twice.
        """
        p = self._procs[w]
        if p is not None and p.is_alive():
            p.terminate()
            p.join(timeout=2)
        chan = self._chans[w]
        if chan is not None:
            # The dead worker can never run its own close: the master closes
            # AND unlinks its shared segments here so nothing leaks (and the
            # resource_tracker stays clean).
            reclaimed = chan.close()
            if count_reclaim:
                self.report.segments_reclaimed += reclaimed
        self._chans[w] = None
        if self.membership.is_live(w):
            self.membership.evict(w, self.k, detail="declared dead")
        self._healer.mark_dead(self._owned(w))
        self._topo_epoch += 1

    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Currently-dead worker shards (healed around, not yet recovered)."""
        if not self._started:
            return ()
        return tuple(w for w in range(self.n_workers)
                     if not self.membership.is_live(w))

    def diagnostics(self) -> dict:
        """JSON-ready resilience snapshot: failures, heals, liveness."""
        out = self.report.summary()
        out["live_workers"] = list(self._live_workers()) if self._started else []
        out["dead_filters"] = list(self._healer.dead)
        out["membership"] = self.membership.summary()
        out["shard"] = {
            "exchange": self.shard_exchange,
            "exchange_on": self._shard_exchange_on,
            "cut_bytes": int(self.shard_cut_bytes),
            "cut_particles": int(self.shard_cut_particles),
        }
        out["transport_bytes"] = dict(self.transport_bytes)
        return out

    # -- filter protocol ------------------------------------------------------
    def initialize(self) -> None:
        cfg = self.config
        self._widths = None
        if self._capacity != cfg.n_particles:
            self._widths = np.full(cfg.n_filters, cfg.n_particles, dtype=np.int64)
        self.alloc_counters = {"particles_migrated": 0, "width_changes": 0}
        if not self._started:
            self._start()
        for w in self._live_workers():
            try:
                self._send(w, ("init",))
            except WorkerFailure as e:
                self._handle_failure(w, e)
        self._gather(self._live_workers(), what="init")
        self.k = 0

    def _scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable master-side buffer (allocation-free steady state)."""
        arr = self._scratch_pool.get(key)
        if arr is None or arr.shape != shape or arr.dtype != np.dtype(dtype):
            arr = np.empty(shape, dtype=np.dtype(dtype))
            self._scratch_pool[key] = arr
        return arr

    def _count_fallbacks(self, n: int) -> None:
        if n:
            self.transport_fallbacks += n
            self.tracer.count("transport_fallbacks", n)

    def step(self, measurement: np.ndarray, control: np.ndarray | None = None) -> np.ndarray:
        if not self._started:
            self.initialize()
        cfg = self.config
        t = cfg.n_exchange
        if not self._live_workers():
            raise NoLiveWorkersError("all worker blocks are dead", step=self.k)
        # Snapshot the tracing flag once per round: workers are told in the
        # phase-1 header whether to record spans, so master and workers agree
        # for the whole round even if the caller flips the tracer mid-step.
        tracing = self.tracer.enabled
        step_k = self.k
        step_t0 = self.tracer.clock() if tracing else 0.0

        # Assembly buffers for the full population boundary; dead blocks hold
        # -inf weight placeholders so shapes stay (F, ...) and nothing
        # selects them. Reused across rounds.
        F, d = cfg.n_filters, self.model.state_dim
        tp = max(t, 1)
        send_states = self._scratch("send_states", (F, tp, d), self.dtype_policy.state)
        send_logw = self._scratch("send_logw", (F, tp), self.dtype_policy.weight)
        best_states = self._scratch("best_states", (F, d), np.float64)
        best_logw = self._scratch("best_logw", (F,), np.float64)
        send_states[...] = 0.0
        best_states[...] = 0.0
        send_logw.fill(-np.inf)
        best_logw.fill(-np.inf)
        # Per-sub-filter estimate partials, assembled by global id so the
        # weighted-mean reduction sees the same (F, d+2) array no matter how
        # the sub-filters shard over workers. Dead rows stay [0 | 0 | -inf].
        partial = self._scratch("partials", (F, d + 2), np.float64)
        partial[:, : d + 1] = 0.0
        partial[:, d + 1] = -np.inf

        # The routing table is FROZEN at round start: every block of this
        # round is routed with the same table no matter when its reply
        # arrives, so the overlap below cannot perturb results. A block that
        # dies mid-round simply leaves its -inf placeholders in the send
        # buffers (never resampled); the healer reroutes from the next round.
        table, mask = self._healer.neighbor_table()
        exchange_on = t > 0 and table.shape[1] > 0
        pooled = self.topology.pooled

        # Source-block dependencies for eager (overlapped) phase-2 dispatch:
        # block w can be routed once every block its table rows read from has
        # reported. Pooled topologies need the global pool -> gather barrier.
        owner = self.membership.owner_of()
        deps: dict[int, set[int]] | None
        if not exchange_on:
            deps = {w: set() for w in range(self.n_workers)}
        elif pooled:
            deps = None
        else:
            deps = {}
            for w in range(self.n_workers):
                ids = self._owned(w)
                src = table[ids][mask[ids]]
                deps[w] = set(owner[src].tolist()) - {-1}

        arrived: set[int] = set()
        dispatched: set[int] = set()
        p2_sent: list[int] = []
        any_partial = False
        pooled_route: tuple[np.ndarray, np.ndarray] | None = None

        # Adaptive allocation: global metric assembly for the end-of-round
        # decision. Dead blocks keep ESS 0 / -inf mass (zero influence).
        adaptive = self._widths is not None
        if adaptive:
            alloc_ess = self._scratch("alloc_ess", (F,), np.float64)
            alloc_lse = self._scratch("alloc_lse", (F,), np.float64)
            alloc_ess.fill(0.0)
            alloc_lse.fill(-np.inf)
        alloc_seen: set[int] = set()

        def dispatch_phase2(w: int) -> None:
            """Route block w's incoming particles and send its phase-2 message."""
            dispatched.add(w)
            try:
                if not exchange_on:
                    if self._chans[w].send_phase2(self.k, None, None):
                        self._count_fallbacks(1)
                elif pooled:
                    ids = self._owned(w)
                    if self._chans[w].send_phase2(
                            self.k, pooled_route[0][ids], pooled_route[1][ids]):
                        self._count_fallbacks(1)
                elif self._shard_exchange_on:
                    self._route_block_shard(w, t, send_states, send_logw,
                                            owner, table, mask)
                else:
                    self._route_block(w, t, send_states, send_logw, table, mask)
                p2_sent.append(w)
            except (BrokenPipeError, OSError) as e:
                self._handle_failure(w, WorkerCrashedError(
                    f"worker {w} pipe failed on phase2 send: {e}",
                    worker_id=w, step=self.k))

        def on_phase1(w: int, msg) -> None:
            nonlocal any_partial
            r = self._chans[w].decode_phase1(msg, t)
            ids = self._owned(w)
            send_states[ids] = r[0]
            send_logw[ids] = r[1]
            best_states[ids] = r[2]
            best_logw[ids] = r[3]
            partial[ids] = r[4]
            any_partial = True
            self.report.merge_worker_stats(r[5])
            if adaptive and len(r) > 6 and r[6] is not None:
                # Copy out immediately: shm hands back live slab views.
                alloc_ess[ids] = r[6][0]
                alloc_lse[ids] = r[6][1]
                alloc_seen.add(w)
            arrived.add(w)
            if deps is None:
                return
            # Overlap: route any arrived block whose sources have all arrived
            # while the remaining workers are still computing.
            for w2 in sorted(arrived - dispatched):
                if self.membership.is_live(w2) and deps[w2] <= arrived:
                    dispatch_phase2(w2)

        # Phase 1: scatter the measurement (and, under adaptive allocation,
        # each block's live widths for this round) to every live worker...
        for w in self._live_workers():
            try:
                self._count_fallbacks(
                    self._chans[w].send_phase1(
                        measurement, control, self.k, t, tracing,
                        self._widths[self._owned(w)] if adaptive else None))
            except (BrokenPipeError, OSError) as e:
                self._handle_failure(w, WorkerCrashedError(
                    f"worker {w} pipe failed on phase1 send: {e}",
                    worker_id=w, step=self.k))
        # ...then gather tops + estimate partials in arrival order.
        self._gather(self._live_workers(), what="phase1", handler=on_phase1)
        if not any_partial:
            raise NoLiveWorkersError("all worker blocks died during phase 1", step=self.k)

        # Global estimate reduction over the assembled per-filter partials
        # (a fixed (F, d+2) array: the float sum cannot depend on arrival
        # order or on the shard assignment).
        est_t0 = self.tracer.clock() if tracing else 0.0
        with self.timer.phase("estimate"):
            estimate = self._reduce_estimate(best_states, best_logw, partial)
        if tracing:
            self.tracer.add("estimate", "stage", est_t0, self.tracer.clock(),
                            attrs={"kernel": "reduce_estimate"})
        self.last_estimate = estimate

        # Route + dispatch whatever the overlap could not cover: pooled
        # topologies (global barrier) and blocks with late/dead sources.
        rest = [w for w in sorted(arrived - dispatched)
                if self.membership.is_live(w)]
        if rest and exchange_on and pooled and pooled_route is None:
            # Pooled routing self-heals: dead blocks' -inf placeholders can
            # never enter the global top-t.
            pooled_route = self._route(
                "route_pooled", send_states[:, :t], send_logw[:, :t], t)
        for w in rest:
            dispatch_phase2(w)

        # Phase 2 gather: per-stage / per-kernel worker timings.
        stage_seconds: dict[str, float] = {}
        round_kernel_seconds: dict[str, float] = {}

        def on_phase2(w: int, msg) -> None:
            recv_clock = self.tracer.clock()
            stages, kernels, telem = self._chans[w].decode_phase2(msg)
            if isinstance(stages, dict):
                for name, sec in stages.items():
                    stage_seconds[name] = max(stage_seconds.get(name, 0.0), sec)
            if isinstance(kernels, dict):
                for name, sec in kernels.items():
                    round_kernel_seconds[name] = max(round_kernel_seconds.get(name, 0.0), sec)
            if isinstance(telem, dict):
                self._merge_worker_telemetry(w, telem, recv_clock)

        self._gather([w for w in p2_sent if self.membership.is_live(w)],
                     what="phase2", handler=on_phase2)
        # Workers run concurrently: the critical path per stage is the
        # slowest block, so fold the per-stage *max* into the master's timer
        # (and likewise for the per-kernel breakdown).
        for name, sec in stage_seconds.items():
            self.timer.seconds[name] = self.timer.seconds.get(name, 0.0) + sec
        for name, sec in round_kernel_seconds.items():
            self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + sec

        # End-of-round allocation decision: only with complete global metrics
        # and a fully healthy topology (a degraded round freezes the widths —
        # re-apportioning around dead blocks would strand budget on rows that
        # cannot resize).
        if (adaptive and not self._healer.dead
                and alloc_seen >= set(self._live_workers())):
            self._allocate_round(alloc_ess, alloc_lse, tracing)

        if self.rebalance_dead and self.dead_workers:
            self._rebalance_dead_workers()
        elif self.respawn_dead and self.dead_workers:
            self._respawn_dead_workers()
        if self.transport.caps.byte_counters:
            sent = recv = 0
            for w in self._live_workers():
                chan = self._chans[w]
                sent += int(getattr(chan, "bytes_sent", 0))
                recv += int(getattr(chan, "bytes_received", 0))
            self.transport_bytes = {"sent": sent, "received": recv}
            self.tracer.gauge("transport.bytes_sent", sent)
            self.tracer.gauge("transport.bytes_received", recv)
        if tracing:
            # Recorded with explicit endpoints rather than begin/end so a
            # mid-step failure can never leave the span stack unbalanced.
            self.tracer.add(f"step {step_k}", "step", step_t0, self.tracer.clock(),
                            attrs={"k": step_k})
        self.k += 1
        return estimate

    def _merge_worker_telemetry(self, w: int, telem: dict, recv_clock: float) -> None:
        """Fold one worker's phase-2 telemetry into the master tracer.

        Clock alignment: the worker stamped its own ``perf_counter`` reading
        into the reply immediately before sending; ``recv_clock - clock`` is
        therefore (master-worker clock skew + transport latency), an upper
        bound that places worker spans at most one reply-delivery late on the
        merged timeline.
        """
        errors = int(telem.get("errors") or 0)
        if errors:
            self.telemetry_errors += errors
            self.tracer.count("telemetry_errors", errors)
        for name, value in (telem.get("counters") or {}).items():
            self.tracer.count(name, value)
        rows = telem.get("spans") or ()
        if rows:
            offset = recv_clock - float(telem["clock"])
            self.tracer.merge(spans_from_wire(rows, offset), label=f"worker-{w}")

    def _route_block(self, w: int, t: int, send_states, send_logw, table, mask) -> None:
        """Pairwise-route one block's rows, preferably straight into its slab.

        Equivalent to slicing ``route_pairwise(...)[lo:hi]`` but gathers only
        this block's rows — and when the transport exposes shared phase-2
        buffers, the gather writes directly into the worker's recv slab
        (zero-copy: no intermediate array, no pickle).
        """
        ids = self._owned(w)
        rows = table[ids]
        rmask = mask[ids]
        B, D = rows.shape
        d = send_states.shape[2]
        width = D * t
        start = time.perf_counter()
        chan = self._chans[w]
        bufs = chan.phase2_buffers(self.k, width)
        # The gather needs C-contiguous destinations (np.take's out=); slab
        # slices narrower than the preallocated capacity are strided, so
        # those stage through master scratch and finish with one memcpy into
        # the slab — still no pickle on the payload.
        direct = (bufs is not None
                  and bufs[0].flags.c_contiguous and bufs[1].flags.c_contiguous)
        if direct:
            out_s, out_w = bufs
        else:
            out_s = self._scratch(f"recv_states.{w}", (B, width, d), send_states.dtype)
            out_w = self._scratch(f"recv_logw.{w}", (B, width), send_logw.dtype)
        src = np.maximum(rows, 0)
        np.take(send_states[:, :t], src, axis=0, out=out_s.reshape(B, D, t, d))
        np.take(send_logw[:, :t], src, axis=0, out=out_w.reshape(B, D, t))
        out_w.reshape(B, D, t)[~rmask] = -np.inf
        elapsed = time.perf_counter() - start
        self.kernel_seconds["route_pairwise"] = (
            self.kernel_seconds.get("route_pairwise", 0.0) + elapsed)
        self.timer.seconds["exchange"] = self.timer.seconds.get("exchange", 0.0) + elapsed
        if self.tracer.enabled:
            self.tracer.add("exchange", "stage", start, start + elapsed,
                            attrs={"kernel": "route_pairwise", "block": w,
                                   "width": width, "direct": direct})
        if direct:
            chan.send_phase2_ready(self.k, width)
        elif bufs is not None:
            bufs[0][...] = out_s
            bufs[1][...] = out_w
            chan.send_phase2_ready(self.k, width)
        else:
            if chan.send_phase2(self.k, out_s, out_w):
                self._count_fallbacks(1)

    def _shard_view(self, w: int, owner, table, mask):
        """Worker *w*'s ShardView, recomputed and pushed when stale.

        Staleness is keyed on ``(membership epoch, topology epoch)``: any
        join/evict/rebalance or heal/revive invalidates every cached view.
        The refreshed payload is pushed with a one-way ``("shard", ...)``
        message; the framed transport's ordering guarantees the worker
        installs it before the phase2c that relies on it.
        """
        epoch = (self.membership.epoch, self._topo_epoch)
        if self._shard_sync.get(w) != epoch:
            view = shard_table_view(w, self._owned(w), owner, table, mask)
            self._chans[w].request(("shard", view.wire_payload()))
            self._shard_views[w] = view
            self._shard_sync[w] = epoch
        return self._shard_views[w]

    def _route_block_shard(self, w: int, t: int, send_states, send_logw,
                           owner, table, mask) -> None:
        """Cut-edge phase-2 dispatch: serialize only wire-slot particles.

        Intra-shard slots never leave the master: the worker fills them from
        its own post-sort buffers. Wire slots (out-of-shard sources plus
        masked/dead placeholders) are packed here with exactly the values
        the dense route would have gathered — including the row-0 filler and
        ``-inf`` log-weights for invalid slots — so the worker's pooled
        candidate set is bit-identical to an unsharded round.
        """
        start = time.perf_counter()
        view = self._shard_view(w, owner, table, mask)
        src = np.maximum(view.wire_src, 0)
        packed_s = np.ascontiguousarray(send_states[:, :t][src])
        packed_w = send_logw[:, :t][src].copy()
        packed_w[~view.wire_valid] = -np.inf
        nbytes = packed_s.nbytes + packed_w.nbytes
        self.shard_cut_bytes += nbytes
        self.shard_cut_particles += int(src.size) * t
        self.tracer.count("shard.cut_bytes", nbytes)
        elapsed = time.perf_counter() - start
        self.kernel_seconds["route_shard"] = (
            self.kernel_seconds.get("route_shard", 0.0) + elapsed)
        self.timer.seconds["exchange"] = (
            self.timer.seconds.get("exchange", 0.0) + elapsed)
        if self.tracer.enabled:
            self.tracer.add("exchange", "stage", start, start + elapsed,
                            attrs={"kernel": "route_shard", "block": w,
                                   "wire_slots": int(src.size),
                                   "cut_bytes": nbytes})
        self._chans[w].request(("phase2c", t, packed_s, packed_w))

    def _route(self, kernel: str, *args):
        """Dispatch an exchange-routing kernel through the registry, timed."""
        start = time.perf_counter()
        out = default_registry().batch(kernel)(*args)
        elapsed = time.perf_counter() - start
        self.kernel_seconds[kernel] = self.kernel_seconds.get(kernel, 0.0) + elapsed
        self.timer.seconds["exchange"] = self.timer.seconds.get("exchange", 0.0) + elapsed
        if self.tracer.enabled:
            self.tracer.add("exchange", "stage", start, start + elapsed,
                            attrs={"kernel": kernel})
        return out

    def _reduce_estimate(self, best_states: np.ndarray, best_logw: np.ndarray,
                         partial: np.ndarray) -> np.ndarray:
        """Reduction over the global per-filter partials, NaN-safe.

        ``partial`` is the assembled ``(F, d+2)`` array of per-sub-filter
        ``[Σ w·x | Σ w | row shift]`` rows. Because the array is keyed by
        global filter id, it is identical no matter how the sub-filters
        were sharded over workers — which makes the weighted-mean estimate
        (like the max-weight one) shard-invariant to the bit. Dead or fully
        degenerate rows carry ``-inf`` shifts and scale to exactly zero.
        """
        if self.config.estimator == "max_weight":
            return max_weight_estimate(best_states[:, None, :], best_logw[:, None])
        d = self.model.state_dim
        shift, wsum = partial[:, d + 1], partial[:, d]
        finite = (np.isfinite(shift) & np.isfinite(wsum) & (wsum > 0)
                  & np.all(np.isfinite(partial[:, :d]), axis=1))
        if finite.any():
            g = shift[finite].max()
            scale = np.zeros(shift.shape[0], dtype=np.float64)
            scale[finite] = np.exp(shift[finite] - g)
            num = np.einsum("f,fd->d", scale, partial[:, :d])
            den = float(scale @ wsum)
            if den > 0 and np.all(np.isfinite(num)):
                return (num / den).astype(np.float64)
        # No usable partial survived: weighted mean over the per-filter
        # best particles (itself guarded against NaN states/weights).
        return weighted_mean_estimate(best_states[:, None, :], best_logw[:, None])

    # -- adaptive allocation ----------------------------------------------------
    def _allocate_round(self, ess: np.ndarray, lse: np.ndarray,
                        tracing: bool) -> None:
        """Decide next round's width vector from this round's global metrics.

        The master combines every block's pre-resample metrics (the
        worker-local logsumexps softmax into global weight-mass shares),
        runs the allocation policy, and records the new widths; they reach
        the workers with the *next* phase-1 scatter, where each block
        resizes deterministically before sampling. ``particles_migrated``
        counts exactly what :func:`repro.allocation.migrate.resize_block`
        will move, so master counters match worker behaviour without an
        extra reply field.
        """
        start = time.perf_counter()
        share = share_from_logsumexp(lse)
        for i, value in enumerate(ess):
            self.tracer.gauge(f"alloc.ess.f{i}", value)
        self.tracer.gauge("alloc.mass_hhi", mass_concentration(share))
        new_widths = self.alloc_policy.decide(self._widths, ess, share)
        changes = int((new_widths != self._widths).sum())
        if changes:
            migrated = int(np.abs(new_widths - self._widths).sum())
            self.alloc_counters["width_changes"] += changes
            self.alloc_counters["particles_migrated"] += migrated
            self.tracer.count("alloc.width_changes", changes)
            self.tracer.count("alloc.particles_migrated", migrated)
            self._widths = np.asarray(new_widths, dtype=np.int64)
        for i, w in enumerate(self._widths):
            self.tracer.gauge(f"alloc.width.f{i}", int(w))
        elapsed = time.perf_counter() - start
        self.timer.seconds["allocate"] = (
            self.timer.seconds.get("allocate", 0.0) + elapsed)
        if tracing:
            self.tracer.add("allocate", "stage", start, start + elapsed,
                            attrs={"policy": self.alloc_policy.name,
                                   "width_changes": changes})

    @property
    def widths(self) -> np.ndarray | None:
        """Per-sub-filter live widths (``None`` under the fixed layout).

        The master's view: widths *decided* at the last completed round,
        which the workers apply at the start of the next one.
        """
        return None if self._widths is None else self._widths.copy()

    @property
    def live_particles(self) -> int:
        """Total live particles across sub-filters (excludes padding)."""
        if self._widths is None:
            return self.config.total_particles
        return int(self._widths.sum())

    # -- recovery ---------------------------------------------------------------
    def _respawn_dead_workers(self) -> None:
        """Respawn dead blocks from particles cloned off live donors.

        For each dead sub-filter the healer names the nearest live donor by
        hop count on the original topology; the donor block's current
        particles seed the replacement (uniform weights), the new process —
        with freshly allocated transport slabs — adopts them, and the healed
        topology restitches the revived ids.
        """
        cfg = self.config
        donor_map = self._healer.donor_map()
        owner_of = self.membership.live_owner_of()
        state_cache: dict[int, tuple] = {}
        for w in sorted(self.dead_workers):
            ids = self._owned(w)
            if ids.size == 0:
                continue  # rebalanced away; nothing to respawn
            B = int(ids.size)
            new_states, new_logw, new_widths, ok = self._clone_from_donors(
                ids, donor_map, owner_of, state_cache)
            if not ok:
                continue  # no live donor this round; try again next step
            if cfg.rng_streams == "filter":
                # Fresh per-filter generations: the replacement streams must
                # never replay the dead worker's draws.
                self._filter_tags[ids] += 1
            else:
                self._seed_tags[w] += 1
            self._spawn_worker(w)
            try:
                self._send(w, ("adopt", new_states, new_logw, new_widths))
                self._recv(w, what="adopt")
            except WorkerFailure as e:
                self._handle_failure(w, e)
                continue
            self._healer.revive(ids)
            self._topo_epoch += 1
            self.report.respawns += 1
            self.report.record_escalation("respawn")
            self.tracer.count("escalation.respawn")
            if self.supervisor is not None:
                self.supervisor.escalate("respawn", w, self.k,
                                         detail=f"seed_tag={self._seed_tags[w]}")

    def _clone_from_donors(self, ids: np.ndarray, donor_map: dict,
                           owner_of: np.ndarray, state_cache: dict):
        """Donor-cloned ``(states, logw, widths, ok)`` for the given ids.

        For each sub-filter the healer names the nearest live donor by hop
        count on the original topology; the donor's current particles seed
        the replacement at uniform weights. ``ok=False`` when any id lacks
        a reachable live donor (the caller retries next round).
        """
        B = int(ids.size)
        new_states = np.empty((B, self._capacity, self.model.state_dim),
                              dtype=self.dtype_policy.state)
        new_logw = np.zeros((B, self._capacity), dtype=self.dtype_policy.weight)
        new_widths = None
        if self._widths is not None:
            # Revived rows resume at the widths the master has been holding
            # for them (frozen while dead); slots beyond each row's width
            # are padding again.
            new_widths = self._widths[ids].copy()
            for i in range(B):
                new_logw[i, int(new_widths[i]):] = -np.inf
        for i, f in enumerate(ids):
            donor = donor_map.get(int(f))
            owner = None if donor is None else int(owner_of[donor])
            if owner is None or owner < 0 or not self.membership.is_live(owner):
                return None, None, None, False
            if owner not in state_cache:
                try:
                    self._send(owner, ("get_state",))
                    state_cache[owner] = (self._recv(owner, what="get_state"),
                                          self._owned(owner).copy())
                except WorkerFailure as e:
                    self._handle_failure(owner, e)
                    return None, None, None, False
            (donor_states, _), donor_ids = state_cache[owner]
            new_states[i] = donor_states[int(np.searchsorted(donor_ids, donor))]
        return new_states, new_logw, new_widths, True

    def _rebalance_dead_workers(self) -> None:
        """Deal a dead shard's sub-filters to the survivors, mid-run.

        The leader-driven last rung before checkpoint-and-abort: instead of
        respawning a replacement process, the dead worker's sub-filters are
        redistributed (deterministically — ascending id to the least-loaded
        survivor) and each survivor *grows* its local population with donor
        clones. Requires ``rng_streams="filter"``: the adopted sub-filters
        bring their own fresh generation-tagged streams with them, so the
        survivors' existing draws are untouched and the post-rebalance run
        is a pure function of the failure history.
        """
        for w in sorted(self.dead_workers):
            orphans = self._owned(w)
            if orphans.size == 0:
                continue  # already rebalanced; the worker just stays dead
            donor_map = self._healer.donor_map()
            owner_of = self.membership.live_owner_of()
            # Donor rows are looked up against pre-grow ownership, so all
            # donor state is fetched before any survivor's layout changes.
            state_cache: dict[int, tuple] = {}
            clones: dict[int, tuple] = {}
            ok = True
            moves_plan = {s: ids for s, ids in
                          self._plan_rebalance(w).items() if ids.size}
            for s, ids in sorted(moves_plan.items()):
                cs, cl, cw, ok = self._clone_from_donors(
                    ids, donor_map, owner_of, state_cache)
                if not ok:
                    break
                clones[s] = (cs, cl, cw)
            if not ok:
                continue  # no donors yet; retry next round
            moves = self.membership.rebalance(w, self.k)
            self._topo_epoch += 1
            for s in sorted(moves):
                ids = moves[s]
                self._filter_tags[ids] += 1
                cs, cl, cw = clones[s]
                tags = [int(x) for x in self._filter_tags[ids]]
                try:
                    self._send(s, ("grow", ids, cs, cl, cw, tags))
                    self._recv(s, what="grow")
                except WorkerFailure as e:
                    self._handle_failure(s, e)
                    continue
                self._healer.revive(ids)
                self._topo_epoch += 1
            self.report.record_escalation("rebalance")
            self.tracer.count("escalation.rebalance")
            if self.supervisor is not None:
                self.supervisor.escalate(
                    "rebalance", w, self.k,
                    detail=f"{int(orphans.size)} filters over "
                           f"{len(moves)} survivors")

    def _plan_rebalance(self, dead_worker: int) -> dict[int, np.ndarray]:
        """Dry-run of :meth:`Membership.rebalance` (same deterministic deal)."""
        orphans = self._owned(dead_worker)
        live = self._live_workers()
        loads = {s: int(self._owned(s).size) for s in live}
        out: dict[int, list[int]] = {s: [] for s in live}
        for f in orphans.tolist():
            s = min(live, key=lambda x: (loads[x], x))
            out[s].append(f)
            loads[s] += 1
        return {s: np.asarray(ids, dtype=np.int64) for s, ids in out.items()}

    # -- checkpoint / restore ---------------------------------------------------
    def _collect_snapshots(self, strict: bool = True) -> dict[int, tuple]:
        """``{worker: (states, logw, rng_state, heal_counters)}`` from live blocks.

        Snapshot replies are tagged ``("snap", ...)`` and gathered with an
        accept filter, so stale replies of an aborted round queued ahead of
        them are drained and discarded rather than misparsed. ``strict``
        propagates a failing worker (golden step-boundary checkpoints must
        be complete); non-strict skips it (checkpoint-on-abort saves
        whatever survives).
        """
        def is_snap(msg):
            return (isinstance(msg, tuple) and msg
                    and isinstance(msg[0], str) and msg[0] == "snap")

        snaps: dict[int, tuple] = {}
        for w in self._live_workers():
            try:
                self._send(w, ("snapshot",))
                out = self._gather([w], what="snapshot", handle_failures=False,
                                   accept=is_snap)
                snaps[w] = out[w][1:]
            except WorkerFailure:
                if strict:
                    raise
        return snaps

    def save_checkpoint(self, path: str, *, boundary: bool = True) -> dict | None:
        """Atomically write a resumable snapshot of the whole run to *path*.

        Captures the full population (NaN for dead blocks), every live
        worker's exact RNG state, the respawn lineage (``seed_tags``), the
        healed-topology dead set, and the resilience report — everything
        :meth:`load_checkpoint` needs to make the resumed run bit-identical
        to one that was never interrupted. Returns the manifest written
        (``None`` if a ``ckpt_partial_write`` fault interrupted the write;
        the previous checkpoint at *path* then survives untouched).

        ``boundary=False`` marks a mid-round save (checkpoint-on-abort):
        still deterministic to resume, but not golden-trace.
        """
        if not self._started:
            raise CheckpointError("cannot checkpoint before the filter started")
        cfg = self.config
        snaps = self._collect_snapshots(strict=boundary)
        if not snaps:
            raise CheckpointError("no live worker could be snapshotted")
        F, m, d = cfg.n_filters, self._capacity, self.model.state_dim
        states = np.full((F, m, d), np.nan, dtype=self.dtype_policy.state)
        logw = np.full((F, m), np.nan, dtype=self.dtype_policy.weight)
        widths = None
        if self._widths is not None:
            # Worker-applied widths (the master's pending vector may be one
            # decision ahead; it is saved separately in the alloc meta).
            widths = self._widths.copy()
        alive = np.zeros(self.n_workers, dtype=bool)
        worker_rng: dict[str, dict] = {}
        worker_heal: dict[str, dict] = {}
        for w, (s, lw, rng_state, heal, wd) in snaps.items():
            ids = self._owned(w)
            states[ids] = s
            logw[ids] = lw
            if widths is not None and wd is not None:
                widths[ids] = wd
            alive[w] = True
            worker_rng[str(w)] = rng_state
            worker_heal[str(w)] = heal
        arrays = {"states": states, "log_weights": logw, "alive": alive}
        if widths is not None:
            arrays["widths"] = widths
        if self.last_estimate is not None:
            arrays["last_estimate"] = np.asarray(self.last_estimate, dtype=np.float64)
        meta = {
            "backend": "multiprocess",
            "boundary": bool(boundary),
            "k": int(self.k),
            "n_workers": int(self.n_workers),
            "transport": self.transport.name,
            "config": distributed_config_to_dict(cfg),
            "seed_tags": [int(t) for t in self._seed_tags],
            # Schema v4: the shard assignment + per-filter RNG generations.
            # Together with filter-keyed stream states (rng_streams="filter")
            # they let load_checkpoint re-deal the run over a *different*
            # worker count, bit-identically.
            "assignment": [int(x) for x in self.membership.assignment()],
            "filter_tags": [int(t) for t in self._filter_tags],
            "membership": self.membership.summary(),
            "dead_filters": sorted(int(f) for f in self._healer.dead),
            "worker_rng": worker_rng,
            "worker_heal_counters": worker_heal,
            "report": self.report.summary(),
            "supervisor": None if self.supervisor is None
                          else self.supervisor.summary(),
        }
        if self.alloc_policy.name != "fixed":
            meta["alloc"] = {
                "policy": self.alloc_policy.name,
                "state": self.alloc_policy.state_dict(),
                # The master's decided-but-possibly-unapplied width vector:
                # restoring it and replaying the next phase-1 scatter makes
                # the resumed width trajectory bit-identical.
                "widths": [int(x) for x in self._widths],
                "counters": {k: int(v) for k, v in self.alloc_counters.items()},
            }
        interrupt = False
        damage = []
        if self.fault_plan is not None:
            for f in self.fault_plan.checkpoint_faults_for(self.k):
                if f.kind == "ckpt_partial_write":
                    interrupt = True
                else:
                    damage.append(f)
        manifest = write_checkpoint(path, arrays, meta, interrupt_write=interrupt)
        if manifest is None:
            self.tracer.count("checkpoint.interrupted")
            return None
        self.report.checkpoints_saved += 1
        self.tracer.count("checkpoint.saved")
        for f in damage:
            mode = "corrupt" if f.kind == "ckpt_corrupt" else "truncate"
            corrupt_checkpoint_file(path, self.fault_plan.rng_for(f),
                                    mode=mode, fraction=f.fraction)
            self.tracer.count(f"checkpoint.fault.{mode}")
        return manifest

    def load_checkpoint(self, path: str) -> dict:
        """Restore a :meth:`save_checkpoint` snapshot into this filter.

        Spawns the process tree if needed, pushes each live shard's
        population + RNG state into its worker, retires shards that were
        dead at save time (healing the topology around them, without
        re-counting their segment reclaims), and restores the step counter,
        respawn lineage, and resilience report. After this returns, the
        next :meth:`step` produces output bit-identical to the run the
        checkpoint was taken from.

        Schema v4 checkpoints additionally carry the shard assignment and
        per-filter RNG generations, which unlocks **elastic resume**: with
        ``rng_streams="filter"`` (and no healed-out sub-filters) a
        checkpoint written by an N-worker run loads into an M-worker
        filter — every sub-filter's particles and private stream state are
        re-dealt to the new contiguous shards, and the resumed trajectory
        stays bit-identical because no sub-filter's randomness depends on
        which worker hosts it.
        """
        arrays, manifest = read_checkpoint(path)
        meta = manifest["meta"]
        if meta.get("backend") != "multiprocess":
            raise CheckpointError(
                f"checkpoint was written by backend {meta.get('backend')!r}, "
                f"not 'multiprocess'")
        saved_cfg = normalize_config_record(meta.get("config", {}))
        if saved_cfg != distributed_config_to_dict(self.config):
            raise CheckpointError(
                "checkpoint configuration does not match this filter's "
                "configuration")
        cfg = self.config
        saved_workers = int(meta.get("n_workers", -1))
        saved_assign = meta.get("assignment")
        dead_filters = sorted(int(f) for f in meta.get("dead_filters", []))
        alive = np.asarray(arrays["alive"]).astype(bool)
        elastic = saved_workers != self.n_workers
        if elastic:
            if cfg.rng_streams != "filter":
                raise CheckpointError(
                    f"checkpoint has {saved_workers} workers, this filter has "
                    f"{self.n_workers}; resuming across a different shard "
                    "count requires rng_streams='filter' (per-worker streams "
                    "are tied to the shard layout)")
            if saved_assign is None:
                raise CheckpointError(
                    f"checkpoint has {saved_workers} workers and predates "
                    f"shard assignments (schema < 4); cannot resume on "
                    f"{self.n_workers} workers")
            owner_saved = np.asarray(saved_assign, dtype=np.int64)
            if owner_saved.min() < 0 or not alive[owner_saved].all():
                raise CheckpointError(
                    "cannot resume across a different shard count: some "
                    "sub-filters were on dead workers at save time (their "
                    "state is not in the checkpoint)")
            if dead_filters:
                raise CheckpointError(
                    "cannot resume across a different shard count while "
                    f"{len(dead_filters)} sub-filters are healed out")
            # Lineage re-keys to the new shard layout: per-filter generation
            # tags carry across, per-worker seed tags do not.
            target_assign = None  # contiguous default over self.n_workers
            self._seed_tags = [0] * self.n_workers
        else:
            target_assign = (None if saved_assign is None
                             else np.asarray(saved_assign, dtype=np.int64))
            self._seed_tags = [int(t) for t in meta["seed_tags"]]
        ftags = meta.get("filter_tags")
        self._filter_tags = (np.zeros(cfg.n_filters, dtype=np.int64)
                             if ftags is None
                             else np.asarray(ftags, dtype=np.int64))
        block = cfg.n_filters // self.n_workers
        want = (np.repeat(np.arange(self.n_workers, dtype=np.int64), block)
                if target_assign is None else target_assign)
        if self._started and not np.array_equal(
                self.membership.assignment(), want):
            # A worker's shard is fixed at spawn: when the saved assignment
            # differs from the running tree's (post-rebalance checkpoint, or
            # a different worker count), restart the tree under the saved
            # layout before pushing state.
            self.close()
        if not self._started:
            self._start(assignment=target_assign)
        # The healed-topology view is rebuilt from the checkpoint, not
        # merged: any dead set this instance accumulated before the load is
        # superseded by the saved run's.
        self._healer = TopologyHealer(self.topology, bridge=self.heal_bridge)
        states, logw = arrays["states"], arrays["log_weights"]
        widths_all = arrays.get("widths")
        alloc = meta.get("alloc")
        if self.alloc_policy.name != "fixed":
            if not alloc:
                raise CheckpointError(
                    "checkpoint carries no allocation state but this filter "
                    f"uses the {self.alloc_policy.name!r} policy")
            if alloc.get("policy") != self.alloc_policy.name:
                raise CheckpointError(
                    f"checkpoint allocation policy {alloc.get('policy')!r} "
                    f"does not match this filter's {self.alloc_policy.name!r}")
            self.alloc_policy.load_state_dict(alloc.get("state") or {})
            self._widths = np.asarray(alloc["widths"], dtype=np.int64)
            self.alloc_counters = {
                "particles_migrated": 0, "width_changes": 0,
                **{k_: int(v) for k_, v in (alloc.get("counters") or {}).items()},
            }
        else:
            self._widths = None
        k = int(meta["k"])
        if elastic:
            # Re-deal the per-filter streams: flatten every saved worker's
            # filter-keyed stream states into one global map, then slice it
            # by this instance's shard assignment.
            stream_map: dict[int, tuple] = {}
            rng_kind, rng_seed = cfg.rng, cfg.seed
            for rec in meta["worker_rng"].values():
                rng_kind, rng_seed = rec["rng"], rec["seed"]
                for f, tag, st in rec["streams"]:
                    stream_map[int(f)] = (int(tag), st)
            missing = [f for f in range(cfg.n_filters) if f not in stream_map]
            if missing:
                raise CheckpointError(
                    f"checkpoint carries no RNG stream state for sub-filters "
                    f"{missing[:8]}; cannot re-deal across shard counts")
        live = []
        for w in range(self.n_workers):
            ids = self._owned(w)
            if not elastic and not alive[w]:
                # Dead at save time: retire it here too. The spawned-with-
                # stale-tag worker is harmless — it never computed.
                if self.membership.is_live(w):
                    self._declare_dead(w, count_reclaim=False)
                else:
                    self._healer.mark_dead(ids)
                continue
            if not self.membership.is_live(w):
                # Alive in the checkpoint but dead here (loading into a
                # degraded instance): give the shard a fresh process; the
                # restore below installs its exact saved state.
                self._spawn_worker(w)
            if elastic:
                rng_rec = {"kind": "filter_striped", "rng": rng_kind,
                           "seed": rng_seed,
                           "streams": [[int(f), *stream_map[int(f)]]
                                       for f in ids]}
                # Worker heal counters are local telemetry aggregates; they
                # do not survive a re-deal (and never affect the numerics).
                heal_rec: dict = {}
            else:
                rng_rec = meta["worker_rng"][str(w)]
                heal_rec = meta.get("worker_heal_counters", {}).get(str(w), {})
            self._send(w, ("restore", np.ascontiguousarray(states[ids]),
                           np.ascontiguousarray(logw[ids]), k, rng_rec,
                           heal_rec,
                           None if widths_all is None
                           else np.ascontiguousarray(widths_all[ids])))
            live.append(w)
        self._gather(live, what="restore")
        self._topo_epoch += 1  # force shard views to rebuild post-restore
        self.k = k
        self.last_estimate = (None if "last_estimate" not in arrays
                              else np.asarray(arrays["last_estimate"]))
        self.report = ResilienceReport.from_summary(meta.get("report") or {})
        self.report.checkpoints_restored += 1
        self.tracer.count("checkpoint.restored")
        return manifest

    def gather_population(self) -> tuple[np.ndarray, np.ndarray]:
        """Collect the full (states, log_weights) for inspection/tests.

        Dead blocks (healed mode) are returned as NaN so the caller can see
        exactly which sub-filter slots are out of service.
        """
        cfg = self.config
        states = np.full((cfg.n_filters, self._capacity, self.model.state_dim),
                         np.nan, dtype=self.dtype_policy.state)
        logw = np.full((cfg.n_filters, self._capacity), np.nan,
                       dtype=self.dtype_policy.weight)
        for w in self._live_workers():
            self._send(w, ("get_state",))
        for w in self._live_workers():
            ids = self._owned(w)
            s, l = self._recv(w, what="get_state")
            states[ids], logw[ids] = s, l
        return states, logw
