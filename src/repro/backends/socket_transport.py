"""TCP socket transport: the cross-host data plane.

Same logical protocol as the pipe transport — every payload is one pickled
message — but carried over a loopback/LAN TCP stream as length-prefixed
frames instead of an inherited pipe fd. The wire schema (phase-1 tuple,
phase-2 tuple, in-band beats) is byte-for-byte the pipe transport's, so the
parity suite's golden traces transfer unchanged; only the byte carrier
differs.

Framing
-------
Each frame is ``[u64 big-endian payload length][pickle payload]``. A frame
is written with one ``sendall`` and read with exact-length ``recv_into``
loops, so a reader never sees an interleaved or partial message:

- a clean close *between* frames surfaces as :class:`EOFError` (exactly how
  a closed pipe behaves, so the master's gather classifies it as a worker
  crash);
- a close *inside* a frame (peer died mid-send) raises
  :class:`TruncatedFrameError` — an :class:`EOFError` subclass carrying how
  many bytes were expected vs received;
- a connection reset raises ``ConnectionResetError`` (an ``OSError``),
  again matching the pipe's failure surface.

Handshake
---------
The master binds one loopback listener per channel pair *before* the fork
and the worker connects from the child; the listener's backlog holds the
connection until the master accepts it in :meth:`SocketMasterChannel.
after_start`. The accept is bounded by a :class:`~repro.resilience.retry.
RetryPolicy` deadline — each backoff window is one ``accept`` timeout, and
deadline expiry classifies as :class:`~repro.resilience.errors.
WorkerTimeoutError` (a worker that never dialed in is indistinguishable
from a hung one).

Both connection ends count ``bytes_sent`` / ``bytes_received``, which the
backend surfaces as ``transport.bytes_*`` telemetry counters — the
measurement behind the cut-edge-bytes benchmark.
"""

from __future__ import annotations

import pickle
import socket
import time

from repro.backends.transport import (
    PipeMasterChannel,
    PipeWorkerChannel,
    TransportCaps,
)
from repro.resilience.errors import WorkerTimeoutError
from repro.resilience.retry import RetryPolicy

_HEADER_BYTES = 8
#: Frames above this are refused on read — a corrupted header otherwise
#: turns into a multi-gigabyte allocation before the pickle even fails.
MAX_FRAME_BYTES = 1 << 34


class TruncatedFrameError(EOFError):
    """The peer closed the stream in the middle of a frame."""

    def __init__(self, expected: int, received: int):
        super().__init__(
            f"truncated frame: expected {expected} bytes, got {received}")
        self.expected = int(expected)
        self.received = int(received)


class FrameConnection:
    """A ``multiprocessing.connection.Connection``-alike over a TCP socket.

    Implements the subset the backend's gather loop uses — ``send`` /
    ``recv`` / ``poll`` / ``fileno`` / ``close`` — so
    ``multiprocessing.connection.wait`` can multiplex socket channels and
    pipe channels in the same call.
    """

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP socket (tests use AF_UNIX pairs): latency knob only
        sock.setblocking(True)
        self._sock: socket.socket | None = sock
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- Connection interface -------------------------------------------------
    def send(self, obj) -> None:
        if self._sock is None:
            raise OSError("send on closed FrameConnection")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        header = len(payload).to_bytes(_HEADER_BYTES, "big")
        self._sock.sendall(header + payload)
        self.bytes_sent += _HEADER_BYTES + len(payload)

    def recv(self):
        header = self._recv_exact(_HEADER_BYTES, frame_start=True)
        n = int.from_bytes(header, "big")
        if n > MAX_FRAME_BYTES:
            raise OSError(f"frame of {n} bytes exceeds MAX_FRAME_BYTES "
                          f"({MAX_FRAME_BYTES}); corrupted header?")
        return pickle.loads(self._recv_exact(n))

    def poll(self, timeout: float = 0.0) -> bool:
        if self._sock is None:
            return False
        import select

        ready, _, _ = select.select([self._sock], [], [], timeout)
        return bool(ready)

    def fileno(self) -> int:
        if self._sock is None:
            raise OSError("fileno on closed FrameConnection")
        return self._sock.fileno()

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        self._sock = None

    @property
    def closed(self) -> bool:
        return self._sock is None

    # -- internals ------------------------------------------------------------
    def _recv_exact(self, n: int, frame_start: bool = False) -> bytes:
        """Read exactly *n* bytes; EOF between frames vs inside one differ."""
        if self._sock is None:
            raise EOFError("recv on closed FrameConnection")
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            chunk = self._sock.recv_into(view[got:], n - got)
            if chunk == 0:
                if frame_start and got == 0:
                    raise EOFError("connection closed")
                raise TruncatedFrameError(
                    expected=n if frame_start else n + _HEADER_BYTES,
                    received=got)
            got += chunk
            self.bytes_received += chunk
        return bytes(buf)


class SocketMasterChannel(PipeMasterChannel):
    """Master end: pipe-channel logic over an accepted frame connection.

    Until :meth:`after_start` accepts the worker's dial-in, ``conn`` is
    ``None`` — the backend calls ``after_start`` right after spawning the
    worker process, before any traffic.
    """

    def __init__(self, listener: socket.socket, handshake: RetryPolicy):
        self._listener: socket.socket | None = listener
        self._handshake = handshake
        self.conn: FrameConnection | None = None
        self._beat_count = 0

    def after_start(self) -> None:
        """Accept the worker's connection under the handshake deadline."""
        if self._listener is None:  # pragma: no cover - repeated call
            return
        deadline = self._handshake.deadline(time.monotonic())
        while True:
            now = time.monotonic()
            self._listener.settimeout(max(deadline.remaining(now), 1e-3))
            try:
                sock, _addr = self._listener.accept()
                break
            except socket.timeout:
                now = time.monotonic()
                if deadline.expire(now) == "timeout":
                    self._close_listener()
                    raise WorkerTimeoutError(
                        f"socket handshake: no worker connected within "
                        f"{self._handshake.timeout:.1f}s") from None
                # "retry": the deadline granted another backoff window —
                # keep listening until the windows are spent.
        self._close_listener()
        self.conn = FrameConnection(sock)

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None

    @property
    def bytes_sent(self) -> int:
        return self.conn.bytes_sent if self.conn is not None else 0

    @property
    def bytes_received(self) -> int:
        return self.conn.bytes_received if self.conn is not None else 0

    def close(self) -> int:
        self._close_listener()
        if self.conn is not None:
            self.conn.close()
        return self.reclaim()


class SocketWorkerChannel(PipeWorkerChannel):
    """Worker end: connects to the master's listener lazily.

    The channel object is built in the master process (pre-fork) but holds
    only the address; the actual ``connect`` happens in the worker child on
    first use, so the socket is owned by exactly one process.
    """

    def __init__(self, address: tuple[str, int], connect_timeout: float = 30.0):
        self._address = address
        self._connect_timeout = float(connect_timeout)
        self.conn: FrameConnection | None = None
        self._beats = 0

    def _ensure(self) -> FrameConnection:
        if self.conn is None:
            sock = socket.create_connection(
                self._address, timeout=self._connect_timeout)
            sock.settimeout(None)
            self.conn = FrameConnection(sock)
        return self.conn

    def beat(self, code: int = 0) -> None:
        self._beats += 1
        try:
            self._ensure().send(("beat", self._beats, int(code)))
        except (OSError, ValueError, EOFError):  # pragma: no cover
            pass

    def recv(self):
        return self._ensure().recv()

    def send(self, obj) -> None:
        self._ensure().send(obj)

    def reply_phase1(self, k, send_states, send_logw, best_states,
                     best_logw, partial, heal_stats, alloc=None) -> None:
        self._ensure()
        super().reply_phase1(k, send_states, send_logw, best_states,
                             best_logw, partial, heal_stats, alloc)

    def reply_phase2(self, stage_seconds, kernel_seconds,
                     telemetry=None) -> None:
        self._ensure()
        super().reply_phase2(stage_seconds, kernel_seconds, telemetry)

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()


class SocketTransport:
    """Length-prefixed pickled frames over loopback TCP.

    ``host`` defaults to loopback; a cross-host deployment would bind the
    master's address here and start workers with the advertised endpoints
    (the channel protocol itself never assumes shared memory or a shared
    process tree — only the current spawner does).
    """

    name = "tcp"
    caps = TransportCaps(zero_copy=False, framed=True, cross_host=True,
                         byte_counters=True)

    def __init__(self, host: str = "127.0.0.1",
                 handshake: RetryPolicy | None = None):
        self.host = host
        self.handshake = handshake or RetryPolicy(timeout=30.0, max_retries=1)

    def channel_pair(self, ctx, layout):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((self.host, 0))
        listener.listen(1)
        address = listener.getsockname()
        return (SocketMasterChannel(listener, self.handshake),
                SocketWorkerChannel(address))


# Self-registration keeps the transport registry's lazy mutual import safe
# regardless of whether this module or repro.backends.transport loads first.
from repro.backends import transport as _transport  # noqa: E402

_transport._TRANSPORTS.setdefault("tcp", SocketTransport)
_transport._TRANSPORTS.setdefault("socket", SocketTransport)
