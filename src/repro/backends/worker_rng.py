"""Per-sub-filter RNG streams for shard-invariant worker randomness.

With the legacy ``rng_streams="worker"`` policy each worker process owns one
stream (``root.spawn(1000 + worker_id + ...)``) and draws for its whole
block at once — fast, but the random numbers a given sub-filter consumes
depend on which worker it landed on, so two runs with different shard
counts diverge bitwise.

``rng_streams="filter"`` gives every *sub-filter* its own spawned stream
and serves the worker's batched draws through a :class:`FilterStripedRNG` —
the same striping facade the session layer uses (one generator per row,
``block_rows=1``): sub-filter ``f`` consumes its own stream in exactly the
shapes and order it would under any partition. That is the property the
shard parity suite pins: an N-shard run over TCP is bit-identical to the
same filter running every sub-filter in a single worker process.

Stream derivation is a pure function of ``(rng kind, seed, filter id,
generation tag)``; the tag is bumped each time a sub-filter is re-seeded by
the recovery ladder (respawn or rebalance adoption), mirroring the
per-worker ``seed_tag`` of the legacy policy. The spawn index family is
offset far above the per-worker family so the two policies never collide.
"""

from __future__ import annotations

import numpy as np

from repro.prng.streams import FilterRNG, make_rng
from repro.sessions.rng import CohortRNG

#: spawn-index floor of the per-filter family (per-worker streams use small
#: indices: ``1000 + worker_id + 100_000 * seed_tag``).
PER_FILTER_STREAM_BASE = 1_000_000_000
#: spawn-index stride between generation tags; filter ids must stay below
#: this for (filter, tag) pairs to index disjoint streams.
PER_FILTER_TAG_STRIDE = 10_000_019


def filter_stream_index(filter_id: int, tag: int = 0) -> int:
    """The spawn index of sub-filter *filter_id*'s generation-*tag* stream."""
    f, tag = int(filter_id), int(tag)
    if not 0 <= f < PER_FILTER_TAG_STRIDE:
        raise ValueError(
            f"filter id {f} outside the per-filter stream family "
            f"[0, {PER_FILTER_TAG_STRIDE})")
    return PER_FILTER_STREAM_BASE + tag * PER_FILTER_TAG_STRIDE + f


class FilterStripedRNG(CohortRNG):
    """A striping facade over one private stream per owned sub-filter.

    Batched draws with leading dimension ``len(ids)`` are stitched from the
    per-filter streams in ascending-id order; ``scoped_rows`` handles the
    masked-resample subset and ``delegating`` the per-filter loops
    (initialization), exactly as in the session cohort.
    """

    def __init__(self, rng_kind: str, seed: int, ids, tags=None):
        super().__init__()
        self._rng_kind = str(rng_kind)
        self._seed = int(seed)
        self._root = make_rng(self._rng_kind, self._seed)
        self._ids: list[int] = []
        self._tags: dict[int, int] = {}
        self._streams: dict[int, FilterRNG] = {}
        ids = [int(f) for f in np.asarray(ids, dtype=np.int64)]
        if tags is None:
            tags = [0] * len(ids)
        for f, tag in zip(ids, tags):
            self._streams[f] = self._make(f, int(tag))
            self._tags[f] = int(tag)
        self._ids = sorted(ids)
        self._rebind()

    def _make(self, f: int, tag: int) -> FilterRNG:
        return self._root.spawn(filter_stream_index(f, tag))

    def _rebind(self) -> None:
        self.bind([self._streams[f] for f in self._ids], block_rows=1)

    # -- ownership changes ----------------------------------------------------
    @property
    def ids(self) -> list[int]:
        return list(self._ids)

    def tag_of(self, f: int) -> int:
        return self._tags[int(f)]

    def adopt(self, ids, tags) -> None:
        """Add freshly-seeded streams for newly adopted sub-filters."""
        for f, tag in zip(np.asarray(ids, dtype=np.int64), tags):
            f, tag = int(f), int(tag)
            self._streams[f] = self._make(f, tag)
            self._tags[f] = tag
        self._ids = sorted(self._streams)
        self._rebind()

    def stream_of(self, f: int) -> FilterRNG:
        return self._streams[int(f)]

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "kind": "filter_striped",
            "rng": self._rng_kind,
            "seed": self._seed,
            "streams": [[f, self._tags[f], self._streams[f].state_dict()]
                        for f in self._ids],
        }

    def load_state_dict(self, d: dict) -> None:
        self._check_state_kind(d, "filter_striped")
        self._rng_kind = str(d["rng"])
        self._seed = int(d["seed"])
        self._root = make_rng(self._rng_kind, self._seed)
        self._streams = {}
        self._tags = {}
        for f, tag, state in d["streams"]:
            f, tag = int(f), int(tag)
            gen = self._make(f, tag)
            gen.load_state_dict(state)
            self._streams[f] = gen
            self._tags[f] = tag
        self._ids = sorted(self._streams)
        self._rebind()
