"""The kernel registry: one definition per kernel, consumed by three layers.

The paper's contribution is a small set of data-parallel kernels whose
per-kernel time breakdown drives every configuration rule of thumb. In this
repo each kernel exists in two executable forms (batched NumPy and work-group
SIMT) *and* as a set of analytic flop/byte/barrier formulas in the cost
model. Before this module those three views lived in three places and could
silently drift apart.

A :class:`KernelDef` binds them back together:

- ``batch`` — the batched NumPy implementation the filters execute,
- ``workgroup`` — the lock-step SIMT form run on the device simulator,
- ``cost`` — a :class:`CostSig` giving flops / bytes read / bytes written /
  barriers as functions of :class:`CostParams` ``(m, state_dim,
  group_size, ...)``, from which a
  :class:`~repro.device.costmodel.KernelWorkload` is derived,
- validation adapters (``make_inputs`` / ``run_batch`` / ``run_workgroup`` /
  ``compare`` / ``make_params``) that let
  :func:`repro.device.kernel.validate` run both forms on the same inputs,
  check bit-parity, and cross-check the measured
  :class:`~repro.device.simt.SimtStats` against the ``CostSig`` prediction.

Registering a kernel therefore buys it execution, simulation, cost
accounting and differential testing at once — the extension path the
Metropolis resampler (Murray 2012) exercises end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro.device.costmodel import (
    RNG_FLOPS_PER_VALUE,
    KernelWorkload,
    model_flops_per_particle,
    scattered_aos_efficiency,
)
from repro.device.memory import LocalMemory
from repro.device.simt import WorkGroup
from repro.kernels.bitonic import bitonic_argsort_batch, bitonic_sort_workgroup
from repro.kernels.exchange import route_pairwise, route_pooled
from repro.kernels.metropolis import (
    default_metropolis_steps,
    metropolis_resample_batch,
    metropolis_workgroup,
)
from repro.kernels.reduce import max_reduce_batch, tree_reduce_workgroup
from repro.kernels.resample_kernels import (
    alias_build_workgroup,
    alias_sample_workgroup,
    rws_workgroup,
)
from repro.kernels.scan import blelloch_scan_workgroup, exclusive_scan_batch

__all__ = [
    "CostParams",
    "CostSig",
    "KernelDef",
    "KernelRegistry",
    "default_registry",
    "kernel_cost_attrs",
    "register_default_kernels",
    "weight_argsort_batch",
]

#: form names every kernel implicitly understands; anything else resolves
#: through :attr:`KernelDef.forms` (see :mod:`repro.kernels.forms`).
_BUILTIN_FORMS = ("batch", "reference", "workgroup")


# ---------------------------------------------------------------------------
# Cost signatures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostParams:
    """Problem-shape parameters a :class:`CostSig` is evaluated at.

    ``m`` is the per-sub-filter element count (particles per group for most
    kernels), ``n_groups`` the number of work groups (= sub-filters ``N``
    for the per-sub-filter kernels), ``group_size`` the launch's threads per
    group (defaults to ``m``). ``pool`` is the resampling candidate-set size
    ``m + degree * n_exchange`` (defaults to ``m``), and ``n_filters`` the
    sub-filter count when it differs from ``n_groups`` (the estimate kernel
    reduces ``N`` values with fewer groups).
    """

    m: int
    state_dim: int = 9
    group_size: int | None = None
    n_groups: int = 1
    n_filters: int | None = None
    dtype_bytes: int = 4
    pool: int | None = None
    n_exchange: int = 1
    degree: int = 2

    @property
    def group_size_(self) -> int:
        return self.m if self.group_size is None else self.group_size

    @property
    def n_filters_(self) -> int:
        return self.n_groups if self.n_filters is None else self.n_filters

    @property
    def pool_(self) -> int:
        return self.m if self.pool is None else self.pool

    @property
    def total(self) -> int:
        """Device-wide element count ``P = n_groups * m``."""
        return self.n_groups * self.m

    @property
    def log2m(self) -> float:
        return max(math.log2(self.m), 1.0)

    @property
    def sort_stages(self) -> float:
        """Compare-exchange stages of the bitonic network over ``m`` keys."""
        return self.log2m * (self.log2m + 1) / 2.0

    @property
    def aos_efficiency(self) -> float:
        """Scattered-gather bandwidth efficiency of one particle struct."""
        return scattered_aos_efficiency(self.state_dim * self.dtype_bytes)


def _zero(p: CostParams) -> float:
    return 0.0


def _one(p: CostParams) -> float:
    return 1.0


@dataclass(frozen=True)
class CostSig:
    """Analytic cost signature: workload terms as functions of the shape.

    Every term is a callable of :class:`CostParams`; :meth:`workload` turns
    the signature into the :class:`KernelWorkload` the cost model prices.
    ``barriers`` is per work group (``syncs_per_group``), everything else is
    device-wide, matching :class:`KernelWorkload`'s conventions.
    """

    flops: Callable[[CostParams], float] = _zero
    bytes_read: Callable[[CostParams], float] = _zero
    bytes_written: Callable[[CostParams], float] = _zero
    barriers: Callable[[CostParams], float] = _zero
    local_ops: Callable[[CostParams], float] = _zero
    serial_ops: Callable[[CostParams], float] = _zero
    read_coalescing: Callable[[CostParams], float] = _one
    write_coalescing: Callable[[CostParams], float] = _one
    launches: int = 1
    rng_kernel: bool = False

    def workload(self, name: str, p: CostParams) -> KernelWorkload:
        return KernelWorkload(
            name=name,
            n_groups=p.n_groups,
            group_size=p.group_size_,
            flops=self.flops(p),
            bytes_read=self.bytes_read(p),
            bytes_written=self.bytes_written(p),
            read_coalescing=self.read_coalescing(p),
            write_coalescing=self.write_coalescing(p),
            local_ops=self.local_ops(p),
            serial_ops=self.serial_ops(p),
            syncs_per_group=int(self.barriers(p)),
            launches=self.launches,
        )


# ---------------------------------------------------------------------------
# Kernel definitions
# ---------------------------------------------------------------------------


@dataclass
class KernelDef:
    """One kernel: name, both implementations, cost signature, validators.

    ``batch``/``workgroup`` are the public implementations the engine and
    the device pipeline dispatch to (either may be ``None`` for cost-only
    stage signatures like ``rand``). ``forms`` holds any number of extra
    named execution forms — conventionally ``"compiled"`` for a fused /
    JIT-compiled variant — selected at dispatch time by an
    :class:`~repro.kernels.forms.ExecutionPolicy`; ``"batch"`` (alias
    ``"reference"``) and ``"workgroup"`` remain implicit form names for the
    two classic slots. The ``make_inputs``/``run_batch``/
    ``run_workgroup``/``compare``/``make_params`` adapters define the
    differential-validation protocol; a kernel carrying all of them is
    *validatable* and is picked up automatically by the parametrized parity
    tests and by :func:`repro.device.kernel.validate`.
    """

    name: str
    description: str
    cost: CostSig
    batch: Callable | None = None
    workgroup: Callable | None = None
    forms: dict[str, Callable] = field(default_factory=dict)
    make_inputs: Callable[[np.random.Generator, int], dict[str, Any]] | None = None
    run_batch: Callable[[dict[str, Any]], np.ndarray] | None = None
    run_workgroup: Callable[[WorkGroup, dict[str, Any]], np.ndarray] | None = None
    compare: Callable[[np.ndarray, np.ndarray, dict[str, Any]], None] | None = None
    make_params: Callable[[int], CostParams] | None = None
    check_barriers: bool = True
    work_tolerance: float = 8.0

    @property
    def validatable(self) -> bool:
        return None not in (
            self.make_inputs,
            self.run_batch,
            self.run_workgroup,
            self.compare,
            self.make_params,
        )

    def workload(self, params: CostParams) -> KernelWorkload:
        """The :class:`KernelWorkload` this kernel predicts for *params*."""
        return self.cost.workload(self.name, params)


class KernelRegistry:
    """Name -> :class:`KernelDef` with lookup and implementation dispatch."""

    def __init__(self):
        self._kernels: dict[str, KernelDef] = {}

    def register(self, kdef: KernelDef) -> KernelDef:
        if kdef.name in self._kernels:
            raise ValueError(f"kernel {kdef.name!r} already registered")
        self._kernels[kdef.name] = kdef
        return kdef

    def get(self, name: str) -> KernelDef:
        try:
            return self._kernels[name]
        except KeyError:
            raise KeyError(f"unknown kernel {name!r}; registered: {self.names()}") from None

    def names(self) -> list[str]:
        return sorted(self._kernels)

    def validatable(self) -> list[KernelDef]:
        """Kernels carrying the full differential-validation protocol."""
        return [k for k in self._kernels.values() if k.validatable]

    def batch(self, name: str) -> Callable:
        impl = self.get(name).batch
        if impl is None:
            raise ValueError(f"kernel {name!r} has no batch implementation")
        return impl

    def workgroup(self, name: str) -> Callable:
        impl = self.get(name).workgroup
        if impl is None:
            raise ValueError(f"kernel {name!r} has no work-group implementation")
        return impl

    def register_form(self, name: str, form_name: str, impl: Callable) -> None:
        """Attach an extra execution form to an already-registered kernel."""
        if form_name in _BUILTIN_FORMS:
            raise ValueError(
                f"form name {form_name!r} is reserved; set the kernel's "
                f"batch/workgroup slot instead")
        kdef = self.get(name)
        if form_name in kdef.forms:
            raise ValueError(f"kernel {name!r} already has a {form_name!r} form")
        kdef.forms[form_name] = impl

    def form(self, name: str, form_name: str) -> Callable:
        """The named execution form of kernel *name* (raises if absent)."""
        if form_name in ("batch", "reference"):
            return self.batch(name)
        if form_name == "workgroup":
            return self.workgroup(name)
        impl = self.get(name).forms.get(form_name)
        if impl is None:
            raise ValueError(
                f"form must be one of {self.forms_of(name)} for kernel "
                f"{name!r}; got {form_name!r}")
        return impl

    def forms_of(self, name: str) -> tuple[str, ...]:
        """Every executable form of kernel *name* (reference first)."""
        kdef = self.get(name)
        forms = []
        if kdef.batch is not None:
            forms.append("reference")
        if kdef.workgroup is not None:
            forms.append("workgroup")
        forms.extend(sorted(kdef.forms))
        return tuple(forms)

    def dispatch(self, name: str, *args, form: str = "batch", **kwargs):
        """Invoke a kernel implementation by name and form — pure routing."""
        return self.form(name, form)(*args, **kwargs)

    def workload(self, name: str, params: CostParams) -> KernelWorkload:
        return self.get(name).workload(params)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __iter__(self):
        return iter(self._kernels.values())

    def __len__(self) -> int:
        return len(self._kernels)


# ---------------------------------------------------------------------------
# The default kernel set
# ---------------------------------------------------------------------------


def weight_argsort_batch(log_weights: np.ndarray) -> np.ndarray:
    """Stable descending row-wise argsort — the engine's production sort.

    Functionally a descending bitonic sort per sub-filter; the stable
    tie-break is part of the engine's reproducibility contract (golden
    traces), which is why this — and not the bitonic network — is the
    registered batch form of ``sort``.
    """
    return np.argsort(-np.atleast_2d(log_weights), axis=1, kind="stable")


def _assert_bit_equal(expected: np.ndarray, got: np.ndarray, inputs: dict[str, Any]) -> None:
    expected = np.asarray(expected)
    got = np.asarray(got)
    if expected.shape != got.shape:
        raise AssertionError(f"shape mismatch: batch {expected.shape} vs work-group {got.shape}")
    if not np.array_equal(expected, got):
        bad = np.flatnonzero(np.asarray(expected != got).ravel())
        raise AssertionError(
            f"batch and work-group forms disagree at {bad.size}/{got.size} "
            f"positions (first: {bad[:8].tolist()})"
        )


def _alias_mass(prob: np.ndarray, alias: np.ndarray) -> np.ndarray:
    """Total selection probability of each index under an alias table."""
    n = prob.size
    mass = prob / n
    return mass + np.bincount(alias, weights=(1.0 - prob) / n, minlength=n)


def _compare_alias_tables(expected, got, inputs: dict[str, Any]) -> None:
    """Alias tables are not unique; equality means equal per-index mass."""
    w = np.asarray(inputs["weights"], dtype=np.float64)
    target = w / w.sum()
    for label, (prob, alias) in (("batch", expected), ("work-group", got)):
        mass = _alias_mass(np.asarray(prob), np.asarray(alias))
        err = float(np.abs(mass - target).max())
        if err > 1e-9:
            raise AssertionError(f"{label} alias table mass deviates by {err:.3e}")


def _staged_local(wg: WorkGroup, values: np.ndarray, dtype=np.float64) -> LocalMemory:
    mem = wg.local_array(values.size, dtype=dtype)
    mem[:] = values
    return mem


def _sort_run_workgroup(wg: WorkGroup, inputs: dict[str, Any]) -> np.ndarray:
    keys = _staged_local(wg, np.asarray(inputs["keys"], dtype=np.float64))
    bitonic_sort_workgroup(wg, keys, descending=True)
    return keys.data[: np.asarray(inputs["keys"]).size].copy()


def _bitonic_run_workgroup(wg: WorkGroup, inputs: dict[str, Any]) -> np.ndarray:
    keys = np.asarray(inputs["keys"], dtype=np.float64)
    kmem = _staged_local(wg, keys)
    vmem = _staged_local(wg, np.arange(keys.size), dtype=np.int64)
    bitonic_sort_workgroup(wg, kmem, vmem)
    return vmem.data[: keys.size].copy()


def _rws_run_workgroup(wg: WorkGroup, inputs: dict[str, Any]) -> np.ndarray:
    return rws_workgroup(wg, inputs["weights"], inputs["uniforms"])


def _alias_build_run_batch(inputs: dict[str, Any]):
    from repro.resampling.vose import build_alias_table

    w = np.asarray(inputs["weights"], dtype=np.float64)
    return build_alias_table(w / w.sum())


def _alias_sample_inputs(rng: np.random.Generator, n: int) -> dict[str, Any]:
    from repro.resampling.vose import build_alias_table

    w = rng.random(n) + 0.05
    prob, alias = build_alias_table(w / w.sum())
    return {
        "prob": prob,
        "alias": alias,
        "u_select": rng.random(n),
        "u_coin": rng.random(n),
    }


def _alias_sample_run_batch(inputs: dict[str, Any]) -> np.ndarray:
    from repro.resampling.vose import alias_sample

    return alias_sample(inputs["prob"], inputs["alias"], inputs["u_select"], inputs["u_coin"])


def _metropolis_inputs(rng: np.random.Generator, n: int) -> dict[str, Any]:
    steps = default_metropolis_steps(n)
    return {
        "weights": rng.random(n) + 1e-3,
        "u_prop": rng.random((steps, n)),
        "u_acc": rng.random((steps, n)),
    }


def register_default_kernels(reg: KernelRegistry) -> KernelRegistry:
    """Register the paper's kernel set (plus Metropolis) into *reg*.

    The ``CostSig`` formulas here are the single source of the analytic
    model: :func:`repro.device.costmodel.filter_round_cost` derives every
    stage workload from them instead of inlining formulas of its own.
    """
    # 1) PRNG: d normals per particle, written to global memory (cost-only —
    #    the executable form is the FilterRNG stream itself).
    reg.register(
        KernelDef(
            name="rand",
            description="MTGP-style PRNG: state_dim normals per particle",
            cost=CostSig(
                flops=lambda p: p.total * p.state_dim * RNG_FLOPS_PER_VALUE,
                bytes_written=lambda p: p.total * p.state_dim * p.dtype_bytes,
                rng_kernel=True,
            ),
        )
    )

    # 2) Sampling + importance weighting over the AoS particle store.
    reg.register(
        KernelDef(
            name="sampling",
            description="propagate + weight every particle (robotic-arm model)",
            cost=CostSig(
                flops=lambda p: p.total * model_flops_per_particle(p.state_dim),
                bytes_read=lambda p: (
                    p.total * 2 * p.state_dim * p.dtype_bytes
                    + p.n_filters_ * (p.state_dim - 2) * p.dtype_bytes
                ),
                bytes_written=lambda p: p.total * (p.state_dim + 1) * p.dtype_bytes,
            ),
        )
    )

    # 3) The production sort stage: stable descending argsort of the weights
    #    plus the permutation applied to the AoS states (scattered reads,
    #    contiguous writes — Section VI-C).
    reg.register(
        KernelDef(
            name="sort",
            description="per-sub-filter descending weight sort + AoS permute",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * (p.m / 2) * p.sort_stages * 3.0,
                barriers=lambda p: p.sort_stages,
                bytes_read=lambda p: p.total * p.dtype_bytes * (1 + p.state_dim),
                read_coalescing=lambda p: p.aos_efficiency,
                bytes_written=lambda p: p.total * p.dtype_bytes * (p.state_dim + 1),
            ),
            batch=weight_argsort_batch,
            workgroup=bitonic_sort_workgroup,
            # Parity on the sorted *keys*: the stable argsort and the bitonic
            # network order ties differently, but the sorted key sequences
            # must agree bit for bit.
            make_inputs=lambda rng, n: {"keys": rng.standard_normal(n)},
            run_batch=lambda inputs: np.take_along_axis(
                np.atleast_2d(np.asarray(inputs["keys"], dtype=np.float64)),
                weight_argsort_batch(inputs["keys"]),
                axis=1,
            )[0],
            run_workgroup=_sort_run_workgroup,
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )

    # 3b) The bitonic network itself (local permutation build, no global
    #     AoS traffic) — both forms run the identical comparison network,
    #     so even the permutations match bitwise.
    reg.register(
        KernelDef(
            name="bitonic_sort",
            description="data-independent bitonic sorting network",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * (p.m / 2) * p.sort_stages * 3.0,
                barriers=lambda p: p.sort_stages,
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.total * p.dtype_bytes,
            ),
            batch=bitonic_argsort_batch,
            workgroup=bitonic_sort_workgroup,
            make_inputs=lambda rng, n: {"keys": rng.standard_normal(n)},
            run_batch=lambda inputs: bitonic_argsort_batch(inputs["keys"])[0],
            run_workgroup=_bitonic_run_workgroup,
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )

    # 4) Blelloch exclusive scan (RWS initialization primitive). Lock-step
    #    billing charges the full group at every tree level, hence the
    #    m*log2(m) local-op signature. Integer-valued test inputs make the
    #    tree-order and sequential-order sums bitwise identical.
    reg.register(
        KernelDef(
            name="blelloch_scan",
            description="bank-conflict-avoiding exclusive prefix sum",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * 3.0 * p.m * math.log2(max(p.m, 2)),
                barriers=lambda p: 2 * math.log2(max(p.m, 2)) + 2,
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.total * p.dtype_bytes,
            ),
            batch=exclusive_scan_batch,
            workgroup=blelloch_scan_workgroup,
            make_inputs=lambda rng, n: {
                "data": rng.integers(0, 8, size=n).astype(np.float64)
            },
            run_batch=lambda inputs: exclusive_scan_batch(inputs["data"])[0],
            run_workgroup=lambda wg, inputs: blelloch_scan_workgroup(wg, inputs["data"]),
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n, group_size=n // 2),
        )
    )

    # 5) Tree reduction (the estimate kernel's core primitive). Max is
    #    order-independent, so parity is exact.
    reg.register(
        KernelDef(
            name="tree_reduce",
            description="log-depth tree max-reduction",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * p.m * math.log2(max(p.m, 2)),
                barriers=lambda p: math.log2(max(p.m, 2)),
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.n_groups * p.dtype_bytes,
            ),
            batch=max_reduce_batch,
            workgroup=tree_reduce_workgroup,
            make_inputs=lambda rng, n: {"values": rng.standard_normal(n)},
            run_batch=lambda inputs: max_reduce_batch(inputs["values"])[0],
            run_workgroup=lambda wg, inputs: np.float64(
                tree_reduce_workgroup(
                    wg, _staged_local(wg, np.asarray(inputs["values"], dtype=np.float64))
                )
            ),
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )

    # 6) Global estimate stage: sorted rows mean only the final reduction
    #    rounds run; N per-sub-filter estimates reduced by few groups.
    reg.register(
        KernelDef(
            name="estimate",
            description="global weighted estimate over sub-filter leaders",
            cost=CostSig(
                flops=lambda p: p.n_filters_ * (p.state_dim + 1) * 2.0,
                bytes_read=lambda p: p.n_filters_ * (p.state_dim + 1) * p.dtype_bytes,
                bytes_written=lambda p: (p.state_dim + 1) * p.dtype_bytes,
                barriers=lambda p: 8,
            ),
            batch=max_reduce_batch,
        )
    )

    # 7) Exchange routing. Pairwise: neighbour-table gathers through cached
    #    global memory. Pooled (all-to-all): two launches — supply the pool,
    #    serial top-t selection, broadcast read-back.
    reg.register(
        KernelDef(
            name="route_pairwise",
            description="ring/torus neighbour exchange via routing table",
            cost=CostSig(
                bytes_read=lambda p: (
                    p.n_groups * p.degree * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes
                ),
                read_coalescing=lambda p: 0.4,  # neighbour gathers are scattered
                bytes_written=lambda p: (
                    p.n_groups * p.degree * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes
                ),
                write_coalescing=lambda p: 0.6,
            ),
            batch=route_pairwise,
        )
    )
    reg.register(
        KernelDef(
            name="route_pooled",
            description="all-to-all exchange through one global pool",
            cost=CostSig(
                bytes_read=lambda p: (
                    p.n_groups * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes * 2
                ),
                read_coalescing=lambda p: 0.5,
                bytes_written=lambda p: (
                    2 * p.n_groups * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes
                ),
                write_coalescing=lambda p: 0.5,
                serial_ops=lambda p: (
                    p.n_groups
                    * p.n_exchange
                    * math.log2(max(p.n_groups * p.n_exchange, 2))
                    * 2.0
                ),
                launches=2,
            ),
            batch=route_pooled,
        )
    )
    reg.register(
        KernelDef(
            name="route_pooled_topk",
            description="pooled exchange, partition-based top-t selection",
            cost=CostSig(
                bytes_read=lambda p: (
                    p.n_groups * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes * 2
                ),
                read_coalescing=lambda p: 0.5,
                bytes_written=lambda p: (
                    2 * p.n_groups * p.n_exchange * (p.state_dim + 1) * p.dtype_bytes
                ),
                write_coalescing=lambda p: 0.5,
                # Threshold partition is linear in the pool; only the t
                # survivors pay the log factor (vs the full n log n sort of
                # plain route_pooled).
                serial_ops=lambda p: (
                    p.n_groups * p.n_exchange
                    + p.n_exchange * math.log2(max(p.n_exchange, 2)) * 2.0
                ),
                launches=2,
            ),
            batch=route_pooled,
        )
    )

    # 8) Resampling kernels over the pooled candidate set.
    _resample_bytes = {
        "bytes_read": lambda p: p.total * p.dtype_bytes * (1 + p.state_dim),
        "read_coalescing": lambda p: p.aos_efficiency,
        "bytes_written": lambda p: p.total * p.state_dim * p.dtype_bytes,
    }
    reg.register(
        KernelDef(
            name="rws",
            description="roulette wheel selection: scan + binary search",
            cost=CostSig(
                local_ops=lambda p: p.n_groups
                * (4.0 * p.pool_ + p.m * math.log2(max(p.pool_, 2)) * 2.0),
                barriers=lambda p: 2 * p.log2m + 2,
                **_resample_bytes,
            ),
            batch=_rws_batch,
            workgroup=rws_workgroup,
            make_inputs=lambda rng, n: {
                "weights": rng.random(n) + 1e-3,
                "uniforms": rng.random(n),
            },
            run_batch=lambda inputs: _rws_batch(inputs["weights"], inputs["uniforms"])[0],
            run_workgroup=_rws_run_workgroup,
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )
    reg.register(
        KernelDef(
            name="vose",
            description="alias-method resampling stage (build + draws)",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * (10.0 * p.pool_ + 4.0 * p.m),
                serial_ops=lambda p: p.n_groups * p.pool_ * 1.5,
                barriers=lambda p: 4 * p.log2m + 8,
                **_resample_bytes,
            ),
        )
    )
    reg.register(
        KernelDef(
            name="alias_build",
            description="parallel alias-table construction (in-place worklists)",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * 10.0 * p.m,
                serial_ops=lambda p: p.n_groups * p.m * 1.5,
                barriers=lambda p: 2 * p.log2m,  # data-dependent; indicative
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.total * 2 * p.dtype_bytes,
            ),
            batch=_alias_build_batch,
            workgroup=alias_build_workgroup,
            make_inputs=lambda rng, n: {"weights": rng.random(n) + 0.05},
            run_batch=_alias_build_run_batch,
            run_workgroup=lambda wg, inputs: alias_build_workgroup(wg, inputs["weights"])[:2],
            compare=_compare_alias_tables,
            make_params=lambda n: CostParams(m=n),
            check_barriers=False,  # round count depends on the weight skew
        )
    )
    reg.register(
        KernelDef(
            name="alias_sample",
            description="O(1)-per-sample alias-table draws",
            cost=CostSig(
                local_ops=lambda p: p.n_groups * 2.0 * p.m,
                barriers=lambda p: 1,
                bytes_read=lambda p: p.total * 3 * p.dtype_bytes,
                bytes_written=lambda p: p.total * p.dtype_bytes,
            ),
            batch=_alias_sample_batch,
            workgroup=alias_sample_workgroup,
            make_inputs=_alias_sample_inputs,
            run_batch=_alias_sample_run_batch,
            run_workgroup=lambda wg, inputs: alias_sample_workgroup(
                wg, inputs["prob"], inputs["alias"], inputs["u_select"], inputs["u_coin"]
            ),
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )
    # 9) Adaptive-allocation kernels (width-aware population layout).
    reg.register(
        KernelDef(
            name="alloc_metrics",
            description="per-sub-filter ESS + weight-mass share reductions",
            cost=CostSig(
                # Two tree reductions (sum w, sum w^2) plus the shift-exp,
                # over the live population.
                local_ops=lambda p: 4.0 * p.total,
                barriers=lambda p: 2 * p.log2m,
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.n_groups * 2 * p.dtype_bytes,
            ),
            batch=_alloc_metrics_batch,
        )
    )
    reg.register(
        KernelDef(
            name="migrate_resize",
            description="grow/shrink sub-filter widths; growth draws from the pool",
            cost=CostSig(
                # Worst case: every slot of every row migrates — one
                # scattered particle gather plus the weight rewrite.
                bytes_read=lambda p: p.total * (p.state_dim + 1) * p.dtype_bytes,
                read_coalescing=lambda p: p.aos_efficiency,
                bytes_written=lambda p: p.total * (p.state_dim + 1) * p.dtype_bytes,
                write_coalescing=lambda p: p.aos_efficiency,
                serial_ops=lambda p: float(p.n_groups),
            ),
            batch=_migrate_resize_batch,
        )
    )
    reg.register(
        KernelDef(
            name="metropolis",
            description="collective-free Metropolis resampling (Murray 2012)",
            cost=CostSig(
                local_ops=lambda p: (
                    p.n_groups * 4.0 * p.m * default_metropolis_steps(p.pool_)
                ),
                barriers=lambda p: 1,  # only the weight staging barrier
                **_resample_bytes,
            ),
            batch=metropolis_resample_batch,
            workgroup=metropolis_workgroup,
            make_inputs=_metropolis_inputs,
            run_batch=lambda inputs: metropolis_resample_batch(
                inputs["weights"], inputs["u_prop"], inputs["u_acc"]
            )[0],
            run_workgroup=lambda wg, inputs: metropolis_workgroup(
                wg, inputs["weights"], inputs["u_prop"], inputs["u_acc"]
            ),
            compare=_assert_bit_equal,
            make_params=lambda n: CostParams(m=n),
        )
    )
    # 10) Execution-form exemplars. ``logsumexp`` is the numerically-
    #     sensitive weight-mass reduction (DRNA signal, resample
    #     normalization); its compiled form drops the degenerate-row guard
    #     passes and JIT-compiles under Numba. ``fused_step`` is the whole
    #     sampling→weight→sort→estimate→resample hot path merged into one
    #     pass over the ``(F, m, d)`` slabs — compiled-only, selected by
    #     ``ExecutionPolicy(prefer=("compiled", ...))``.
    reg.register(
        KernelDef(
            name="logsumexp",
            description="per-row log-sum-exp weight-mass reduction",
            cost=CostSig(
                local_ops=lambda p: 3.0 * p.total,
                barriers=lambda p: 2 * p.log2m,
                bytes_read=lambda p: p.total * p.dtype_bytes,
                bytes_written=lambda p: p.n_groups * p.dtype_bytes,
            ),
            batch=_logsumexp_batch,
            forms={"compiled": _logsumexp_compiled},
            make_inputs=lambda rng, n: {"log_weights": rng.standard_normal((4, n))},
        )
    )
    reg.register(
        KernelDef(
            name="fused_step",
            description="fused sample+weight+sort+estimate+resample step",
            cost=CostSig(
                flops=lambda p: p.total * (model_flops_per_particle(p.state_dim)
                                           + 4.0 + p.log2m * 2.0),
                bytes_read=lambda p: p.total * (p.state_dim + 1) * p.dtype_bytes * 2,
                bytes_written=lambda p: p.total * (p.state_dim + 1) * p.dtype_bytes,
                rng_kernel=True,
            ),
            forms={"compiled": _fused_step_compiled},
        )
    )
    return reg


def _rws_batch(weights: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Batched RWS over explicit uniforms (lazy import avoids a cycle)."""
    from repro.resampling.rws import rws_indices_batch

    return rws_indices_batch(weights, uniforms)


def _alloc_metrics_batch(log_weights: np.ndarray):
    """Batched allocation metrics (lazy import avoids a cycle)."""
    from repro.allocation.metrics import subfilter_ess, weight_mass_share

    return subfilter_ess(log_weights), weight_mass_share(log_weights)


def _migrate_resize_batch(states, log_weights, widths, new_widths,
                          pooled_states=None, pooled_logw=None,
                          resampled=None, resampler=None, rng=None) -> int:
    """Width migration (lazy import avoids a cycle); returns particles moved."""
    import numpy as _np

    from repro.allocation.migrate import grow_from_pool, resize_block

    if pooled_logw is None or resampler is None:
        return resize_block(states, log_weights, widths, new_widths)
    if resampled is None:
        resampled = _np.zeros(_np.asarray(log_weights).shape[0], dtype=bool)
    return grow_from_pool(states, log_weights, widths, new_widths,
                          pooled_states, pooled_logw, resampled, resampler, rng)


def _alias_build_batch(weights: np.ndarray):
    from repro.resampling.vose import build_alias_table_parallel

    return build_alias_table_parallel(weights)


def _alias_sample_batch(prob, alias, u_select, u_coin):
    from repro.resampling.vose import alias_sample

    return alias_sample(prob, alias, u_select, u_coin)


def _logsumexp_batch(log_weights: np.ndarray) -> np.ndarray:
    """Reference per-row logsumexp (lazy import avoids a cycle)."""
    from repro.allocation.metrics import row_logsumexp

    return row_logsumexp(np.atleast_2d(log_weights))


def _logsumexp_rows(lw: np.ndarray) -> np.ndarray:
    """Loop form of the row logsumexp, written to Numba's ``nopython`` subset."""
    F, m = lw.shape
    out = np.empty(F, dtype=np.float64)
    for f in range(F):
        peak = lw[f, 0]
        for j in range(1, m):
            if lw[f, j] > peak:
                peak = lw[f, j]
        if not (-np.inf < peak < np.inf):
            out[f] = -np.inf
        else:
            total = 0.0
            for j in range(m):
                total += np.exp(lw[f, j] - peak)
            out[f] = peak + np.log(total)
    return out


_LOGSUMEXP_JIT: Callable | None = None


def _logsumexp_compiled(log_weights: np.ndarray) -> np.ndarray:
    """Compiled logsumexp form: ``@njit`` loops under Numba, fused NumPy else.

    Both variants reduce in float64 regardless of the input dtype (the
    ``DtypePolicy`` contract for weight reductions). The NumPy fallback
    performs the reference's exact operation sequence minus its degenerate-
    row guard passes, so float64 results stay bit-identical on finite rows.
    """
    lw = np.atleast_2d(np.asarray(log_weights, dtype=np.float64))
    from repro.kernels.forms import numba_available

    if numba_available():
        global _LOGSUMEXP_JIT
        if _LOGSUMEXP_JIT is None:
            from repro.kernels.forms import maybe_njit

            _LOGSUMEXP_JIT = maybe_njit(_logsumexp_rows)
        return _LOGSUMEXP_JIT(np.ascontiguousarray(lw))
    peak = lw.max(axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = peak + np.log(np.exp(lw - peak[..., None]).sum(axis=-1))
    return np.where(np.isfinite(peak), out, -np.inf)


def _fused_step_compiled(ctx, state):
    """One fused filter step (lazy import avoids a kernels→engine cycle)."""
    from repro.engine.fused import fused_step_batch

    return fused_step_batch(ctx, state)


_DEFAULT: KernelRegistry | None = None


def default_registry() -> KernelRegistry:
    """The process-wide registry holding the paper's kernel set."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = register_default_kernels(KernelRegistry())
    return _DEFAULT


def kernel_cost_attrs(name: str, params: CostParams,
                      registry: KernelRegistry | None = None) -> dict | None:
    """Span attributes for one dispatch of kernel *name* at shape *params*.

    The telemetry spine attaches the registered :class:`CostSig`'s analytic
    flops / bytes to every ``kernel`` span it records, so a trace carries
    arithmetic-intensity context next to the measured wall time. Returns
    ``None`` for unregistered kernels (spans stay attribute-free rather than
    failing the dispatch that produced them).
    """
    reg = registry if registry is not None else default_registry()
    if name not in reg:
        return None
    try:
        wl = reg.workload(name, params)
    except Exception:  # pragma: no cover - a cost sig must never break tracing
        return None
    return {
        "flops": wl.flops,
        "bytes_read": wl.bytes_read,
        "bytes_written": wl.bytes_written,
        "launches": wl.launches,
    }
