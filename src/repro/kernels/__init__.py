"""Data-parallel kernels.

Each kernel exists in two forms:

- a **batched NumPy** form operating on ``(n_filters, m)`` arrays — the
  execution path the filters actually use (functionally identical to the
  paper's one-work-group-per-sub-filter device kernels), and
- a **work-group (SIMT)** form written against
  :class:`repro.device.simt.WorkGroup` with explicit barriers and local
  memory — executable on the device simulator, which verifies the kernels
  are correct lock-step parallel programs and measures their divergence,
  barrier and bank-conflict behaviour.

Both forms — together with the analytic cost signature the device cost model
prices — are bound into one :class:`~repro.kernels.registry.KernelDef` per
kernel in :mod:`repro.kernels.registry`; the engine, the SIMT validator and
the cost model all dispatch through :func:`~repro.kernels.registry.default_registry`.
"""

from repro.kernels.bitonic import (
    bitonic_argsort_batch,
    bitonic_network,
    bitonic_sort_workgroup,
)
from repro.kernels.scan import (
    blelloch_scan_workgroup,
    exclusive_scan_batch,
    inclusive_scan_batch,
)
from repro.kernels.metropolis import (
    default_metropolis_steps,
    metropolis_resample_batch,
    metropolis_workgroup,
)
from repro.kernels.forms import (
    COMPILED_FORM,
    REFERENCE_FORM,
    ExecutionPolicy,
    maybe_njit,
    numba_available,
)
from repro.kernels.reduce import argmax_reduce_batch, max_reduce_batch, tree_reduce_workgroup
from repro.kernels.exchange import mask_dead_sources, route_pairwise, route_pooled
from repro.kernels.registry import (
    CostParams,
    CostSig,
    KernelDef,
    KernelRegistry,
    default_registry,
    register_default_kernels,
    weight_argsort_batch,
)
from repro.kernels.resample_kernels import (
    alias_build_workgroup,
    alias_sample_workgroup,
    rws_workgroup,
)

__all__ = [
    "bitonic_network",
    "bitonic_argsort_batch",
    "bitonic_sort_workgroup",
    "exclusive_scan_batch",
    "inclusive_scan_batch",
    "blelloch_scan_workgroup",
    "tree_reduce_workgroup",
    "argmax_reduce_batch",
    "max_reduce_batch",
    "rws_workgroup",
    "mask_dead_sources",
    "route_pairwise",
    "route_pooled",
    "alias_sample_workgroup",
    "alias_build_workgroup",
    "default_metropolis_steps",
    "metropolis_resample_batch",
    "metropolis_workgroup",
    "COMPILED_FORM",
    "REFERENCE_FORM",
    "ExecutionPolicy",
    "maybe_njit",
    "numba_available",
    "CostParams",
    "CostSig",
    "KernelDef",
    "KernelRegistry",
    "default_registry",
    "register_default_kernels",
    "weight_argsort_batch",
]
