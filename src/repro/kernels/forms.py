"""Execution-form selection: which implementation of a kernel actually runs.

PR 3's registry bound every kernel to two forms — the batched-NumPy
``batch`` form the filters execute and the lock-step ``workgroup`` form the
device simulator validates. This module generalizes that binding into an
open *execution-form* set: a :class:`~repro.kernels.registry.KernelDef` may
register any number of named extra forms (``compiled`` being the canonical
one — a Numba ``@njit``-compiled or hand-fused NumPy variant), and an
:class:`ExecutionPolicy` decides, per kernel, which form a backend's
``ctx.invoke_kernel`` dispatch resolves to.

The policy is deliberately boring: an ordered preference list with
per-kernel overrides, availability probing (a preferred form that is not
registered, or whose probe fails, is silently skipped), and an unconditional
fallback to the ``reference`` batch form — so a machine without Numba, or a
kernel without a compiled variant, degrades to exactly the behaviour every
golden trace pins.

``warm_up`` exists because JIT compilation must never land inside a timed
span: it runs each selected non-reference form once on tiny synthetic
inputs before the benchmark (or filter) starts timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.registry import KernelDef, KernelRegistry

#: the form every backend ran before execution-form dispatch existed; the
#: unconditional fallback of every policy.
REFERENCE_FORM = "reference"

#: the conventional name for a fused / JIT-compiled variant.
COMPILED_FORM = "compiled"

_NUMBA_AVAILABLE: bool | None = None


def numba_available() -> bool:
    """Whether ``numba.njit`` can be imported on this interpreter (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            from numba import njit  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def maybe_njit(func: Callable | None = None, **options) -> Callable:
    """``numba.njit(cache=True)`` when Numba is importable, identity otherwise.

    Lets a compiled form be written once as plain NumPy-compatible Python:
    with Numba present it JIT-compiles (first call pays the compile, which
    :meth:`ExecutionPolicy.warm_up` hoists out of timed spans); without it
    the same function body runs as ordinary Python, so the form stays
    *available* — merely slower — and the A/B harness can still measure it.
    """
    def decorate(f: Callable) -> Callable:
        if not numba_available():
            return f
        from numba import njit

        options.setdefault("cache", True)
        return njit(**options)(f)

    return decorate(func) if func is not None else decorate


@dataclass(frozen=True)
class ExecutionPolicy:
    """Form preference order + per-kernel overrides + availability probes.

    ``prefer`` is walked front to back; the first form the kernel actually
    provides (and whose probe, if any, passes) wins. ``overrides`` replaces
    the preference list for a single kernel name. ``reference`` (alias
    ``batch``) always resolves — it is implicitly appended — so selection
    can never fail for a kernel that has a batch implementation.
    """

    prefer: tuple[str, ...] = (REFERENCE_FORM,)
    overrides: dict[str, tuple[str, ...]] = field(default_factory=dict)
    probes: dict[str, Callable[[], bool]] = field(default_factory=dict)

    @classmethod
    def from_config(cls, execution: str) -> ExecutionPolicy:
        """The policy a ``DistributedFilterConfig.execution`` string names."""
        if execution in (REFERENCE_FORM, "batch"):
            return cls()
        if execution == COMPILED_FORM:
            return cls(prefer=(COMPILED_FORM, REFERENCE_FORM))
        raise ValueError(
            f"execution must be 'reference' or 'compiled', got {execution!r}")

    # -- selection ----------------------------------------------------------
    def preference_for(self, kernel_name: str) -> tuple[str, ...]:
        pref = self.overrides.get(kernel_name, self.prefer)
        if REFERENCE_FORM not in pref:
            pref = (*pref, REFERENCE_FORM)
        return pref

    def _probe_ok(self, form_name: str) -> bool:
        probe = self.probes.get(form_name)
        if probe is None:
            return True
        try:
            return bool(probe())
        except Exception:
            return False

    def available_forms(self, kdef: KernelDef) -> tuple[str, ...]:
        """Every form *kdef* provides, reference first, extras sorted."""
        forms = []
        if kdef.batch is not None:
            forms.append(REFERENCE_FORM)
        if kdef.workgroup is not None:
            forms.append("workgroup")
        forms.extend(sorted(kdef.forms))
        return tuple(forms)

    def select(self, kdef: KernelDef) -> tuple[str, Callable] | None:
        """``(form_name, impl)`` this policy runs for *kdef*.

        Returns ``None`` only for cost-only kernels (no batch form and no
        preferred extra form) — callers treat that exactly like the old
        ``registry.batch`` ``ValueError`` path.
        """
        for form_name in self.preference_for(kdef.name):
            if form_name in (REFERENCE_FORM, "batch"):
                impl = kdef.batch
            elif form_name == "workgroup":
                impl = kdef.workgroup
            else:
                impl = kdef.forms.get(form_name)
            if impl is not None and self._probe_ok(form_name):
                return form_name, impl
        return None

    # -- warm-up ------------------------------------------------------------
    def warm_up(self, registry: KernelRegistry, names=None, m: int = 8) -> list[str]:
        """Run each selected non-reference form once, outside timed spans.

        Uses the kernel's ``make_inputs`` validation adapter for synthetic
        arguments where it exists (size *m*); kernels without one are
        skipped. JIT compilation — and Numba's on-disk cache population —
        therefore happens here, never inside a benchmark measurement.
        Returns the kernel names actually warmed.
        """
        warmed = []
        rng = np.random.default_rng(0)
        for name in (registry.names() if names is None else names):
            kdef = registry.get(name)
            selected = self.select(kdef)
            if selected is None or selected[0] == REFERENCE_FORM:
                continue
            if kdef.make_inputs is None:
                continue
            try:
                inputs = kdef.make_inputs(rng, m)
                selected[1](*inputs.values())
                warmed.append(name)
            except Exception:
                continue
        return warmed


__all__ = [
    "COMPILED_FORM",
    "ExecutionPolicy",
    "REFERENCE_FORM",
    "maybe_njit",
    "numba_available",
]
