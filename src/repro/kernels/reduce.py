"""Parallel reductions: the global-estimate kernel's core primitive."""

from __future__ import annotations

import numpy as np

from repro.device.memory import LocalMemory
from repro.device.simt import WorkGroup
from repro.utils.validation import check_power_of_two


def tree_reduce_workgroup(wg: WorkGroup, values: LocalMemory, op: str = "max") -> float:
    """Log-depth tree reduction of a local array by one work group.

    ``op`` is ``"max"`` or ``"sum"``. Result lands at index 0 (and is
    returned). The sequentially-addressed form keeps active lanes contiguous
    so late stages stay divergence-light within warps.
    """
    n = values.data.shape[0]
    check_power_of_two(n, "len(values)")
    if n != wg.size:
        raise ValueError("one lane per element required")
    stride = n // 2
    while stride >= 1:
        active = wg.lane < stride
        lanes = wg.lane[active]
        a = values.gather(lanes)
        b = values.gather(lanes + stride)
        if op == "max":
            values.scatter(lanes, np.maximum(a, b))
        elif op == "sum":
            values.scatter(lanes, a + b)
        else:
            raise ValueError(f"unknown reduction op {op!r}")
        wg.op()
        wg.barrier()
        stride //= 2
    return float(values[0])


def argmax_reduce_batch(keys: np.ndarray) -> np.ndarray:
    """Row-wise argmax — the batched form of the max-weight local estimate."""
    return np.argmax(np.atleast_2d(keys), axis=1)


def max_reduce_batch(values: np.ndarray) -> np.ndarray:
    """Row-wise max — the batched form of :func:`tree_reduce_workgroup`."""
    return np.max(np.atleast_2d(np.asarray(values, dtype=np.float64)), axis=1)
