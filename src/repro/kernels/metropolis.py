"""Metropolis resampling (Murray 2012): collective-free ancestor selection.

RWS needs a prefix sum and Vose's method needs a worklist build — both are
cross-lane collective operations whose synchronization cost grows with the
group size. Murray's Metropolis resampler removes the collectives entirely:
every output sample runs a short independent Metropolis chain over the
particle indices, accepting a uniformly proposed ancestor ``j`` over the
current ``i`` with probability ``min(1, w_j / w_i)``. Each chain is pure
gather + predicated select — no barriers after the weights are staged — at
the price of a bias that decays with the chain length ``B``.

Both forms consume *pre-drawn* uniforms in the same order, so the batched
and work-group implementations are bit-identical on identical inputs (the
registry's differential tests rely on this).
"""

from __future__ import annotations

import math

import numpy as np

from repro.device.simt import WorkGroup


def default_metropolis_steps(n: int) -> int:
    """Chain length heuristic: a few multiples of ``log2(n)``.

    Murray derives the length needed for a target bias epsilon from the
    weight distribution; absent that knowledge a small multiple of the
    population's log size keeps the bias comparable to Monte Carlo noise.
    """
    return 4 * int(math.ceil(math.log2(max(n, 2)))) + 8


def metropolis_resample_batch(
    weights: np.ndarray, u_prop: np.ndarray, u_acc: np.ndarray
) -> np.ndarray:
    """Row-wise Metropolis resampling over pre-drawn uniforms.

    Parameters
    ----------
    weights:
        ``(F, m)`` non-negative (unnormalized) weights.
    u_prop / u_acc:
        ``(F, B, k)`` proposal and acceptance uniforms in ``[0, 1)``; ``B``
        is the chain length and ``k`` the number of output samples per row.

    Returns ``(F, k)`` ancestor indices. Chain *s* starts at index
    ``s % m``; acceptance uses the division-free test
    ``u * w_i < w_j`` so zero-weight starting points always escape.
    """
    w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    u_prop = np.asarray(u_prop, dtype=np.float64)
    u_acc = np.asarray(u_acc, dtype=np.float64)
    if u_prop.ndim == 2:
        u_prop = u_prop[None]
    if u_acc.ndim == 2:
        u_acc = u_acc[None]
    F, m = w.shape
    if u_prop.shape != u_acc.shape or u_prop.shape[0] != F:
        raise ValueError(
            f"u_prop/u_acc must share shape (F, B, k); got {u_prop.shape} vs {u_acc.shape}"
        )
    B, k = u_prop.shape[1], u_prop.shape[2]
    i = np.broadcast_to(np.arange(k, dtype=np.int64) % m, (F, k)).copy()
    for b in range(B):
        j = np.minimum((u_prop[:, b] * m).astype(np.int64), m - 1)
        wi = np.take_along_axis(w, i, axis=1)
        wj = np.take_along_axis(w, j, axis=1)
        accept = u_acc[:, b] * wi < wj
        i = np.where(accept, j, i)
    return i


def metropolis_workgroup(
    wg: WorkGroup, weights: np.ndarray, u_prop: np.ndarray, u_acc: np.ndarray
) -> np.ndarray:
    """One work group's Metropolis resampling: one chain per lane.

    ``weights`` is staged into local memory behind a single barrier; the
    chains themselves are barrier-free — every iteration is one gather and
    one predicated select, the property that makes the algorithm attractive
    on SIMT hardware in the first place.
    """
    n = wg.size
    weights = np.asarray(weights, dtype=np.float64)
    u_prop = np.asarray(u_prop, dtype=np.float64)
    u_acc = np.asarray(u_acc, dtype=np.float64)
    if weights.size != n:
        raise ValueError(f"one weight per lane required, got {weights.size} for group {n}")
    if u_prop.shape != u_acc.shape or u_prop.ndim != 2 or u_prop.shape[1] != n:
        raise ValueError(f"u_prop/u_acc must be (B, {n}); got {u_prop.shape} vs {u_acc.shape}")
    mem = wg.local_array(n)
    mem.scatter(wg.lane, weights)
    wg.barrier()
    i = wg.lane.astype(np.int64)
    wi = mem.gather(i)
    for b in range(u_prop.shape[0]):
        j = np.minimum((u_prop[b] * n).astype(np.int64), n - 1)
        wj = mem.gather(j)
        accept = u_acc[b] * wi < wj
        wg.op(2)  # scale + compare
        i = wg.select(accept, j, i)
        wi = wg.select(accept, wj, wi)
    return i
