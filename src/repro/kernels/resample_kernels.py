"""Work-group resampling kernels: RWS and Vose's alias method.

These are the device forms of Section VI-F. The RWS kernel is a parallel
prefix sum plus one binary search per output sample. The Vose kernel follows
the paper's construction: the small/large worklists are built *in place* by
filling a single array forwards with small elements and backwards with large
elements using atomic operations, then pairs are processed
``min(#large, #small)`` at a time — and the returned concurrency trace makes
the paper's observation that "concurrency usually drops steeply towards one"
directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.simt import WorkGroup
from repro.utils.validation import check_power_of_two


def _hillis_steele_inclusive_scan(wg: WorkGroup, values: np.ndarray) -> np.ndarray:
    """Inclusive scan with one lane per element (log n lock-step steps)."""
    mem = wg.local_array(values.size)
    mem.scatter(wg.lane, values)
    wg.barrier()
    offset = 1
    while offset < values.size:
        active = wg.lane >= offset
        src = np.maximum(wg.lane - offset, 0)
        gathered = mem.gather(src)
        cur = mem.gather(wg.lane)
        new = wg.select(active, cur + gathered, cur)
        wg.barrier()  # read phase done before the write phase
        mem.scatter(wg.lane, new)
        wg.barrier()
        offset <<= 1
    return mem.gather(wg.lane)


def rws_workgroup(wg: WorkGroup, weights: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Roulette Wheel Selection by one work group (one lane per particle).

    Initialization: parallel prefix sum of the weights. Generation: each lane
    scales its uniform by the total weight and binary-searches the cumulative
    array (Theta(log n) lock-step gathers, bank conflicts billed naturally).
    """
    n = wg.size
    check_power_of_two(n, "group size")
    weights = np.asarray(weights, dtype=np.float64)
    uniforms = np.asarray(uniforms, dtype=np.float64)
    if weights.size != n or uniforms.size != n:
        raise ValueError("one weight and one uniform per lane required")
    cum_vals = _hillis_steele_inclusive_scan(wg, weights)
    cum = wg.local_array(n)
    cum.scatter(wg.lane, cum_vals)
    wg.barrier()
    total = cum[n - 1]
    target = uniforms * total
    # Binary search: find the first index with cum[idx] > target.
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, n - 1, dtype=np.int64)
    steps = int(np.log2(n)) + 1
    for _ in range(steps):
        mid = (lo + hi) // 2
        vals = cum.gather(mid)
        go_right = vals <= target
        lo = wg.select(go_right, mid + 1, lo)
        hi = wg.select(go_right, hi, mid)
        wg.op()
    return np.minimum(lo, n - 1)


def alias_sample_workgroup(wg: WorkGroup, prob: np.ndarray, alias: np.ndarray, u_select: np.ndarray, u_coin: np.ndarray) -> np.ndarray:
    """Theta(1) alias-table generation: one gather + one predicated select."""
    n = prob.size
    table_p = wg.local_array(n)
    table_a = wg.local_array(n, dtype=np.int64)
    table_p.scatter(wg.lane % n, np.asarray(prob)[wg.lane % n])
    table_a.scatter(wg.lane % n, np.asarray(alias)[wg.lane % n])
    wg.barrier()
    col = np.minimum((np.asarray(u_select) * n).astype(np.int64), n - 1)
    p = table_p.gather(col)
    a = table_a.gather(col)
    return wg.select(np.asarray(u_coin) < p, col, a).astype(np.int64)


@dataclass
class AliasBuildTrace:
    """Instrumentation of the parallel alias-table construction."""

    rounds: int = 0
    concurrency: list[int] = field(default_factory=list)  # pairs processed per round

    @property
    def final_concurrency(self) -> int:
        return self.concurrency[-1] if self.concurrency else 0


def alias_build_workgroup(wg: WorkGroup, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray, AliasBuildTrace]:
    """Build an alias table in one work group, the paper's way.

    Phase 1: classify each particle and append it to an in-place worklist —
    smalls fill the array forwards, larges backwards, positions claimed with
    atomic counters. Phase 2: process ``min(#small, #large)`` pairs per
    round; a large whose residual drops below the mean is re-appended to the
    small side. The trace records per-round pair counts, which collapse
    toward one for skewed weight distributions.
    """
    n = wg.size
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size != n:
        raise ValueError("one weight per lane required")
    scaled = weights * n / weights.sum()
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)

    worklist = wg.local_array(n, dtype=np.int64)
    counters = wg.local_array(2, dtype=np.int64)  # [small_count, large_count]
    is_small = scaled < 1.0
    t_small = wg.atomic_add_scalar(counters, 0, is_small)
    t_large = wg.atomic_add_scalar(counters, 1, ~is_small)
    pos = np.where(is_small, t_small, n - 1 - t_large)
    worklist.scatter(pos, wg.lane)
    wg.barrier()

    n_small = int(counters[0])
    n_large = int(counters[1])
    small_head = 0
    trace = AliasBuildTrace()
    residual = scaled.copy()

    while n_small > 0 and n_large > 0:
        k = min(n_small, n_large)
        trace.rounds += 1
        trace.concurrency.append(k)
        s_idx = worklist.gather(np.arange(small_head, small_head + k))
        l_idx = worklist.gather(np.arange(n - n_large, n - n_large + k))
        prob[s_idx] = residual[s_idx]
        alias[s_idx] = l_idx
        residual[l_idx] -= 1.0 - residual[s_idx]
        wg.op(3)
        wg.barrier()
        small_head += k
        n_small -= k
        # Reclassify the paired larges: those below the mean join the smalls.
        now_small = residual[l_idx] < 1.0
        n_new_small = int(now_small.sum())
        if n_new_small:
            # Append to the small region; the atomic tickets bill the cost of
            # the in-place compaction the real kernel performs.
            wg.atomic_add_scalar(counters, 0, np.isin(wg.lane, l_idx[now_small]))
            worklist.scatter(np.arange(small_head + n_small, small_head + n_small + n_new_small), l_idx[now_small])
            n_small += n_new_small
        # The paired larges leave the large region regardless; survivors
        # (still >= 1) go back at its new tail.
        survivors = l_idx[~now_small]
        n_large -= k
        if survivors.size:
            worklist.scatter(np.arange(n - n_large - survivors.size, n - n_large), survivors)
            n_large += survivors.size
        wg.barrier()

    return prob, alias, trace
