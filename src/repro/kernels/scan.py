"""Parallel prefix sum (Blelloch scan).

RWS initialization needs cumulative weight sums; the paper uses the
bank-conflict-avoiding scan of Harris et al. (GPU Gems 3, ch. 39). The
work-group form implements the up-sweep/down-sweep tree with optional
bank-conflict-avoiding index padding so the simulator can demonstrate the
serialization the padding removes.
"""

from __future__ import annotations

import numpy as np

from repro.device.simt import WorkGroup
from repro.utils.validation import check_power_of_two

_LOG_NUM_BANKS = 5  # 32 banks


def conflict_free_offset(i: np.ndarray | int, avoid: bool = True):
    """The classic padding: shift index i by i >> log2(n_banks)."""
    return (i >> _LOG_NUM_BANKS) if avoid else (i * 0 if isinstance(i, np.ndarray) else 0)


def inclusive_scan_batch(x: np.ndarray) -> np.ndarray:
    """Row-wise inclusive prefix sums (the batched functional equivalent)."""
    return np.cumsum(np.atleast_2d(x), axis=1)


def exclusive_scan_batch(x: np.ndarray) -> np.ndarray:
    """Row-wise exclusive prefix sums."""
    x = np.atleast_2d(x)
    out = np.zeros_like(x)
    np.cumsum(x[:, :-1], axis=1, out=out[:, 1:])
    return out


def blelloch_scan_workgroup(wg: WorkGroup, data: np.ndarray, avoid_conflicts: bool = True) -> np.ndarray:
    """Exclusive scan of ``data`` (length = 2 * group size) by one work group.

    Returns the scanned array. With ``avoid_conflicts=False`` the local
    memory indices hit the same banks at tree depth >= log2(banks), which the
    simulator's conflict counter makes visible (the motivating measurement
    for the padded layout).
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.size
    check_power_of_two(n, "len(data)")
    if n != 2 * wg.size:
        raise ValueError(f"scan of {n} elements needs a work group of {n // 2} threads")
    mem = wg.local_array(n + (conflict_free_offset(n - 1, True) + 1 if avoid_conflicts else 0))
    ai_all = 2 * wg.lane
    bi_all = 2 * wg.lane + 1
    mem.scatter(ai_all + conflict_free_offset(ai_all, avoid_conflicts), data[ai_all])
    mem.scatter(bi_all + conflict_free_offset(bi_all, avoid_conflicts), data[bi_all])
    wg.barrier()

    # Up-sweep: build the reduction tree in place.
    offset = 1
    d = n >> 1
    while d > 0:
        active = wg.lane < d
        lanes = wg.lane[active]
        ai = offset * (2 * lanes + 1) - 1
        bi = offset * (2 * lanes + 2) - 1
        ai = ai + conflict_free_offset(ai, avoid_conflicts)
        bi = bi + conflict_free_offset(bi, avoid_conflicts)
        mem.scatter(bi, mem.gather(bi) + mem.gather(ai))
        wg.op()
        wg.barrier()
        offset <<= 1
        d >>= 1

    # Clear the root, then down-sweep distributing partial sums.
    last = n - 1 + conflict_free_offset(n - 1, avoid_conflicts)
    mem[last] = 0.0
    d = 1
    while d < n:
        offset >>= 1
        wg.barrier()
        active = wg.lane < d
        lanes = wg.lane[active]
        ai = offset * (2 * lanes + 1) - 1
        bi = offset * (2 * lanes + 2) - 1
        ai = ai + conflict_free_offset(ai, avoid_conflicts)
        bi = bi + conflict_free_offset(bi, avoid_conflicts)
        t = mem.gather(ai)
        b_val = mem.gather(bi)
        mem.scatter(ai, b_val)
        mem.scatter(bi, b_val + t)
        wg.op(2)
        d <<= 1
    wg.barrier()

    out = np.empty(n, dtype=np.float64)
    out[ai_all] = mem.gather(ai_all + conflict_free_offset(ai_all, avoid_conflicts))
    out[bi_all] = mem.gather(bi_all + conflict_free_offset(bi_all, avoid_conflicts))
    return out
