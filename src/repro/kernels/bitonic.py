"""Bitonic sort: a fixed O(n log^2 n) comparison network.

The paper sorts each sub-filter's weights with a bitonic sort because its
comparison sequence is data-independent — ideal for lock-step SIMT execution.
Particle data is too large for local memory, so only (weight, index) pairs
are sorted locally and the permutation is applied to global memory afterwards
(non-contiguous reads preferred over non-contiguous writes).
"""

from __future__ import annotations

import numpy as np

from repro.device.simt import WorkGroup
from repro.device.memory import LocalMemory
from repro.utils.arrays import is_power_of_two
from repro.utils.validation import check_power_of_two


def bitonic_network(n: int) -> list[tuple[int, int]]:
    """The (k, j) stage sequence of the bitonic network for *n* elements."""
    check_power_of_two(n, "n")
    stages = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stages.append((k, j))
            j //= 2
        k *= 2
    return stages


def bitonic_argsort_batch(keys: np.ndarray, descending: bool = False) -> np.ndarray:
    """Row-wise argsort via the bitonic network, vectorized over rows.

    ``keys`` is (F, m) with m a power of two. Returns (F, m) permutation
    indices such that ``take_along_axis(keys, perm, 1)`` is sorted. This is
    the batch-equivalent of launching one sorting work group per sub-filter.
    """
    keys = np.atleast_2d(np.asarray(keys))
    F, m = keys.shape
    if not is_power_of_two(m):
        raise ValueError(f"row length must be a power of two, got {m}")
    work = -keys.copy() if descending else keys.copy()
    idx = np.broadcast_to(np.arange(m), (F, m)).copy()
    lane = np.arange(m)
    for k, j in bitonic_network(m):
        partner = lane ^ j
        lo = lane < partner  # each pair handled once, from its low lane
        up = (lane & k) == 0  # ascending block?
        a, b = lane[lo], partner[lo]
        keep_dir = up[lo]
        va, vb = work[:, a], work[:, b]
        swap = np.where(keep_dir, va > vb, va < vb)
        wa = np.where(swap, vb, va)
        wb = np.where(swap, va, vb)
        ia = np.where(swap, idx[:, b], idx[:, a])
        ib = np.where(swap, idx[:, a], idx[:, b])
        work[:, a], work[:, b] = wa, wb
        idx[:, a], idx[:, b] = ia, ib
    return idx


def bitonic_sort_workgroup(wg: WorkGroup, keys: LocalMemory, values: LocalMemory | None = None, descending: bool = False) -> None:
    """In-place bitonic sort of a local-memory array by one work group.

    One lane per element; every network stage is a lock-step compare-exchange
    followed by a barrier, exactly the shape of the paper's sorting kernel.
    ``values`` (e.g. the particle index array) is permuted along with the keys.
    """
    n = keys.data.shape[0]
    if n != wg.size:
        raise ValueError(f"work group size {wg.size} must equal array length {n}")
    lane = wg.lane
    for k, j in bitonic_network(n):
        partner = lane ^ j
        mine = keys.gather(lane)
        theirs = keys.gather(partner)
        up = (lane & k) == 0
        if descending:
            up = ~up
        # Lane keeps min if it is the low lane of an ascending pair (or the
        # high lane of a descending one); predicated select, no branches.
        is_low = lane < partner
        want_min = is_low == up
        keep = wg.select(want_min, np.minimum(mine, theirs), np.maximum(mine, theirs))
        swapped = keep != mine
        if values is not None:
            v_mine = values.gather(lane)
            v_theirs = values.gather(partner)
            values.scatter(lane, wg.select(swapped, v_theirs, v_mine))
        keys.scatter(lane, keep)
        wg.barrier()
