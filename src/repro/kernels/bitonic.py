"""Bitonic sort: a fixed O(n log^2 n) comparison network.

The paper sorts each sub-filter's weights with a bitonic sort because its
comparison sequence is data-independent — ideal for lock-step SIMT execution.
Particle data is too large for local memory, so only (weight, index) pairs
are sorted locally and the permutation is applied to global memory afterwards
(non-contiguous reads preferred over non-contiguous writes).
"""

from __future__ import annotations

import numpy as np

from repro.device.simt import WorkGroup
from repro.device.memory import LocalMemory
from repro.utils.arrays import is_power_of_two, next_power_of_two
from repro.utils.validation import check_power_of_two


def bitonic_network(n: int) -> list[tuple[int, int]]:
    """The (k, j) stage sequence of the bitonic network for *n* elements."""
    check_power_of_two(n, "n")
    stages = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stages.append((k, j))
            j //= 2
        k *= 2
    return stages


def bitonic_argsort_batch(keys: np.ndarray, descending: bool = False) -> np.ndarray:
    """Row-wise argsort via the bitonic network, vectorized over rows.

    ``keys`` is (F, m). Returns (F, m) permutation indices such that
    ``take_along_axis(keys, perm, 1)`` is sorted. This is the
    batch-equivalent of launching one sorting work group per sub-filter.

    A non-power-of-two row length is handled by padding internally with
    ``+inf`` sentinel keys (after the descending negation, so the pad always
    sorts to the tail of the network) and dropping the sentinel slots from
    the returned permutation — the sort itself still runs the fixed
    power-of-two comparison network.
    """
    keys = np.atleast_2d(np.asarray(keys))
    F, m = keys.shape
    n = m if is_power_of_two(m) else next_power_of_two(m)
    work = -keys.copy() if descending else keys.copy()
    if n != m:
        if not np.issubdtype(work.dtype, np.floating):
            work = work.astype(np.float64)  # the sentinel needs an inf
        work = np.concatenate([work, np.full((F, n - m), np.inf, dtype=work.dtype)], axis=1)
    idx = np.broadcast_to(np.arange(n), (F, n)).copy()
    lane = np.arange(n)
    for k, j in bitonic_network(n):
        partner = lane ^ j
        lo = lane < partner  # each pair handled once, from its low lane
        up = (lane & k) == 0  # ascending block?
        a, b = lane[lo], partner[lo]
        keep_dir = up[lo]
        va, vb = work[:, a], work[:, b]
        swap = np.where(keep_dir, va > vb, va < vb)
        wa = np.where(swap, vb, va)
        wb = np.where(swap, va, vb)
        ia = np.where(swap, idx[:, b], idx[:, a])
        ib = np.where(swap, idx[:, a], idx[:, b])
        work[:, a], work[:, b] = wa, wb
        idx[:, a], idx[:, b] = ia, ib
    if n != m:
        # Drop the sentinel slots; each row keeps exactly m real entries, in
        # sorted order (ties between real +/-inf keys and sentinels are
        # harmless — equal keys are interchangeable, and the filter keeps
        # only real indices).
        idx = idx[idx < m].reshape(F, m)
    return idx


def bitonic_sort_workgroup(wg: WorkGroup, keys: LocalMemory, values: LocalMemory | None = None, descending: bool = False) -> None:
    """In-place bitonic sort of a local-memory array by one work group.

    One lane per element; every network stage is a lock-step compare-exchange
    followed by a barrier, exactly the shape of the paper's sorting kernel.
    ``values`` (e.g. the particle index array) is permuted along with the keys.

    Mirroring the batched form, a non-power-of-two array is sorted by staging
    it into a power-of-two local scratch padded with sentinel keys that sort
    to the tail (``+inf`` ascending, ``-inf`` descending); the work group must
    then have ``next_power_of_two(len(keys))`` lanes. The padded path assumes
    finite keys — a real ``+/-inf`` key could tie with a sentinel and be
    displaced into the pad region.
    """
    n = keys.data.shape[0]
    n2 = n if is_power_of_two(n) else next_power_of_two(n)
    if n2 != wg.size:
        need = f"{n2} (padded from {n})" if n2 != n else str(n)
        raise ValueError(f"work group size {wg.size} must equal array length {need}")
    if n2 != n:
        _bitonic_sort_padded(wg, keys, values, descending, n)
        return
    _bitonic_sort_core(wg, keys, values, descending)


def _bitonic_sort_core(wg: WorkGroup, keys: LocalMemory, values: LocalMemory | None, descending: bool) -> None:
    n = keys.data.shape[0]
    lane = wg.lane
    for k, j in bitonic_network(n):
        partner = lane ^ j
        mine = keys.gather(lane)
        theirs = keys.gather(partner)
        up = (lane & k) == 0
        if descending:
            up = ~up
        # Lane keeps min if it is the low lane of an ascending pair (or the
        # high lane of a descending one); predicated select, no branches.
        is_low = lane < partner
        want_min = is_low == up
        keep = wg.select(want_min, np.minimum(mine, theirs), np.maximum(mine, theirs))
        swapped = keep != mine
        if values is not None:
            v_mine = values.gather(lane)
            v_theirs = values.gather(partner)
            values.scatter(lane, wg.select(swapped, v_theirs, v_mine))
        keys.scatter(lane, keep)
        wg.barrier()


def _bitonic_sort_padded(wg: WorkGroup, keys: LocalMemory, values: LocalMemory | None, descending: bool, n: int) -> None:
    """Sort a non-power-of-two array by staging into padded local scratch."""
    n2 = wg.size
    lane = wg.lane
    real = lane < n
    sentinel = -np.inf if descending else np.inf
    src = np.minimum(lane, n - 1)  # clamp so pad lanes gather in-bounds
    kpad = wg.local_array(n2)
    kpad.scatter(lane, wg.select(real, keys.gather(src), np.full(n2, sentinel)))
    vpad = None
    if values is not None:
        vpad = wg.local_array(n2, dtype=values.data.dtype)
        vpad.scatter(lane, wg.select(real, values.gather(src), np.zeros(n2, dtype=values.data.dtype)))
    wg.barrier()
    _bitonic_sort_core(wg, kpad, vpad, descending)
    # Sentinels sorted to the tail; the first n slots are the real result.
    live = lane[:n]
    keys.scatter(live, kpad.gather(live))
    if values is not None:
        values.scatter(live, vpad.gather(live))
    wg.barrier()
