"""Particle-exchange routing kernels (batched forms).

Given each sub-filter's outgoing contribution (its best-t particles), these
functions compute what every sub-filter *receives*:

- :func:`route_pairwise` — Ring/Torus/graph topologies: gather each
  neighbour's contribution via the dense neighbour table (a batched gather,
  which is exactly the device kernel's shape).
- :func:`route_pooled` — All-to-All: all contributions enter one global
  pool; every sub-filter reads back the same top-t of the pool.

Both are used by :class:`~repro.core.distributed.DistributedParticleFilter`
and by the multiprocessing master (the routing is identical whether the
blocks live in one address space or many).
"""

from __future__ import annotations

import numpy as np

_NEG_INF = -np.inf


def route_pairwise(
    send_states: np.ndarray,
    send_logw: np.ndarray,
    table: np.ndarray,
    mask: np.ndarray,
    out_states: np.ndarray | None = None,
    out_logw: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Receive buffers for pairwise exchange.

    Parameters
    ----------
    send_states / send_logw:
        ``(F, t, d)`` / ``(F, t)`` — each sub-filter's outgoing particles.
    table / mask:
        ``(F, D)`` neighbour table padded with -1 and its validity mask.
    out_states / out_logw:
        optional preallocated C-contiguous receive buffers ``(F, D*t, d)``
        (matching ``send_states`` dtype) and ``(F, D*t)`` float64; when given
        the gather writes in place and returns them, enabling allocation-free
        rounds (and zero-copy routing into shared-memory slabs).

    Returns
    -------
    ``(recv_states (F, D*t, d), recv_logw (F, D*t))`` with padded slots
    carrying ``-inf`` weight so they can never be resampled.
    """
    send_states = np.asarray(send_states)
    send_logw = np.asarray(send_logw)
    table = np.asarray(table)
    mask = np.asarray(mask, dtype=bool)
    if send_states.ndim != 3 or send_logw.shape != send_states.shape[:2]:
        raise ValueError("send_states must be (F, t, d) with matching send_logw (F, t)")
    if table.shape != mask.shape or table.shape[0] != send_states.shape[0]:
        raise ValueError("table/mask must be (F, D)")
    F, t, d = send_states.shape
    D = table.shape[1]
    src = np.maximum(table, 0)
    if out_states is None and out_logw is None:
        recv_states = send_states[src]  # (F, D, t, d)
        recv_logw = np.where(mask[:, :, None], send_logw[src], _NEG_INF)  # (F, D, t)
        return recv_states.reshape(F, D * t, d), recv_logw.reshape(F, D * t)
    if out_states is None or out_logw is None:
        raise ValueError("out_states and out_logw must be given together")
    if out_states.shape != (F, D * t, d) or out_logw.shape != (F, D * t):
        raise ValueError("out buffers must be (F, D*t, d) / (F, D*t)")
    if not (out_states.flags.c_contiguous and out_logw.flags.c_contiguous):
        raise ValueError("out buffers must be C-contiguous")
    np.take(send_states, src, axis=0, out=out_states.reshape(F, D, t, d))
    np.take(send_logw, src, axis=0, out=out_logw.reshape(F, D, t))
    out_logw.reshape(F, D, t)[~mask] = _NEG_INF
    return out_states, out_logw


def mask_dead_sources(table: np.ndarray, mask: np.ndarray, alive: np.ndarray) -> np.ndarray:
    """Shrink a neighbour-table validity mask to live endpoints only.

    ``alive`` is a boolean liveness vector ``(F,)``. A table slot stays
    valid only when both the receiving sub-filter and the slot's source are
    alive — dead sub-filters neither deliver particles nor consume any.
    This is the cheap per-round guard (a pair of gathers, same shape as the
    routing kernels); full rerouting with bridged connectivity is the
    :class:`repro.resilience.TopologyHealer`'s job.
    """
    table = np.asarray(table)
    mask = np.asarray(mask, dtype=bool)
    alive = np.asarray(alive, dtype=bool)
    if table.shape != mask.shape:
        raise ValueError("table/mask must share shape (F, D)")
    if alive.shape != (table.shape[0],):
        raise ValueError(f"alive must be (F,) = ({table.shape[0]},), got {alive.shape}")
    src = np.maximum(table, 0)
    return mask & alive[src] & alive[:, None]


def pooled_top_t_indices(flat_logw: np.ndarray, t: int) -> np.ndarray:
    """Indices of the pool's *t* best weights, best first.

    Bit-identical to ``np.argsort(-flat_logw, kind="stable")[:t]`` — the
    stable-descending convention every backend shares — but via
    ``np.partition`` when ``t`` is much smaller than the pool, so the cost is
    O(n + t log t) instead of O(n log n). The threshold partition keeps the
    stable tie order exactly: candidates strictly above the cutoff all
    qualify; candidates *at* the cutoff qualify in index order until t is
    reached (which is precisely what a stable descending sort yields,
    including ``-inf`` ties). A NaN cutoff (NaNs sort last under ``-x`` but
    poison comparisons) falls back to the full stable argsort.
    """
    n = flat_logw.size
    if t >= n:
        return np.argsort(-flat_logw, kind="stable")[:t]
    thr = np.partition(flat_logw, n - t)[n - t]
    if np.isnan(thr):
        return np.argsort(-flat_logw, kind="stable")[:t]
    idx_gt = np.flatnonzero(flat_logw > thr)
    if idx_gt.size > t:
        # NaNs present: > comparisons excluded them but they outrank nothing;
        # the stable order among the survivors still needs the full tiebreak.
        return np.argsort(-flat_logw, kind="stable")[:t]
    idx_eq = np.flatnonzero(flat_logw == thr)[: t - idx_gt.size]
    cand = np.concatenate([idx_gt, idx_eq])
    if cand.size < t:
        # NaNs below the cutoff stole slots; only the full sort ranks them.
        return np.argsort(-flat_logw, kind="stable")[:t]
    order = np.argsort(-flat_logw[cand], kind="stable")
    return cand[order]


def route_pooled(
    send_states: np.ndarray,
    send_logw: np.ndarray,
    t: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Receive buffers for All-to-All pooled exchange.

    All contributions are pooled; every sub-filter receives copies of the
    pool's *t* globally best particles — the "same particles fed into all
    sub-filters" behaviour that collapses diversity. Selection switches to
    the partition-based :func:`pooled_top_t_indices` (registered as the
    cheaper ``route_pooled_topk`` cost signature) once ``t`` is small
    relative to the pool; results are bit-identical either way.
    """
    send_states = np.asarray(send_states)
    send_logw = np.asarray(send_logw)
    if send_states.ndim != 3 or send_logw.shape != send_states.shape[:2]:
        raise ValueError("send_states must be (F, t', d) with matching send_logw")
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    F, tp, d = send_states.shape
    flat_states = send_states.reshape(F * tp, d)
    flat_logw = send_logw.reshape(F * tp)
    if t * 8 <= flat_logw.size:
        top = pooled_top_t_indices(flat_logw, t)
    else:
        top = np.argsort(-flat_logw, kind="stable")[:t]
    recv_states = np.broadcast_to(flat_states[top], (F, top.size, d))
    recv_logw = np.broadcast_to(flat_logw[top], (F, top.size))
    return recv_states, recv_logw
