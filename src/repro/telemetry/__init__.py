"""Structured telemetry: one observability spine for every backend.

The paper's headline results are performance *breakdowns* — which kernel
dominates as m, N, and the state dimension scale. This package is the
single layer all of the repo's diagnostics feed: hierarchical spans
(run → step → stage → kernel) with attached counters and attributes,
collected by a process-local :class:`Tracer` and rendered by exporters
(JSONL event log, Chrome/Perfetto ``trace_event`` JSON, plain-text summary
tables). The engine's stage hooks, the device cost model, the resilience
monitor and the multiprocess backend all emit here; see
``docs/observability.md`` for the span model and per-backend merge
semantics.
"""

from repro.telemetry.exporters import (
    TRACE_EVENT_REQUIRED_KEYS,
    ChromeTraceExporter,
    JsonlExporter,
    SummaryExporter,
    allocation_table,
    breakdown,
    chrome_trace,
    jsonl_events,
    summary_table,
    validate_trace_events,
    write_chrome_trace,
)
from repro.telemetry.tracer import (
    SPAN_KINDS,
    Span,
    Tracer,
    reset_hook_error_warnings,
    run_metadata,
    spans_from_wire,
    spans_to_wire,
    warn_hook_error_once,
)

__all__ = [
    "SPAN_KINDS",
    "TRACE_EVENT_REQUIRED_KEYS",
    "ChromeTraceExporter",
    "JsonlExporter",
    "Span",
    "SummaryExporter",
    "Tracer",
    "allocation_table",
    "breakdown",
    "chrome_trace",
    "jsonl_events",
    "reset_hook_error_warnings",
    "run_metadata",
    "spans_from_wire",
    "spans_to_wire",
    "summary_table",
    "validate_trace_events",
    "warn_hook_error_once",
    "write_chrome_trace",
]
