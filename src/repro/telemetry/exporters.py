"""Telemetry exporters: JSONL event log, Chrome trace, text summary.

All exporters consume the same inputs — a list of finished
:class:`~repro.telemetry.tracer.Span` objects plus the counter dict — and
are pure encoders: they never mutate the tracer. Each class also works as a
``Tracer.attach`` sink via its ``export(spans, counters, labels=...)``
method; the module-level functions are the direct forms.

Chrome ``trace_event`` format
-----------------------------
:func:`chrome_trace` emits the JSON object format (``{"traceEvents":
[...]}``) using complete events (``"ph": "X"``) with microsecond ``ts`` /
``dur``, one process track per producing process (master + each worker),
process-name metadata events, and a trailing instant event carrying the
counter totals. ``chrome://tracing`` and https://ui.perfetto.dev open the
file directly. Every event carries the required keys ``ph``/``ts``/``pid``/
``tid``/``name``.
"""

from __future__ import annotations

import json

from repro.telemetry.tracer import Span

#: keys every emitted trace event must carry (validated by the CLI smoke test).
TRACE_EVENT_REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def _clean_attrs(attrs: dict | None) -> dict:
    if not attrs:
        return {}
    out = {}
    for k, v in attrs.items():
        try:
            json.dumps(v)
            out[str(k)] = v
        except (TypeError, ValueError):
            out[str(k)] = repr(v)
    return out


def chrome_trace(spans: list[Span], counters: dict | None = None,
                 labels: dict | None = None) -> dict:
    """The ``trace_event`` JSON object for *spans* (timestamps re-based to 0)."""
    events: list[dict] = []
    base = min((s.start for s in spans), default=0.0)
    for pid, label in sorted((labels or {}).items()):
        events.append({
            "ph": "M", "ts": 0, "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": str(label)},
        })
    last = 0.0
    for s in spans:
        if s.end is None:
            continue
        events.append({
            "ph": "X",
            "ts": (s.start - base) * 1e6,
            "dur": max(s.end - s.start, 0.0) * 1e6,
            "pid": s.pid,
            "tid": s.tid,
            "name": s.name,
            "cat": s.kind,
            "args": _clean_attrs(s.attrs),
        })
        last = max(last, (s.end - base) * 1e6)
    if counters:
        pid = spans[0].pid if spans else 0
        events.append({
            "ph": "i", "ts": last, "pid": pid, "tid": 0, "s": "g",
            "name": "counters", "cat": "counter",
            "args": {k: counters[k] for k in sorted(counters)},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: list[Span], counters: dict | None = None,
                       labels: dict | None = None) -> dict:
    """Write :func:`chrome_trace` output to *path*; returns the object."""
    obj = chrome_trace(spans, counters, labels)
    with open(path, "w") as fh:
        json.dump(obj, fh)
        fh.write("\n")
    return obj


def validate_trace_events(obj: dict) -> list[dict]:
    """Check *obj* against the ``trace_event`` schema subset we guarantee.

    Returns the event list; raises ``ValueError`` naming the first offence.
    Used by the CLI smoke test and the CI trace-artifact step.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be a JSON object with a 'traceEvents' list")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for i, ev in enumerate(events):
        for key in TRACE_EVENT_REQUIRED_KEYS:
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] is missing required key {key!r}: {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            raise ValueError(f"traceEvents[{i}] is a complete event without 'dur'")
    return events


class ChromeTraceExporter:
    """``Tracer.attach`` sink writing a Chrome/Perfetto trace on flush."""

    def __init__(self, path: str):
        self.path = path

    def export(self, spans, counters, labels=None) -> None:
        write_chrome_trace(self.path, spans, counters, labels)


def jsonl_events(spans: list[Span], counters: dict | None = None) -> list[dict]:
    """One JSON-ready record per span, plus one per counter total."""
    rows = [
        {"type": "span", "name": s.name, "kind": s.kind, "start": s.start,
         "end": s.end, "pid": s.pid, "tid": s.tid,
         "attrs": _clean_attrs(s.attrs)}
        for s in spans
        if s.end is not None
    ]
    for name in sorted(counters or {}):
        rows.append({"type": "counter", "name": name, "value": counters[name]})
    return rows


class JsonlExporter:
    """``Tracer.attach`` sink appending one JSON object per line on flush."""

    def __init__(self, path: str):
        self.path = path

    def export(self, spans, counters, labels=None) -> None:
        with open(self.path, "a") as fh:
            for row in jsonl_events(spans, counters):
                fh.write(json.dumps(row))
                fh.write("\n")


def breakdown(spans: list[Span], kind: str = "stage") -> dict[str, float]:
    """Total seconds per span name over spans of *kind*."""
    out: dict[str, float] = {}
    for s in spans:
        if s.kind == kind and s.end is not None:
            out[s.name] = out.get(s.name, 0.0) + (s.end - s.start)
    return out


def allocation_table(counters: dict) -> list[str]:
    """Per-sub-filter allocation rows from the ``alloc.*`` counter family.

    One row per sub-filter showing its latest live width and pre-resample
    ESS gauge, preceded by the scalar allocation counters (migration totals,
    weight-mass HHI). Empty list when no ``alloc.*`` counters were recorded.
    """
    alloc = {k[len("alloc."):]: v for k, v in counters.items()
             if k.startswith("alloc.")}
    if not alloc:
        return []
    lines = ["allocation:"]
    for name in sorted(k for k in alloc
                       if not k.startswith(("ess.f", "width.f"))):
        lines.append(f"  {name:<28} {alloc[name]:g}")
    ess = {int(k[len("ess.f"):]): v for k, v in alloc.items()
           if k.startswith("ess.f")}
    widths = {int(k[len("width.f"):]): v for k, v in alloc.items()
              if k.startswith("width.f")}
    if ess or widths:
        lines.append(f"  {'sub-filter':<12} {'width':>8} {'ess':>10}")
        for i in sorted(set(ess) | set(widths)):
            w = f"{widths[i]:g}" if i in widths else "-"
            e = f"{ess[i]:.2f}" if i in ess else "-"
            lines.append(f"  f{i:<11} {w:>8} {e:>10}")
    return lines


def summary_table(spans: list[Span], counters: dict | None = None) -> str:
    """Plain-text per-stage/per-kernel breakdown (the paper's Fig. 5-8 shape).

    Stage rows show seconds and the share of total stage time — the same
    quantity as ``PhaseTimer.fractions()`` — followed by the per-kernel
    totals, the allocation table (when ``alloc.*`` counters exist) and the
    remaining counter totals.
    """
    lines: list[str] = []
    for kind, title in (("stage", "per-stage breakdown"), ("kernel", "per-kernel breakdown")):
        agg = breakdown(spans, kind)
        if not agg:
            continue
        total = sum(agg.values())
        lines.append(f"{title} (total {total * 1e3:.3f} ms):")
        for name, sec in sorted(agg.items(), key=lambda kv: -kv[1]):
            frac = sec / total if total > 0 else 0.0
            lines.append(f"  {name:<16} {sec * 1e3:10.3f} ms  {frac:6.1%}")
    lines.extend(allocation_table(counters or {}))
    plain = {k: counters[k] for k in sorted(counters or {})
             if not k.startswith("alloc.")}
    if plain:
        lines.append("counters:")
        for name in sorted(plain):
            lines.append(f"  {name:<28} {plain[name]:g}")
    return "\n".join(lines) if lines else "(no spans recorded)"


class SummaryExporter:
    """``Tracer.attach`` sink printing the text summary on flush."""

    def __init__(self, stream=None):
        self.stream = stream

    def export(self, spans, counters, labels=None) -> None:
        import sys

        print(summary_table(spans, counters), file=self.stream or sys.stdout)
