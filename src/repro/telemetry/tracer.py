"""Hierarchical spans and counters: the structured telemetry spine.

A :class:`Span` is one timed interval on the merged timeline — a whole
``run``, one filtering ``step``, one pipeline ``stage``, or one registered
``kernel`` dispatch — tagged with the process/thread that produced it and an
open attribute dict (flops/bytes from the kernel cost signatures, heal
deltas, routing widths...). A :class:`Tracer` is the process-local collector:
an explicit-clock span stack (``begin``/``end`` or the :meth:`Tracer.span`
context manager), always-on counters, and a list of finished spans that
exporters (:mod:`repro.telemetry.exporters`) turn into a JSONL event log, a
Chrome/Perfetto ``trace_event`` file, or a plain-text breakdown table.

Span recording is **off by default**: a disabled tracer's ``begin``/``end``
are constant-time no-ops, so the hooks that carry telemetry through every
backend (see :mod:`repro.engine.hooks`) cost nothing measurable until an
exporter is attached or :attr:`Tracer.enabled` is set. Counters are always
live — they are plain dict adds and several subsystems (transport fallback
accounting, hook error isolation) rely on them unconditionally.

Cross-process merging: worker processes record spans against their own
``time.perf_counter`` clock and ship them through :func:`spans_to_wire`; the
master re-bases them onto its own clock with :func:`spans_from_wire` using a
per-worker offset estimated at reply receipt (``master_recv_clock -
worker_reply_clock``), giving one merged timeline (see
``docs/observability.md`` for the alignment error bound).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Canonical span kinds, outermost first. ``event`` marks instants.
SPAN_KINDS = ("run", "step", "stage", "kernel", "event")


@dataclass
class Span:
    """One finished (or still-open) timed interval."""

    name: str
    kind: str
    start: float
    end: float | None = None
    pid: int = 0
    tid: int = 0
    attrs: dict | None = None

    @property
    def duration(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start


def run_metadata() -> dict:
    """Attributable run provenance: git SHA, interpreter, platform, CPUs.

    Every field degrades to ``None`` rather than raising (benchmarks run
    outside git checkouts; exotic platforms may lack ``cpu_count``), so the
    record is safe to stamp unconditionally into reports and run spans.
    """
    import platform as _platform
    import subprocess

    try:
        import numpy as _np

        numpy_version = _np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep everywhere else
        numpy_version = None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        git_sha = sha.stdout.strip() if sha.returncode == 0 else None
    except Exception:
        git_sha = None
    return {
        "git_sha": git_sha,
        "python": _platform.python_version(),
        "numpy": numpy_version,
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "cpu_count": os.cpu_count(),
    }


class Tracer:
    """Process-local span collector with an explicit clock.

    Parameters
    ----------
    clock:
        the time source; defaults to :func:`time.perf_counter`. Tests inject
        deterministic clocks; worker/master alignment assumes both sides use
        the same monotonic source.
    enabled:
        whether ``begin``/``end``/``add`` record anything. Attaching an
        exporter enables the tracer.
    pid / tid:
        identity stamped on every span this tracer records.
    """

    def __init__(self, clock=time.perf_counter, enabled: bool = False,
                 pid: int | None = None, tid: int = 0):
        self.clock = clock
        self.enabled = bool(enabled)
        self.pid = os.getpid() if pid is None else int(pid)
        self.tid = int(tid)
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self._stack: list[Span] = []
        self._exporters: list = []
        #: pid -> human label, used by exporters to name process tracks.
        self.labels: dict[int, str] = {}

    # -- span stack -----------------------------------------------------------
    def begin(self, name: str, kind: str = "stage", **attrs) -> Span | None:
        """Open a span; no-op (returning ``None``) while disabled."""
        if not self.enabled:
            return None
        span = Span(name=name, kind=kind, start=self.clock(),
                    pid=self.pid, tid=self.tid, attrs=attrs or None)
        self._stack.append(span)
        return span

    def end(self, **attrs) -> Span | None:
        """Close the innermost open span; tolerant of a begin-less end.

        A hook whose ``on_stage_start`` raised (or ran while the tracer was
        disabled) produces an unbalanced ``end`` — swallowing it keeps hook
        error isolation from cascading.
        """
        if not self.enabled or not self._stack:
            return None
        span = self._stack.pop()
        span.end = self.clock()
        if attrs:
            span.attrs = {**(span.attrs or {}), **attrs}
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "stage", **attrs):
        opened = self.begin(name, kind, **attrs) is not None
        try:
            yield
        finally:
            if opened:
                self.end()

    def add(self, name: str, kind: str, start: float, end: float,
            attrs: dict | None = None, pid: int | None = None,
            tid: int | None = None) -> Span | None:
        """Record an already-measured interval (no stack involvement)."""
        if not self.enabled:
            return None
        span = Span(name=name, kind=kind, start=start, end=end,
                    pid=self.pid if pid is None else pid,
                    tid=self.tid if tid is None else tid, attrs=attrs)
        self.spans.append(span)
        return span

    def instant(self, name: str, kind: str = "event", **attrs) -> Span | None:
        """A zero-duration marker span."""
        if not self.enabled:
            return None
        now = self.clock()
        return self.add(name, kind, now, now, attrs=attrs or None)

    def annotate(self, **attrs) -> None:
        """Merge attrs into the innermost open span (no-op when none)."""
        if self._stack:
            span = self._stack[-1]
            span.attrs = {**(span.attrs or {}), **attrs}

    # -- counters (always live) ----------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest observation of *name* (overwrite, don't sum).

        Gauges share the counter dict — exporters render both — but carry
        point-in-time readings (per-sub-filter ESS, weight-mass HHI) where
        accumulation would be meaningless.
        """
        self.counters[name] = float(value)

    # -- merging ---------------------------------------------------------------
    def merge(self, spans: list[Span], label: str | None = None) -> None:
        """Adopt already-aligned foreign spans (from a worker process)."""
        self.spans.extend(spans)
        if label is not None and spans:
            self.labels[spans[0].pid] = label

    # -- export -----------------------------------------------------------------
    def attach(self, exporter) -> object:
        """Attach an exporter and enable span recording; returns it."""
        self._exporters.append(exporter)
        self.enabled = True
        return exporter

    def flush(self) -> None:
        """Push the collected spans/counters to every attached exporter.

        A raising exporter must never abort the run it observed: failures
        are swallowed into the ``telemetry_errors`` counter (warned once via
        the same channel as hook errors).
        """
        for exporter in self._exporters:
            try:
                exporter.export(self.spans, self.counters, labels=self.labels)
            except Exception:
                self.count("telemetry_errors")
                warn_hook_error_once(type(exporter).__name__ + ".export")

    def drain(self) -> tuple[list[Span], dict[str, float]]:
        """Detach and return (spans, counters), clearing the collector."""
        spans, counters = self.spans, self.counters
        self.spans, self.counters = [], {}
        return spans, counters

    def clear(self) -> None:
        self.spans = []
        self.counters = {}
        self._stack = []


# ---------------------------------------------------------------------------
# Wire format: how worker spans travel in the phase-2 reply.
# ---------------------------------------------------------------------------


def spans_to_wire(spans: list[Span]) -> list[tuple]:
    """Compact picklable rows ``(name, kind, start, end, pid, tid, attrs)``."""
    return [
        (s.name, s.kind, s.start, s.end, s.pid, s.tid, s.attrs)
        for s in spans
        if s.end is not None
    ]

def spans_from_wire(rows: list[tuple], offset: float = 0.0) -> list[Span]:
    """Rebuild spans, shifting their clock by *offset* seconds.

    ``offset`` is the receiver-clock minus sender-clock estimate; adding it
    re-bases the sender's timestamps onto the receiver's timeline.
    """
    return [
        Span(name=r[0], kind=r[1], start=r[2] + offset, end=r[3] + offset,
             pid=r[4], tid=r[5], attrs=r[6])
        for r in rows
    ]


# ---------------------------------------------------------------------------
# Warn-once channel shared by hook/exporter error isolation.
# ---------------------------------------------------------------------------

_warned: set = set()


def warn_hook_error_once(where: str) -> None:
    """Emit one RuntimeWarning per call-site name per process."""
    import warnings

    if where in _warned:
        return
    _warned.add(where)
    warnings.warn(
        f"telemetry observer {where} raised; the filter step completed but "
        "telemetry from this observer may be incomplete (counted in "
        "telemetry_errors; further errors at this site are suppressed)",
        RuntimeWarning, stacklevel=3)


def reset_hook_error_warnings() -> None:
    """Test hook: forget which sites already warned."""
    _warned.clear()
