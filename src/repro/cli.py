"""Command-line interface: ``esthera <command>``.

Commands
--------
- ``track``   — run the robotic-arm tracking demo with a chosen configuration.
- ``bench``   — regenerate one figure/table of the paper (fig3..fig9, tables),
  or run the multiprocess transport benchmark (``bench multiprocess``).
- ``report``  — regenerate the full evaluation as a Markdown report.
- ``platforms`` — list the simulated Table III platforms.
- ``kernels`` — list registered kernels with predicted costs on a platform.
- ``trace``   — run a short traced filtering run and write the merged
  step/stage/kernel timeline as a Chrome/Perfetto ``trace_event`` file
  (open in ``ui.perfetto.dev``; see ``docs/observability.md``).
- ``run``     — run a linear-Gaussian smoke filter; ``--checkpoint`` saves a
  resumable snapshot, ``--resume`` continues one bit-identically
  (see ``docs/robustness.md``).
- ``chaos``   — soak the multiprocess backend under a seeded random
  ``FaultPlan`` with heartbeat supervision; print/export the
  ``ResilienceReport`` and supervisor event log.
- ``shard-plan`` — partition the sub-filter exchange graph into shards and
  report per-strategy cut sizes and predicted cut-edge wire bytes
  (see ``docs/architecture.md``, "Sharding & transports").
"""

from __future__ import annotations

import argparse
import sys


def _cmd_track(args) -> int:
    from repro.bench.harness import arm_truth, format_table
    from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
    from repro.models import RobotArmModel, RobotArmParams

    model = RobotArmModel(RobotArmParams(n_joints=args.joints))
    cfg = DistributedFilterConfig(
        n_particles=args.particles,
        n_filters=args.filters,
        topology=args.topology,
        n_exchange=args.exchange,
        estimator=args.estimator,
        seed=args.seed,
    )
    truth = arm_truth(args.steps, seed=args.seed + 1000, model=model)
    run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
    print(format_table([
        {
            "total_particles": cfg.total_particles,
            "topology": args.topology,
            "error_m": run.mean_error(warmup=min(args.steps // 3, 30)),
            "host_hz": run.update_rate_hz,
        }
    ]))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        format_table,
        run_fig3,
        run_fig4a,
        run_fig4b,
        run_fig4c,
        run_fig5_centralized,
        run_fig5_subfilter,
        run_fig6,
        run_fig7,
        run_fig8,
        run_fig9,
        table2_rows,
        table3_rows,
    )

    target = args.figure
    handlers = {
        "multiprocess": _cmd_bench_multiprocess,
        "allocation": _cmd_bench_allocation,
        "kernels": _cmd_bench_kernels,
        "sessions": _cmd_bench_sessions,
        "shard": _cmd_bench_shard,
    }
    if target in handlers:
        try:
            return handlers[target](args)
        except ValueError as exc:
            # e.g. an unknown --grid name: a clean diagnostic beats a
            # KeyError traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if target == "fig3":
        print(format_table(run_fig3()))
    elif target == "fig4":
        for label, rows in (("4a", run_fig4a()), ("4b", run_fig4b()), ("4c", run_fig4c())):
            print(f"== Fig {label} ==")
            print(format_table(rows))
    elif target == "fig5":
        print("== centralized =="); print(format_table(run_fig5_centralized()))
        print("== sub-filter =="); print(format_table(run_fig5_subfilter()))
    elif target == "fig6":
        print(format_table(run_fig6()))
    elif target == "fig7":
        print(format_table(run_fig7()))
    elif target == "fig8":
        r = run_fig8()
        print(f"high converged at {r['high_converged_at']}, final {r['high_errors'][-20:].mean():.3f} m")
        print(f"low converged at {r['low_converged_at']}, final {r['low_errors'][-20:].mean():.3f} m")
    elif target == "fig9":
        print(format_table(run_fig9()))
    elif target == "tables":
        print("== Table II =="); print(format_table(table2_rows()))
        print("== Table III =="); print(format_table(table3_rows()))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown target {target}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench_multiprocess(args) -> int:
    from repro.bench.perf import (
        measure_telemetry_overhead,
        run_multiprocess_bench,
        write_report,
    )

    steps = args.steps if args.steps is not None else 30
    warmup = args.warmup if args.warmup is not None else 3
    backends = ["vectorized", "pipe", "shm"]
    if getattr(args, "transport", None):
        _check_transport(args.transport)  # ValueError → exit 2 upstream
        if args.transport not in backends:
            backends.append(args.transport)
    report = run_multiprocess_bench(grid=args.grid, steps=steps,
                                    warmup=warmup, trace_path=args.trace,
                                    allocation=args.allocation,
                                    backends=tuple(backends))
    if args.trace:
        print(f"wrote {args.trace}")
    if args.assert_overhead is not None:
        overhead = measure_telemetry_overhead(steps=steps, warmup=warmup)
        report["telemetry_overhead"] = overhead
        frac = overhead["overhead_fraction"]
        if frac > args.assert_overhead:
            print(f"FAIL: disabled-telemetry step overhead {frac * 100:.1f}% > "
                  f"allowed {args.assert_overhead * 100:.1f}%", file=sys.stderr)
            return 1
        print(f"disabled-telemetry overhead {frac * 100:+.1f}% "
              f"<= {args.assert_overhead * 100:.1f}%")
    for row in report["rows"]:
        cols = [f"F={row['n_filters']:>4} m={row['m']:>4} w={row['n_workers']}"]
        names = [b for b in ("vectorized", "pipe", "shm") if f"{b}_steps_per_s" in row]
        names += [k[: -len("_steps_per_s")] for k in row
                  if k.endswith("_steps_per_s")
                  and k[: -len("_steps_per_s")] not in names]
        for backend in names:
            cols.append(f"{backend} {row[f'{backend}_steps_per_s']:8.1f} st/s")
        for backend in names:
            key = f"{backend}_speedup_vs_pipe"
            if key in row:
                cols.append(f"{backend}/pipe {row[key]:.2f}x")
        if "identical_estimates" in row:
            cols.append(f"parity={'ok' if row['identical_estimates'] else 'MISMATCH'}")
        print("  ".join(cols))
    if not report["summary"]["identical_estimates"]:
        print("FAIL: the transports disagreed on the estimates", file=sys.stderr)
        return 1
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.assert_speedup is not None:
        speedup = report["summary"]["shm_speedup_vs_pipe"] or 0.0
        if speedup < args.assert_speedup:
            print(f"FAIL: shm speedup {speedup:.2f}x < required "
                  f"{args.assert_speedup:.2f}x on the largest config", file=sys.stderr)
            return 1
        print(f"shm speedup {speedup:.2f}x >= {args.assert_speedup:.2f}x")
    return 0


def _cmd_bench_shard(args) -> int:
    from repro.bench.shard import run_shard_bench, write_report

    transport = getattr(args, "transport", None) or "tcp"
    _check_transport(transport)  # ValueError → exit 2 upstream
    steps = args.steps if args.steps is not None else 12
    warmup = args.warmup if args.warmup is not None else 2
    report = run_shard_bench(grid=args.grid, steps=steps, warmup=warmup,
                             transport=transport)
    for row in report["rows"]:
        print(f"F={row['n_filters']:>4} m={row['m']:>5} "
              f"w={row['n_workers']}  cut={row['cut_edges']:>4} edges  "
              f"wire {row['measured_cut_bytes_per_round']:8.0f} B/round "
              f"(predicted {row['predicted_cut_bytes_per_round']})  "
              f"{row['steps_per_s']:7.1f} st/s  "
              f"parity={'ok' if row['parity'] else 'MISMATCH'}")
    summary = report["summary"]
    print(f"bytes depend only on cut: {summary['bytes_depend_only_on_cut']}")
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if not summary["parity"]:
        print("FAIL: a sharded run diverged from the single-process golden "
              "trace", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_kernels(args) -> int:
    from repro.bench.kernels import run_kernel_bench, write_report

    steps = args.steps if args.steps is not None else 400
    warmup = args.warmup if args.warmup is not None else 50
    report = run_kernel_bench(grid=args.grid, steps=steps, warmup=warmup)
    for row in report["rows"]:
        print(f"F={row['n_filters']:>4} m={row['m']:>4}  "
              f"reference {row['reference_float64_steps_per_s']:8.1f} st/s  "
              f"compiled/f32 {row['compiled_float32_steps_per_s']:8.1f} st/s  "
              f"speedup {row['speedup']:5.2f}x  "
              f"parity={'ok' if row['compiled_mixed_bit_identical'] else 'MISMATCH'}")
    for krow in report["kernels"]:
        print(f"kernel {krow['kernel']:>12} (n={krow['n']}): "
              f"reference {krow['reference_us']:7.2f}us  "
              f"compiled {krow['compiled_us']:7.2f}us  "
              f"speedup {krow['speedup']:5.2f}x")
    best = report["summary"]["best_speedup"] or 0.0
    bc = report["summary"]["best_config"]
    print(f"best speedup {best:.2f}x at F={bc.get('n_filters')} m={bc.get('m')} "
          f"(numba={'yes' if report['numba'] else 'no'})")
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.assert_speedup is not None and best < args.assert_speedup:
        print(f"FAIL: best compiled/float32 speedup {best:.2f}x < required "
              f"{args.assert_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_sessions(args) -> int:
    from repro.bench.sessions import run_sessions_bench, write_report

    steps = args.steps if args.steps is not None else 25
    warmup = args.warmup if args.warmup is not None else 3
    report = run_sessions_bench(grid=args.grid, steps=steps, warmup=warmup)
    for row in report["rows"]:
        print(f"S={row['sessions']:>5} m={row['m']:>3} {row['execution']:>9}  "
              f"naive {row['naive_steps_per_s']:9.1f} st/s  "
              f"cohort {row['cohort_steps_per_s']:9.1f} st/s  "
              f"speedup {row['speedup']:6.2f}x  "
              f"p99 {row['latency_p99_s'] * 1e3:7.2f}ms  "
              f"parity={'ok' if row['parity_ok'] else 'MISMATCH'}")
    summary = report["summary"]
    print(f"largest config: S={summary['largest_sessions']} "
          f"speedup {summary['largest_speedup']:.2f}x "
          f"(best overall {summary['best_speedup']:.2f}x)")
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.assert_speedup is not None:
        speedup = summary["largest_speedup"]
        if speedup < args.assert_speedup:
            print(f"FAIL: cohort speedup {speedup:.2f}x < required "
                  f"{args.assert_speedup:.2f}x at S={summary['largest_sessions']}",
                  file=sys.stderr)
            return 1
        print(f"cohort speedup {speedup:.2f}x >= {args.assert_speedup:.2f}x")
    return 0


def _cmd_bench_allocation(args) -> int:
    from repro.bench.allocation import (
        format_report,
        run_allocation_bench,
        write_report,
    )

    report = run_allocation_bench(n_seeds=args.seeds)
    print(format_report(report))
    if args.output:
        write_report(report, args.output)
        print(f"wrote {args.output}")
    if args.assert_gain is not None:
        gain = report["summary"]["best_adaptive_gain"] or 0.0
        if gain < args.assert_gain:
            print(f"FAIL: best adaptive accuracy-per-FLOP gain {gain:.2f}x < "
                  f"required {args.assert_gain:.2f}x", file=sys.stderr)
            return 1
        print(f"adaptive gain {gain:.2f}x >= {args.assert_gain:.2f}x")
    return 0


def _cmd_trace(args) -> int:
    import numpy as np

    from repro.core import DistributedFilterConfig, DistributedParticleFilter
    from repro.models import LinearGaussianModel
    from repro.prng import make_rng
    from repro.telemetry import run_metadata, summary_table, write_chrome_trace

    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    cfg = DistributedFilterConfig(
        n_particles=args.particles, n_filters=args.filters, topology="ring",
        n_exchange=args.exchange, estimator="weighted_mean", seed=args.seed,
        allocation=args.allocation,
    )
    truth = model.simulate(args.steps, make_rng("numpy", seed=args.seed + 1))
    meas = np.asarray(truth.measurements, dtype=np.float64)
    if args.backend == "vectorized":
        pf = DistributedParticleFilter(model, cfg)
        pf.tracer.enabled = True
        pf.initialize()
        run_t0 = pf.tracer.clock()
        for k in range(meas.shape[0]):
            pf.step(meas[k])
        tracer = pf.tracer
    else:
        from repro.backends import MultiprocessDistributedParticleFilter

        with MultiprocessDistributedParticleFilter(
            model, cfg, n_workers=args.workers, transport=args.backend
        ) as pf:
            pf.tracer.enabled = True
            run_t0 = pf.tracer.clock()
            for k in range(meas.shape[0]):
                pf.step(meas[k])
            tracer = pf.tracer
    tracer.add(f"{args.backend} run", "run", run_t0, tracer.clock(),
               attrs={"backend": args.backend, "steps": args.steps,
                      **run_metadata()})
    write_chrome_trace(args.output, tracer.spans, tracer.counters,
                       labels=tracer.labels)
    print(summary_table(tracer.spans, tracer.counters))
    print(f"wrote {args.output} ({len(tracer.spans)} spans) — "
          "open in ui.perfetto.dev or chrome://tracing")
    return 0


def _check_transport(name: str) -> str:
    """Validate a transport name against the registry (exit-2 on unknown).

    Runtime validation instead of static argparse ``choices`` so optional
    transports registered by plugins/extensions are accepted and the error
    always lists what this build actually offers.
    """
    from repro.backends.transport import transport_choices

    choices = sorted(transport_choices())
    if name not in choices:
        raise ValueError(
            f"unknown transport {name!r}; choices: {', '.join(choices)}")
    return name


def _cmd_shard_plan(args) -> int:
    from repro.bench.harness import format_table
    from repro.topology import make_shard_plan, resolve_topology

    try:
        topo = resolve_topology(args.topology, args.filters)
        strategies = ([args.strategy] if args.strategy
                      else ["contiguous", "strided"])
        rows = []
        for strategy in strategies:
            plan = make_shard_plan(topo, args.shards, strategy=strategy)
            s = plan.summary(n_exchange=args.exchange,
                            state_dim=args.state_dim)
            sizes = s["shard_sizes"]
            rows.append({
                "strategy": strategy,
                "shards": s["n_shards"],
                "filters": s["n_filters"],
                "min_size": min(sizes),
                "max_size": max(sizes),
                "cut_edges": s["cut_edges"],
                "cut_B_per_round": s["cut_bytes_per_round"],
            })
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.topology} topology, N={args.filters}, t={args.exchange}, "
          f"d={args.state_dim}:")
    print(format_table(rows))
    print("only cut-edge particles cross shard boundaries; bytes/round "
          "scale with the cut, not with the population")
    return 0


def _smoke_setup(args):
    """Shared model/config/measurements for the ``run`` and ``chaos`` commands."""
    import numpy as np

    from repro.core import DistributedFilterConfig
    from repro.models import LinearGaussianModel
    from repro.prng import make_rng

    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    cfg = DistributedFilterConfig(
        n_particles=args.particles, n_filters=args.filters, topology="ring",
        n_exchange=1, estimator="weighted_mean", seed=args.seed,
    )
    truth = model.simulate(args.steps, make_rng("numpy", seed=args.seed + 1))
    meas = np.asarray(truth.measurements, dtype=np.float64)
    return model, cfg, meas


def _cmd_run(args) -> int:
    import numpy as np

    from repro.core import DistributedParticleFilter

    model, cfg, meas = _smoke_setup(args)

    def drive(pf):
        if args.resume:
            manifest = pf.load_checkpoint(args.resume)
            print(f"resumed {args.resume} at step {manifest['meta']['k']} "
                  f"(schema v{manifest['schema_version']})")
        start = pf.k
        for k in range(start, meas.shape[0]):
            est = pf.step(meas[k])
        if args.checkpoint:
            pf.save_checkpoint(args.checkpoint)
            print(f"wrote checkpoint {args.checkpoint} at step {pf.k}")
        print(f"ran steps {start}..{pf.k - 1}, final estimate "
              f"{np.asarray(est).ravel()[0]:+.6f}")
        return 0

    transport = args.transport
    if transport is not None:
        try:
            _check_transport(transport)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.backend == "vectorized" and transport is None:
        return drive(DistributedParticleFilter(model, cfg))
    from repro.backends import MultiprocessDistributedParticleFilter

    with MultiprocessDistributedParticleFilter(
            model, cfg, n_workers=args.workers,
            transport=transport if transport is not None else args.backend,
    ) as pf:
        return drive(pf)


def _cmd_chaos(args) -> int:
    import json

    from repro.backends import MultiprocessDistributedParticleFilter
    from repro.resilience import FaultPlan, Supervisor

    try:
        _check_transport(args.transport)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.rebalance and args.respawn:
        print("error: --rebalance and --respawn are mutually exclusive "
              "recovery rungs", file=sys.stderr)
        return 2
    model, cfg, meas = _smoke_setup(args)
    if args.rebalance:
        # Elastic rebalancing re-deals sub-filters across survivors, which
        # is only bit-reproducible under per-filter RNG streams.
        from dataclasses import replace

        cfg = replace(cfg, rng_streams="filter")
    plan = FaultPlan.random(
        args.seed, n_workers=args.workers, n_steps=args.steps,
        p_kill=args.p_kill, p_hang=args.p_hang, p_poison=args.p_poison,
        max_kills=args.max_kills, hang_duration=3600.0,
    )
    sup = None if args.no_supervisor else Supervisor(
        beat_timeout=args.beat_timeout,
        checkpoint_on_abort=args.abort_checkpoint,
    )
    print(f"fault plan (seed={args.seed}): "
          + (", ".join(f"{f.kind}@w{f.worker}/k{f.step}" for f in plan) or "clean"))
    with MultiprocessDistributedParticleFilter(
            model, cfg, n_workers=args.workers, transport=args.transport,
            fault_plan=plan, on_failure="heal", respawn_dead=args.respawn,
            rebalance_dead=args.rebalance,
            recv_timeout=args.recv_timeout, supervisor=sup) as pf:
        for k in range(meas.shape[0]):
            pf.step(meas[k])
        report = pf.report.summary()
        diag = pf.diagnostics()
    events = sup.event_log() if sup else []
    print(f"  {'n_failures':>20}: {report['n_failures']}")
    for key in ("retries", "timeouts", "heartbeat_misses", "heartbeat_failures",
                "respawns", "checkpoints_saved", "escalations"):
        print(f"  {key:>20}: {report[key]}")
    print(f"  {'dead_workers':>20}: {diag['dead_workers']}")
    if args.rebalance:
        print(f"  {'owned_counts':>20}: {diag['membership']['owned_counts']}")
    for ev in events:
        print(f"  [k={ev['step']:>3}] w{ev['worker_id']} "
              f"{ev['kind']}: {ev['detail']}")
    if args.output:
        payload = {"seed": args.seed, "transport": args.transport,
                   "steps": args.steps, "plan": plan.to_dicts(),
                   "report": report, "dead_workers": diag["dead_workers"],
                   "membership": diag["membership"],
                   "shard": diag["shard"],
                   "supervisor": sup.summary() if sup else None,
                   "events": events}
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0


def _cmd_report(args) -> int:
    from repro.bench.report import generate_report

    text = generate_report(quick=not args.full)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_platforms(args) -> int:
    from repro.bench import format_table, table3_rows
    from repro.device.scaling import EMBEDDED_PLATFORMS

    print(format_table(table3_rows()))
    print("\nembedded extensions:", ", ".join(EMBEDDED_PLATFORMS))
    return 0


def _cmd_kernels(args) -> int:
    from repro.bench.harness import format_table
    from repro.device.costmodel import CostModel
    from repro.device.spec import get_platform
    from repro.kernels.forms import ExecutionPolicy
    from repro.kernels.registry import CostParams, default_registry

    try:
        spec = get_platform(args.platform)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cm = CostModel(spec)
    reg = default_registry()
    policy = ExecutionPolicy.from_config(args.execution)
    params = CostParams(m=args.particles, state_dim=args.state_dim, n_groups=args.filters)
    rows = []
    for name in reg.names():
        kdef = reg.get(name)
        wl = kdef.workload(params)
        # Every execution form the kernel registers (reference/workgroup
        # builtins plus named extras like "compiled"), and the form the
        # active ExecutionPolicy would actually dispatch.
        forms = "+".join(reg.forms_of(name)) or "cost-only"
        selected = policy.select(kdef)
        rows.append({
            "kernel": name,
            "forms": forms,
            "runs": selected[0] if selected is not None else "-",
            "kflops": wl.flops / 1e3,
            "kB_rd": wl.bytes_read / 1e3,
            "kB_wr": wl.bytes_written / 1e3,
            "syncs": wl.syncs_per_group,
            "launches": wl.launches,
            "us": cm.kernel_def_time(kdef, params) * 1e6,
        })
    print(f"{len(rows)} registered kernels on {spec.name} "
          f"(m={args.particles}, N={args.filters}, d={args.state_dim}, "
          f"execution={args.execution}):")
    print(format_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="esthera", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("track", help="run the robotic-arm tracking demo")
    t.add_argument("--particles", type=int, default=64, help="particles per sub-filter (m)")
    t.add_argument("--filters", type=int, default=64, help="number of sub-filters (N)")
    t.add_argument("--topology", default="ring", choices=["ring", "torus", "all-to-all", "none"])
    t.add_argument("--exchange", type=int, default=1, help="particles per exchange (t)")
    t.add_argument("--estimator", default="weighted_mean", choices=["weighted_mean", "max_weight"])
    t.add_argument("--joints", type=int, default=5)
    t.add_argument("--steps", type=int, default=100)
    t.add_argument("--seed", type=int, default=0)
    t.set_defaults(func=_cmd_track)

    b = sub.add_parser("bench", help="regenerate one figure/table, or run the transport benchmark")
    b.add_argument("figure", choices=["fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                                      "fig9", "tables", "multiprocess", "allocation",
                                      "kernels", "sessions", "shard"])
    b.add_argument("--grid", default="default",
                   help="(multiprocess/kernels/sessions) named benchmark grid: "
                        "smoke, default or full")
    b.add_argument("--steps", type=int, default=None,
                   help="(multiprocess/kernels/sessions) timed steps per config "
                        "(default: 30 multiprocess, 400 kernels, 25 sessions)")
    b.add_argument("--warmup", type=int, default=None,
                   help="(multiprocess/kernels/sessions) untimed warmup steps "
                        "(default: 3 multiprocess/sessions, 50 kernels)")
    b.add_argument("--output", "-o", default=None,
                   help="(multiprocess/kernels/sessions) write the JSON report here")
    b.add_argument("--assert-speedup", type=float, default=None,
                   help="(multiprocess) fail unless shm/pipe speedup on the largest "
                        "config reaches this factor; (kernels) fail unless the "
                        "best compiled/float32 speedup reaches it; (sessions) fail "
                        "unless the cohort/naive speedup at the largest session "
                        "count reaches it")
    b.add_argument("--trace", default=None, metavar="FILE",
                   help="(multiprocess) also record the merged step/stage/kernel "
                        "timeline and write it as a Chrome trace_event file")
    b.add_argument("--assert-overhead", type=float, default=None, metavar="FRACTION",
                   help="(multiprocess) fail if the disabled-telemetry hook overhead "
                        "on the vectorized backend exceeds this fraction (e.g. 0.05)")
    b.add_argument("--allocation", default="fixed", choices=["fixed", "ess", "mass"],
                   help="(multiprocess) allocation policy for the benchmark axis")
    b.add_argument("--transport", default=None, metavar="NAME",
                   help="(multiprocess) also benchmark this transport against "
                        "pipe (e.g. tcp); unknown names exit 2 with the "
                        "registered choices")
    b.add_argument("--seeds", type=int, default=16,
                   help="(allocation) seeds averaged per workload/policy cell")
    b.add_argument("--assert-gain", type=float, default=None, metavar="FACTOR",
                   help="(allocation) fail unless some adaptive policy beats the "
                        "equal split's accuracy-per-FLOP by this factor")
    b.set_defaults(func=_cmd_bench)

    tr = sub.add_parser("trace", help="write a merged Chrome/Perfetto trace of a short run")
    tr.add_argument("output", help="trace_event JSON output path (open in ui.perfetto.dev)")
    tr.add_argument("--backend", default="shm", choices=["vectorized", "pipe", "shm"])
    tr.add_argument("--particles", type=int, default=64, help="particles per sub-filter (m)")
    tr.add_argument("--filters", type=int, default=16, help="number of sub-filters (N)")
    tr.add_argument("--exchange", type=int, default=2, help="particles per exchange (t)")
    tr.add_argument("--workers", type=int, default=2, help="worker processes (multiprocess)")
    tr.add_argument("--steps", type=int, default=5)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--allocation", default="fixed", choices=["fixed", "ess", "mass"],
                    help="particle allocation policy; adaptive policies surface "
                         "the alloc.* counters and the allocation table")
    tr.set_defaults(func=_cmd_trace)

    rn = sub.add_parser("run", help="linear-Gaussian smoke run with checkpoint/resume")
    rn.add_argument("--backend", default="vectorized", choices=["vectorized", "pipe", "shm"])
    rn.add_argument("--transport", default=None, metavar="NAME",
                    help="multiprocess data plane (pipe/shm/tcp...); implies "
                         "the multiprocess backend; unknown names exit 2 "
                         "with the registered choices")
    rn.add_argument("--particles", type=int, default=32, help="particles per sub-filter (m)")
    rn.add_argument("--filters", type=int, default=8, help="number of sub-filters (N)")
    rn.add_argument("--workers", type=int, default=2, help="worker processes (multiprocess)")
    rn.add_argument("--steps", type=int, default=20, help="total steps of the trajectory")
    rn.add_argument("--seed", type=int, default=0)
    rn.add_argument("--checkpoint", default=None, metavar="FILE",
                    help="save a resumable snapshot after the last step")
    rn.add_argument("--resume", default=None, metavar="FILE",
                    help="restore this checkpoint and continue the same "
                         "trajectory bit-identically")
    rn.set_defaults(func=_cmd_run)

    c = sub.add_parser("chaos", help="seeded FaultPlan soak with heartbeat supervision")
    c.add_argument("--transport", default="pipe", metavar="NAME",
                   help="multiprocess data plane (pipe/shm/tcp...); unknown "
                        "names exit 2 with the registered choices")
    c.add_argument("--workers", type=int, default=2)
    c.add_argument("--particles", type=int, default=16, help="particles per sub-filter (m)")
    c.add_argument("--filters", type=int, default=8, help="number of sub-filters (N)")
    c.add_argument("--steps", type=int, default=12)
    c.add_argument("--seed", type=int, default=0, help="seeds both the run and the fault plan")
    c.add_argument("--p-kill", type=float, default=0.05, help="per-(worker,step) SIGKILL probability")
    c.add_argument("--p-hang", type=float, default=0.0, help="per-(worker,step) hang probability")
    c.add_argument("--p-poison", type=float, default=0.05, help="per-(worker,step) NaN-weights probability")
    c.add_argument("--max-kills", type=int, default=1, help="cap on killed workers (keeps a quorum)")
    c.add_argument("--respawn", action="store_true",
                   help="respawn dead blocks instead of leaving the topology healed")
    c.add_argument("--rebalance", action="store_true",
                   help="rebalance a dead worker's sub-filters onto the "
                        "survivors (elastic sharding; forces per-filter "
                        "RNG streams)")
    c.add_argument("--no-supervisor", action="store_true",
                   help="disable heartbeat supervision (deadline-only detection)")
    c.add_argument("--beat-timeout", type=float, default=0.25,
                   help="supervisor heartbeat deadline in seconds")
    c.add_argument("--recv-timeout", type=float, default=30.0,
                   help="master gather deadline in seconds")
    c.add_argument("--abort-checkpoint", default=None, metavar="FILE",
                   help="write a last-ditch checkpoint here if escalation aborts the run")
    c.add_argument("--output", "-o", default=None, metavar="FILE",
                   help="export the report, fault plan, and event log as JSON")
    c.set_defaults(func=_cmd_chaos)

    r = sub.add_parser("report", help="regenerate the full evaluation report")
    r.add_argument("--output", "-o", default=None, help="write Markdown to this file")
    r.add_argument("--full", action="store_true", help="higher statistical effort")
    r.set_defaults(func=_cmd_report)

    sp = sub.add_parser("shard-plan",
                        help="partition a topology into shards and report "
                             "cut-edge sizes and wire bytes per round")
    sp.add_argument("--topology", default="ring",
                    choices=["ring", "torus", "all-to-all", "none"])
    sp.add_argument("--filters", type=int, default=64,
                    help="number of sub-filters (N)")
    sp.add_argument("--shards", type=int, default=2,
                    help="number of shards (worker processes/hosts)")
    sp.add_argument("--strategy", default=None,
                    choices=["contiguous", "strided"],
                    help="partitioning strategy (default: show both)")
    sp.add_argument("--exchange", type=int, default=1,
                    help="particles per exchange edge (t)")
    sp.add_argument("--state-dim", type=int, default=9, help="state dimension")
    sp.set_defaults(func=_cmd_shard_plan)

    pl = sub.add_parser("platforms", help="list simulated platforms")
    pl.set_defaults(func=_cmd_platforms)

    k = sub.add_parser("kernels", help="list registered kernels and predicted costs")
    k.add_argument("--platform", default="gtx-580", help="device spec name (see `platforms`)")
    k.add_argument("--particles", type=int, default=512, help="particles per sub-filter (m)")
    k.add_argument("--filters", type=int, default=64, help="number of sub-filters (N)")
    k.add_argument("--state-dim", type=int, default=9, help="state dimension")
    k.add_argument("--execution", choices=["reference", "compiled"], default="reference",
                   help="execution policy used for the `runs` column "
                        "(which form each kernel would dispatch)")
    k.set_defaults(func=_cmd_kernels)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
