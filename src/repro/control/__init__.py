"""Closed-loop estimation and control.

The paper's companion work ([30], IEEE TCST 2013) uses the distributed
particle filter inside a closed control loop on a real robotic arm. This
package provides the simulation counterpart: a controller computes joint
commands from the *filter's estimate* (not the true state), the plant
advances under those commands, and estimation quality now feeds back into
plant behaviour — the real-time setting that motivates the paper's focus on
high, deterministic update rates.
"""

from repro.control.controllers import PointingController, pointing_error
from repro.control.closed_loop import ClosedLoopResult, run_closed_loop

__all__ = ["PointingController", "pointing_error", "ClosedLoopResult", "run_closed_loop"]
