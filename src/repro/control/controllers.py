"""Controllers that steer the arm from the state *estimate*."""

from __future__ import annotations

import numpy as np

from repro.models.robot_arm import RobotArmModel


def _desired_angles(model: RobotArmModel, obj_xy: np.ndarray) -> np.ndarray:
    """A simple pointing posture: the base yaws toward the object's azimuth,
    the pitch joints hold a shallow downward sweep so the camera looks along
    the arm toward the plane."""
    K = model.n_joints
    des = np.zeros(K)
    des[0] = np.arctan2(obj_xy[1], obj_xy[0])
    if K > 1:
        # Spread a mild total pitch over the remaining joints.
        des[1:] = -0.15 / (K - 1)
    return des


class PointingController:
    """Proportional controller on joint angles toward the pointing posture.

    ``u = clip(Kp * wrap(theta_des - theta_hat), +-u_max)`` — the command is
    a joint *velocity* (the model integrates ``h_s * u``), computed entirely
    from the estimate.
    """

    def __init__(self, model: RobotArmModel, kp: float = 2.0, u_max: float = 1.5):
        if kp <= 0 or u_max <= 0:
            raise ValueError("kp and u_max must be positive")
        self.model = model
        self.kp = float(kp)
        self.u_max = float(u_max)

    def command(self, estimate: np.ndarray) -> np.ndarray:
        est = np.asarray(estimate, dtype=np.float64)
        theta_hat = self.model.angles(est)
        obj_hat = self.model.object_position(est)
        err = _desired_angles(self.model, obj_hat) - theta_hat
        err = np.arctan2(np.sin(err), np.cos(err))  # wrap to (-pi, pi]
        return np.clip(self.kp * err, -self.u_max, self.u_max)


def pointing_error(model: RobotArmModel, true_state: np.ndarray) -> float:
    """How far the object sits off the camera's optical axis [m] — the
    closed-loop quality metric (0 = perfectly centred in view)."""
    z = model.measurement_mean(np.asarray(true_state, dtype=np.float64))
    cam = z[..., -2:]
    return float(np.linalg.norm(cam))
