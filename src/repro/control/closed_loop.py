"""Closed-loop simulation: filter estimate -> controller -> plant."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.controllers import PointingController, pointing_error
from repro.models.robot_arm import RobotArmModel
from repro.prng.streams import FilterRNG


@dataclass
class ClosedLoopResult:
    """Trace of one closed-loop run."""

    true_states: np.ndarray  # (T, d)
    estimates: np.ndarray  # (T, d)
    controls: np.ndarray  # (T, K)
    estimation_errors: np.ndarray  # (T,) object-position error of the filter
    pointing_errors: np.ndarray  # (T,) camera off-axis distance of the plant

    @property
    def n_steps(self) -> int:
        return self.true_states.shape[0]

    def mean_pointing_error(self, warmup: int = 0) -> float:
        return float(self.pointing_errors[warmup:].mean())

    def mean_estimation_error(self, warmup: int = 0) -> float:
        return float(self.estimation_errors[warmup:].mean())


def run_closed_loop(
    model: RobotArmModel,
    filter_obj,
    positions: np.ndarray,
    velocities: np.ndarray,
    rng: FilterRNG,
    controller: PointingController | None = None,
) -> ClosedLoopResult:
    """Drive the plant with commands computed from the filter's estimates.

    The object follows the given path; the arm's true joints integrate the
    controller's commands plus process noise; the filter sees only the noisy
    measurements and the commands it caused. With ``controller=None`` the arm
    runs open-loop under the model's default sinusoidal sweep — the baseline
    that shows what closing the loop buys.
    """
    positions = np.asarray(positions, dtype=np.float64)
    velocities = np.asarray(velocities, dtype=np.float64)
    if positions.shape != velocities.shape or positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions and velocities must both be (T, 2)")
    T = positions.shape[0]
    K = model.n_joints

    filter_obj.initialize()
    x = model.initial_mean()
    estimate = model.initial_mean()
    true_states = np.empty((T, model.state_dim))
    estimates = np.empty((T, model.state_dim))
    controls = np.empty((T, K))
    est_err = np.empty(T)
    point_err = np.empty(T)

    for k in range(T):
        u = controller.command(estimate) if controller is not None else model.control_at(k)
        controls[k] = u
        # Plant: joints integrate the command; the object follows its path.
        x = model.transition(x, u, k, rng)
        x[K : K + 2] = positions[k]
        x[K + 2 : K + 4] = velocities[k]
        true_states[k] = x
        z = model.observe(x, k, rng)
        estimate = filter_obj.step(z, u)
        estimates[k] = estimate
        est_err[k] = model.estimate_error(estimate, x)
        point_err[k] = pointing_error(model, x)

    return ClosedLoopResult(
        true_states=true_states,
        estimates=estimates,
        controls=controls,
        estimation_errors=est_err,
        pointing_errors=point_err,
    )
