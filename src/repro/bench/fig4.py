"""Fig. 4: per-kernel runtime breakdown when scaling (a) particles per
sub-filter, (b) number of sub-filters, (c) state dimensions.

The simulated breakdowns use the cost model on the paper's GTX 580;
``measured_breakdown`` cross-checks the shape against wall-clock phase
timings of the vectorized backend on the host.
"""

from __future__ import annotations

from repro.bench.harness import arm_truth
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.device import filter_round_cost, get_platform
from repro.metrics.timing import KERNELS
from repro.models import RobotArmModel, RobotArmParams


def _row(label_key, label_value, cost) -> dict:
    row = {label_key: label_value}
    fr = cost.fractions()
    for k in KERNELS:
        row[k] = fr.get(k, 0.0)
    row["total_ms"] = cost.total_seconds * 1e3
    return row


def run_fig4a(platform: str = "gtx-580", n_filters: int = 1024, state_dim: int = 9) -> list[dict]:
    dev = get_platform(platform)
    return [
        _row("particles_per_subfilter", m, filter_round_cost(dev, m, n_filters, state_dim))
        for m in (16, 32, 64, 128, 256, 512, 1024)
    ]


def run_fig4b(platform: str = "gtx-580", n_particles: int = 512, state_dim: int = 9) -> list[dict]:
    dev = get_platform(platform)
    return [
        _row("n_subfilters", N, filter_round_cost(dev, n_particles, N, state_dim))
        for N in (16, 64, 256, 1024, 4096, 8192)
    ]


def run_fig4c(platform: str = "gtx-580", n_particles: int = 512, n_filters: int = 1024) -> list[dict]:
    dev = get_platform(platform)
    return [
        _row("state_dim", d, filter_round_cost(dev, n_particles, n_filters, d))
        for d in (8, 12, 16, 24, 32, 48)
    ]


def measured_breakdown(n_particles: int = 64, n_filters: int = 64, n_joints: int = 5, n_steps: int = 10) -> dict:
    """Wall-clock phase fractions of the vectorized backend on this host."""
    model = RobotArmModel(RobotArmParams(n_joints=n_joints))
    cfg = DistributedFilterConfig(n_particles=n_particles, n_filters=n_filters, seed=0)
    pf = DistributedParticleFilter(model, cfg)
    truth = arm_truth(n_steps, seed=11, model=model)
    run_filter(pf, model, truth)
    total = sum(run_sec for run_sec in pf.timer.seconds.values())
    return {k: pf.timer.seconds.get(k, 0.0) / total for k in KERNELS}
