"""Execution-form A/B benchmark: compiled fused kernels vs reference forms.

``esthera bench kernels`` proves two things at once, per grid point:

1. **Speedup** — the compiled execution policy (fused step kernel, float32
   states) against the stock reference pipeline (batched-NumPy stages,
   float64) on identical measurement trajectories, as steady-state steps/s.
2. **Parity** — the speedup computes the *same filter*: with a matching
   dtype policy the compiled pipeline's estimate trajectory must be
   bit-identical to the reference pipeline's; at float32 it must stay within
   the documented tolerance of the float64 run.

The benchmark model (:class:`KernelBenchModel`) is a scalar AR(1) chosen so
per-step cost is dominated by the *engine*, not the model: at the paper's
CPU-class shapes (tens of sub-filters, tens of particles) a filtering round
is interpreter-bound, which is precisely the regime the fused form exists
for — the ratio measures stage/hook/dispatch overhead eliminated, the same
quantity the paper attacks by fusing device kernels. Rows at larger shapes
are reported too: there the work is array-bound and the ratio honestly
shrinks toward the memory-bandwidth limit.

Per-kernel rows A/B any registry kernel that carries both a ``compiled``
form and a ``make_inputs`` adapter (currently the ``logsumexp`` reduction)
on synthetic inputs, with :meth:`ExecutionPolicy.warm_up` hoisting JIT
compilation out of the timed region.

Results are written as ``BENCH_kernels.json`` at the repo root (see the CI
``bench-kernels-smoke`` job), making the perf trajectory trackable
PR-over-PR.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.bench.harness import resolve_grid
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.kernels.forms import COMPILED_FORM, ExecutionPolicy, numba_available
from repro.models.base import StateSpaceModel
from repro.telemetry import run_metadata

#: named (n_filters, m) grids. Small shapes are the fused form's home
#: terrain (interpreter-bound rounds); the larger rows document the honest
#: taper as the arrays start paying for themselves.
GRIDS: dict[str, list[tuple[int, int]]] = {
    "smoke": [(8, 8), (16, 8)],
    "default": [(8, 8), (16, 8), (16, 16), (32, 16), (64, 32)],
    "full": [(8, 8), (16, 8), (16, 16), (32, 16), (64, 32), (64, 64), (128, 64)],
}

#: accuracy budget for the float32 leg: its estimate-trajectory RMSE against
#: the simulated ground truth may exceed the float64 leg's by at most this
#: factor (plus ``FLOAT32_RMSE_FLOOR`` absolute slack for near-zero RMSEs).
#: A raw per-step bound would be meaningless under the ``max_weight``
#: estimator — a float32 rounding difference can legitimately flip which
#: particle wins the argmax, jumping the estimate by the particle spread
#: while tracking accuracy is unchanged (see docs/architecture.md,
#: "Execution forms & dtype policy").
FLOAT32_RMSE_BUDGET = 1.25
FLOAT32_RMSE_FLOOR = 0.05


class KernelBenchModel(StateSpaceModel):
    """Scalar AR(1) with Gaussian noise, written for minimal dispatch cost.

    ``x_k = a x_{k-1} + sigma w_k``, ``z_k = x_k + sqrt(r) v_k``. The
    transition updates the particle array in place (the population arrays
    are backend-owned, and both pipelines consume the transition's return
    value immediately) and the log-likelihood reuses one cached buffer, so
    a full model evaluation is five ufunc calls — the engine's own overhead
    dominates the timed step, which is what this benchmark measures.
    """

    state_dim = 1
    measurement_dim = 1
    control_dim = 0

    def __init__(self, a: float = 0.9, sigma: float = 0.3, r: float = 0.2):
        self.a, self.sigma, self.r = float(a), float(sigma), float(r)
        self._buf: np.ndarray | None = None

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, 1)).astype(dtype, copy=False)

    def transition(self, states, control, k, rng):
        noise = rng.normal(states.shape)
        np.multiply(states, self.a, out=states)
        np.multiply(noise, self.sigma, out=noise)
        np.add(states, noise.astype(states.dtype, copy=False), out=states)
        return states

    def log_likelihood(self, states, measurement, k):
        buf = self._buf
        if buf is None or buf.shape != states.shape[:-1]:
            buf = self._buf = np.empty(states.shape[:-1], dtype=np.float64)
        np.subtract(states[..., 0], float(np.asarray(measurement).reshape(-1)[0]),
                    out=buf)
        np.multiply(buf, buf, out=buf)
        np.multiply(buf, -0.5 / self.r, out=buf)
        return buf

    def initial_state(self, rng):
        return np.zeros(1)

    def observe(self, state, k, rng):
        return state + np.sqrt(self.r) * rng.normal((1,))


def _bench_config(n_filters: int, m: int) -> DistributedFilterConfig:
    # The paper-default round shape — exactly the fused form's envelope
    # (fixed allocation, sort selection, best-t exchange, always-resample,
    # RWS, max-weight estimate).
    return DistributedFilterConfig(
        n_particles=m, n_filters=n_filters, topology="ring", n_exchange=1,
        seed=42,
    )


def _measurements(model: StateSpaceModel, steps: int) -> tuple[np.ndarray, np.ndarray]:
    from repro.prng import make_rng

    truth = model.simulate(steps, make_rng("numpy", seed=7))
    return (np.asarray(truth.measurements, dtype=np.float64),
            np.asarray(truth.states, dtype=np.float64))


def _time_filter(pf, meas: np.ndarray, warmup: int,
                 repeats: int) -> tuple[float, np.ndarray]:
    """Best steady-state seconds/step over *repeats*, plus first-pass estimates.

    The estimate trajectory is captured on the first timed pass (every leg
    steps the same measurement sequence from the same seed, so pass one is
    the parity-comparable window); later passes only tighten the timing
    minimum against scheduler noise.
    """
    for k in range(warmup):
        pf.step(meas[k % meas.shape[0]])
    best = float("inf")
    ests = None
    for _ in range(max(repeats, 1)):
        out = []
        start = time.perf_counter()
        for z in meas:
            out.append(pf.step(z))
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / meas.shape[0])
        if ests is None:
            ests = np.asarray(out)
    return best, ests


#: the four filter legs every grid point runs: (row key, execution, dtype
#: policy). ``reference/float64`` is the speedup baseline;
#: ``reference/mixed`` is the bit-parity baseline for ``compiled/mixed``;
#: ``compiled/float32`` is the headline configuration.
FILTER_LEGS = (
    ("reference_float64", "reference", "float64"),
    ("reference_mixed", "reference", "mixed"),
    ("compiled_mixed", "compiled", "mixed"),
    ("compiled_float32", "compiled", "float32"),
)


def run_kernel_bench(grid: str | list = "default", *, steps: int = 400,
                     warmup: int = 50, repeats: int = 3) -> dict:
    """Run the execution-form A/B benchmark; returns the JSON-ready report.

    ``grid`` is a named grid (``smoke``/``default``/``full``) or an explicit
    list of ``(n_filters, m)`` tuples. Every row carries the four filter
    legs' steps/s, the headline ``speedup`` (compiled/float32 over
    reference/float64), the bit-parity verdict for compiled/mixed and the
    float32 leg's worst estimate deviation. Parity failures raise — a
    speedup that computes something else is not a speedup.
    """
    configs = resolve_grid(GRIDS, grid)
    rows = []
    for n_filters, m in configs:
        model = KernelBenchModel()
        cfg = _bench_config(n_filters, m)
        meas, truth = _measurements(model, steps)
        row = {"n_filters": n_filters, "m": m, "total_particles": n_filters * m}
        legs = {}
        for key, execution, dtype_policy in FILTER_LEGS:
            pf = DistributedParticleFilter(
                model, cfg.with_(execution=execution, dtype_policy=dtype_policy))
            pf.initialize()
            sec, ests = _time_filter(pf, meas, warmup, repeats)
            legs[key] = ests
            row[f"{key}_steps_per_s"] = 1.0 / sec
            if execution == "compiled":
                row[f"{key}_fused"] = type(pf.pipeline.stages[0]).__name__ == "FusedStepStage"
        row["compiled_mixed_bit_identical"] = bool(
            np.array_equal(legs["reference_mixed"], legs["compiled_mixed"]))
        # Informational: per-step deviation of float32 from float64. A
        # max_weight argmax flip makes this jump by the particle spread, so
        # the enforced float32 bound is accuracy parity (RMSE), not this.
        row["float32_max_abs_dev"] = float(
            np.abs(legs["compiled_float32"] - legs["reference_float64"]).max())
        rmse64 = float(np.sqrt(
            ((legs["reference_float64"][:, 0] - truth[:, 0]) ** 2).mean()))
        rmse32 = float(np.sqrt(
            ((legs["compiled_float32"][:, 0] - truth[:, 0]) ** 2).mean()))
        row["reference_float64_rmse"] = rmse64
        row["compiled_float32_rmse"] = rmse32
        row["speedup"] = (row["compiled_float32_steps_per_s"]
                          / row["reference_float64_steps_per_s"])
        if not row["compiled_mixed_bit_identical"]:
            raise AssertionError(
                f"compiled/mixed diverged from reference/mixed at "
                f"F={n_filters} m={m}: the fused form broke bit-parity")
        if rmse32 > rmse64 * FLOAT32_RMSE_BUDGET + FLOAT32_RMSE_FLOOR:
            raise AssertionError(
                f"float32 tracking RMSE {rmse32:.4f} exceeds the float64 "
                f"leg's {rmse64:.4f} beyond the documented budget "
                f"({FLOAT32_RMSE_BUDGET}x + {FLOAT32_RMSE_FLOOR}) at "
                f"F={n_filters} m={m}")
        rows.append(row)

    kernel_rows = _per_kernel_rows(repeats=repeats)
    best = max(rows, key=lambda r: r["speedup"]) if rows else {}
    report = {
        "benchmark": "kernel-forms",
        "grid": grid if isinstance(grid, str) else "custom",
        "steps": steps,
        "warmup": warmup,
        "repeats": repeats,
        "model": "scalar AR(1) (engine-bound on purpose; see module docstring)",
        "numba": numba_available(),
        "float32_rmse_budget": FLOAT32_RMSE_BUDGET,
        "float32_rmse_floor": FLOAT32_RMSE_FLOOR,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "metadata": run_metadata(),
        "rows": rows,
        "kernels": kernel_rows,
        "summary": {
            "best_speedup": best.get("speedup"),
            "best_config": {k: best.get(k) for k in ("n_filters", "m")},
            "bit_identical": all(r["compiled_mixed_bit_identical"] for r in rows),
            "float32_max_abs_dev": max(
                (r["float32_max_abs_dev"] for r in rows), default=None),
            "float32_rmse_within_budget": True,
        },
    }
    return report


def _per_kernel_rows(*, n: int = 256, loops: int = 200, repeats: int = 3) -> list[dict]:
    """A/B rows for registry kernels with a compiled form + input adapter.

    Times the reference batch form against the compiled form on identical
    synthetic inputs (``make_inputs`` at size *n*), after a
    :meth:`ExecutionPolicy.warm_up` pass so Numba compilation (when
    present) never lands in the timed loop.
    """
    from repro.kernels.registry import default_registry

    reg = default_registry()
    policy = ExecutionPolicy.from_config("compiled")
    candidates = [
        name for name in reg.names()
        if COMPILED_FORM in reg.get(name).forms and reg.get(name).make_inputs
        and reg.get(name).batch is not None
    ]
    policy.warm_up(reg, names=candidates)
    rows = []
    rng = np.random.default_rng(0)
    for name in candidates:
        kdef = reg.get(name)
        inputs = list(kdef.make_inputs(rng, n).values())
        row = {"kernel": name, "n": n}
        for label, impl in (("reference", kdef.batch),
                            (COMPILED_FORM, kdef.forms[COMPILED_FORM])):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(loops):
                    impl(*inputs)
                best = min(best, (time.perf_counter() - start) / loops)
            row[f"{label}_us"] = best * 1e6
        row["speedup"] = row["reference_us"] / row[f"{COMPILED_FORM}_us"]
        rows.append(row)
    return rows


def write_report(report: dict, path: str = "BENCH_kernels.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return path
