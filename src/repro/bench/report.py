"""Full evaluation report generator: every table and figure as Markdown.

``generate_report()`` reruns the complete benchmark harness (at the given
scale) and renders one self-contained Markdown document — the machine-made
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import measured_breakdown, run_fig4a, run_fig4b, run_fig4c
from repro.bench.fig5 import run_fig5_centralized, run_fig5_subfilter
from repro.bench.fig6 import run_fig6
from repro.bench.fig7 import run_fig7
from repro.bench.fig8 import run_fig8
from repro.bench.fig9 import run_fig9
from repro.bench.tables import table2_rows, table3_rows


def _md_table(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)"
    cols = list(dict.fromkeys(k for r in rows for k in r))

    def cell(r, c):
        v = r.get(c)
        if v is None:
            return "—"
        return f"{v:.4g}" if isinstance(v, float) else str(v)

    lines = ["| " + " | ".join(cols) + " |", "|" + "---|" * len(cols)]
    lines += ["| " + " | ".join(cell(r, c) for c in cols) + " |" for r in rows]
    return "\n".join(lines)


def generate_report(quick: bool = True) -> str:
    """Render the full evaluation as Markdown.

    ``quick=True`` uses the laptop-scale sweep defaults; ``quick=False``
    doubles the statistical effort (runs) of the accuracy sweeps.
    """
    n_runs = 3 if quick else 8
    parts: list[str] = ["# Regenerated evaluation report\n"]

    parts.append("## Table II — default parameters\n\n" + _md_table(table2_rows()))
    parts.append("\n## Table III — platforms\n\n" + _md_table(table3_rows()))
    parts.append("\n## Fig 3 — update rate vs total particles (Hz)\n\n" + _md_table(run_fig3(measure_host=quick)))
    parts.append("\n## Fig 4a — breakdown vs particles per sub-filter\n\n" + _md_table(run_fig4a()))
    parts.append("\n## Fig 4b — breakdown vs number of sub-filters\n\n" + _md_table(run_fig4b()))
    parts.append("\n## Fig 4c — breakdown vs state dimensions\n\n" + _md_table(run_fig4c()))
    host = measured_breakdown()
    parts.append("\nHost (measured) phase fractions: " + ", ".join(f"{k}={v:.3f}" for k, v in host.items()))
    parts.append("\n## Fig 5 — resampling: centralized\n\n" + _md_table(run_fig5_centralized()))
    parts.append("\n## Fig 5 — resampling: sub-filter (m=512)\n\n" + _md_table(run_fig5_subfilter()))
    parts.append("\n## Fig 6 — error by exchange scheme\n\n" + _md_table(run_fig6(n_runs=n_runs)))
    parts.append("\n## Fig 7 — error by particles per exchange\n\n" + _md_table(run_fig7(n_runs=n_runs)))
    fig8 = run_fig8()
    parts.append(
        "\n## Fig 8 — lemniscate convergence\n\n"
        f"- high-particle filter: converged at step {fig8['high_converged_at']}, "
        f"final error {fig8['high_errors'][-20:].mean():.3f} m\n"
        f"- low-particle filter: converged at "
        f"{'step ' + str(fig8['low_converged_at']) if fig8['low_converged_at'] is not None else 'never'}, "
        f"final error {fig8['low_errors'][-20:].mean():.3f} m"
    )
    parts.append("\n## Fig 9 — distributed vs centralized error\n\n" + _md_table(run_fig9(n_runs=n_runs)))
    return "\n".join(parts) + "\n"
