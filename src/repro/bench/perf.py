"""Backend/transport throughput benchmark: vectorized vs pipe vs shm.

Times the distributed filter's steady-state step rate across an
``(n_filters, m, n_workers)`` grid on a payload-heavy model, for the
vectorized in-process backend and the multiprocess backend on both
transports (``pipe`` and ``shm``). Every multiprocess pair also runs a
bit-parity check — the two transports must produce *identical* estimate
trajectories — so a speedup can never come from computing something else.

The benchmark model (:class:`PayloadBenchModel`) is built to expose the data
plane rather than the ALU: a high-dimensional AR(1) contraction whose process
noise is low-rank (one driven coordinate) and whose measurement touches a
single coordinate. Per-particle compute is O(1) noise draws + an elementwise
scale, while boundary traffic per exchange round is O(t * state_dim) — so
transport cost is a first-order term instead of rounding error. The grids use
``t = m`` (full-mirror exchange), the worst-case traffic pattern of the
paper's Algorithm 2.

Results are written as ``BENCH_multiprocess.json`` at the repo root by
``esthera bench multiprocess`` (see the CI ``bench-smoke`` job), making the
perf trajectory trackable PR-over-PR.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.bench.harness import resolve_grid
from repro.models.base import StateSpaceModel
from repro.prng import make_rng
from repro.telemetry import Tracer, run_metadata, write_chrome_trace

#: named (n_filters, m, n_workers) grids. The largest "default" config is the
#: acceptance config: n_filters >= 256, m >= 64, >= 4 workers.
GRIDS: dict[str, list[tuple[int, int, int]]] = {
    "smoke": [(16, 16, 2), (64, 32, 2)],
    "default": [(64, 32, 2), (128, 64, 4), (256, 64, 4)],
    "full": [(64, 32, 2), (128, 64, 4), (256, 64, 4), (256, 128, 4), (512, 64, 8)],
}

#: state dimension of the benchmark model — payload-heavy on purpose: the
#: boundary traffic per round scales with t * d.
STATE_DIM = 64


class PayloadBenchModel(StateSpaceModel):
    """High-dimensional AR(1) contraction with low-rank process noise.

    Transition: ``x_k = a * x_{k-1}`` elementwise, plus Gaussian noise on
    coordinate 0 only (one draw per particle, not per dimension).
    Measurement: coordinate 0 plus Gaussian noise. The state vector is
    ``state_dim`` wide, so exchanged particles are large while the
    per-particle flop count stays tiny — a transport benchmark, not an ALU
    benchmark.
    """

    def __init__(self, d: int = STATE_DIM, a: float = 0.95,
                 sigma: float = 0.2, r: float = 0.1):
        self.state_dim = int(d)
        self.measurement_dim = 1
        self.control_dim = 0
        self.a, self.sigma, self.r = float(a), float(sigma), float(r)

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, self.state_dim)).astype(dtype, copy=False)

    def transition(self, states, control, k, rng):
        out = (self.a * states).astype(states.dtype, copy=False)
        noise = rng.normal(states.shape[:-1])
        out[..., 0] += (self.sigma * noise).astype(states.dtype, copy=False)
        return out

    def log_likelihood(self, states, measurement, k):
        dz = np.asarray(states)[..., 0] - np.asarray(measurement).reshape(-1)[0]
        return -0.5 * (dz / self.r) ** 2

    def initial_state(self, rng):
        return rng.normal((self.state_dim,))

    def observe(self, state, k, rng):
        return state[:1] + self.r * rng.normal((1,))


def _bench_model(d: int = STATE_DIM) -> PayloadBenchModel:
    return PayloadBenchModel(d)


def _bench_config(n_filters: int, m: int,
                  allocation: str = "fixed") -> DistributedFilterConfig:
    # t = m: every sub-filter mirrors its full population to its neighbours,
    # the maximum-traffic exchange of Algorithm 2.
    return DistributedFilterConfig(
        n_particles=m, n_filters=n_filters, topology="ring",
        n_exchange=m, estimator="weighted_mean", seed=42,
        dtype=np.float32, allocation=allocation,
    )


def _measurements(model: StateSpaceModel, steps: int) -> np.ndarray:
    truth = model.simulate(steps, make_rng("numpy", seed=7))
    return np.asarray(truth.measurements, dtype=np.float64)


def _time_filter(pf, meas: np.ndarray, warmup: int) -> tuple[float, np.ndarray]:
    """Steady-state seconds/step and the post-warmup estimate trajectory."""
    ests = []
    for k in range(warmup):
        pf.step(meas[k])
    start = time.perf_counter()
    for k in range(warmup, meas.shape[0]):
        ests.append(pf.step(meas[k]))
    elapsed = time.perf_counter() - start
    return elapsed / max(meas.shape[0] - warmup, 1), np.asarray(ests)


def run_multiprocess_bench(grid: str | list = "default", *, steps: int = 30,
                           warmup: int = 3, backends=("vectorized", "pipe", "shm"),
                           state_dim: int = STATE_DIM,
                           trace_path: str | None = None,
                           allocation: str = "fixed") -> dict:
    """Run the transport benchmark; returns the JSON-ready report dict.

    ``grid`` is a named grid (``smoke``/``default``/``full``) or an explicit
    list of ``(n_filters, m, n_workers)`` tuples. Multiprocess rows include
    ``identical_estimates`` — the pipe-vs-shm bit-parity verdict for that
    config (always required to be ``True``).

    ``allocation`` selects the particle-allocation policy axis: ``fixed``
    is the classic dense layout; ``ess``/``mass`` run the adaptive layout
    (padded capacity + per-round width decisions), timing what the
    allocation machinery costs at transport scale. Bit-parity between pipe
    and shm is required on every axis value.

    With ``trace_path``, every timed run is wrapped in a run-level span and
    the multiprocess backends record full step/stage/kernel spans (master +
    workers, clock-aligned); the merged timeline is written as a
    Chrome/Perfetto ``trace_event`` file. Tracing adds per-stage bookkeeping
    to the timed region, so rates from a traced run are not comparable to an
    untraced report.
    """
    from repro.backends import MultiprocessDistributedParticleFilter

    tracer = Tracer(enabled=trace_path is not None)
    tracer.labels[tracer.pid] = "bench"
    configs = resolve_grid(GRIDS, grid)
    model = _bench_model(state_dim)
    rows = []
    for n_filters, m, n_workers in configs:
        cfg = _bench_config(n_filters, m, allocation)
        meas = _measurements(model, steps)
        row = {
            "n_filters": n_filters, "m": m, "n_workers": n_workers,
            "total_particles": n_filters * m,
        }
        trajectories = {}
        for backend in backends:
            run_t0 = tracer.clock()
            if backend == "vectorized":
                pf = DistributedParticleFilter(model, cfg)
                pf.tracer.enabled = tracer.enabled
                pf.initialize()
                sec, ests = _time_filter(pf, meas, warmup)
                tracer.merge(pf.tracer.drain()[0])
            else:
                with MultiprocessDistributedParticleFilter(
                    model, cfg, n_workers=n_workers, transport=backend
                ) as pf:
                    pf.tracer.enabled = tracer.enabled
                    sec, ests = _time_filter(pf, meas, warmup)
                    spans, _ = pf.tracer.drain()
                    tracer.merge(spans)
                    for pid, label in pf.tracer.labels.items():
                        tracer.labels.setdefault(pid, f"{backend}:{label}")
            tracer.add(f"bench {backend} F={n_filters} m={m}", "run",
                       run_t0, tracer.clock(),
                       attrs={"backend": backend, "n_filters": n_filters,
                              "m": m, "n_workers": n_workers,
                              "steps_per_s": 1.0 / sec})
            trajectories[backend] = ests
            row[f"{backend}_steps_per_s"] = 1.0 / sec
            row[f"{backend}_particles_per_s"] = n_filters * m / sec
        base = trajectories.get("pipe")
        others = [b for b in trajectories if b not in ("vectorized", "pipe")]
        if base is not None and others:
            # Every multiprocess transport must reproduce pipe's estimates
            # bit-for-bit — shm and tcp are transport optimizations only.
            row["identical_estimates"] = all(
                bool(np.array_equal(base, trajectories[b])) for b in others
            )
            for b in others:
                row[f"{b}_speedup_vs_pipe"] = (
                    row[f"{b}_steps_per_s"] / row["pipe_steps_per_s"]
                )
        rows.append(row)

    if trace_path is not None:
        write_chrome_trace(trace_path, tracer.spans, tracer.counters,
                           labels=tracer.labels)

    largest = rows[-1] if rows else {}
    report = {
        "benchmark": "multiprocess-transport",
        "grid": grid if isinstance(grid, str) else "custom",
        "steps": steps,
        "warmup": warmup,
        "state_dim": state_dim,
        "n_exchange": "m (full mirror)",
        "allocation": allocation,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        # Full provenance record (git SHA, platform, CPU count...): a perf
        # number without its environment is not comparable PR-over-PR.
        "metadata": run_metadata(),
        "rows": rows,
        "summary": {
            "largest_config": {k: largest.get(k) for k in ("n_filters", "m", "n_workers")},
            "shm_speedup_vs_pipe": largest.get("shm_speedup_vs_pipe"),
            "identical_estimates": all(
                r.get("identical_estimates", True) for r in rows
            ),
        },
    }
    return report


def measure_telemetry_overhead(*, n_filters: int = 64, m: int = 32,
                               steps: int = 30, warmup: int = 3,
                               repeats: int = 3,
                               state_dim: int = STATE_DIM) -> dict:
    """Step cost of carrying a *disabled* tracer through the vectorized hooks.

    Compares the default construction (every hook holds the filter's tracer,
    recording off) against the same pipeline with telemetry detached from
    each hook (``hook.tracer = None`` — exactly the pre-telemetry hook
    path). Both sides take the min over *repeats* timed runs, so the
    reported ``overhead_fraction`` is a noise-resistant upper-bound estimate
    of what the telemetry plumbing costs when nobody is tracing.
    """
    model = _bench_model(state_dim)
    cfg = _bench_config(n_filters, m)
    meas = _measurements(model, steps)

    def once(detached: bool) -> float:
        pf = DistributedParticleFilter(model, cfg)
        if detached:
            for hook in pf.pipeline.hooks:
                if hasattr(hook, "tracer"):
                    hook.tracer = None
        pf.initialize()
        sec, _ = _time_filter(pf, meas, warmup)
        return sec

    baseline = min(once(True) for _ in range(repeats))
    instrumented = min(once(False) for _ in range(repeats))
    return {
        "n_filters": n_filters, "m": m, "steps": steps, "repeats": repeats,
        "baseline_s_per_step": baseline,
        "instrumented_s_per_step": instrumented,
        "overhead_fraction": instrumented / baseline - 1.0,
    }


def write_report(report: dict, path: str = "BENCH_multiprocess.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return path
