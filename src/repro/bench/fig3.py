"""Fig. 3: achieved particle-filter update rate vs total number of particles.

Three kinds of series:

- *simulated* Hz on every Table III platform (cost model; the paper's GPUs),
- *measured* Hz of the vectorized NumPy backend on this host,
- *simulated* Hz of the paper's sequential centralized C reference.
"""

from __future__ import annotations

import time

from repro.bench.harness import arm_truth
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.device import PLATFORMS, filter_round_cost
from repro.device.costmodel import sequential_round_time
from repro.device.spec import get_platform
from repro.models import RobotArmModel


def _measured_hz(total: int, model: RobotArmModel, n_steps: int = 5) -> float:
    """Wall-clock update rate of the vectorized backend at `total` particles."""
    m = 64
    n_filters = max(total // m, 1)
    cfg = DistributedFilterConfig(n_particles=m, n_filters=n_filters, seed=0)
    pf = DistributedParticleFilter(model, cfg)
    truth = arm_truth(n_steps + 1, seed=7, model=model)
    pf.initialize()
    pf.step(truth.measurements[0], truth.controls[0])  # warm caches
    start = time.perf_counter()
    for k in range(1, n_steps + 1):
        pf.step(truth.measurements[k], truth.controls[k])
    return n_steps / (time.perf_counter() - start)


def run_fig3(
    totals: list[int] | None = None,
    platforms: list[str] | None = None,
    measure_host: bool = True,
    state_dim: int = 9,
) -> list[dict]:
    """One row per total particle count, one column per platform (Hz)."""
    totals = totals or [1 << k for k in range(10, 23, 2)]
    platforms = platforms or list(PLATFORMS)
    model = RobotArmModel()
    rows = []
    for total in totals:
        row: dict = {"total_particles": total}
        for p in platforms:
            dev = get_platform(p)
            m = 64 if dev.device_type == "cpu" else 512
            n_filters = max(total // m, 1)
            row[p] = filter_round_cost(dev, m, n_filters, state_dim).update_rate_hz
        row["seq_centralized"] = 1.0 / sequential_round_time(get_platform("i7-2820qm"), total, state_dim)
        if measure_host and total <= (1 << 16):
            row["host_numpy_measured"] = _measured_hz(total, model)
        rows.append(row)
    return rows
