"""Tables I-III as data: the parameter sets and the platform sheet."""

from __future__ import annotations

from repro.core import DEFAULT_CPU_CONFIG, DEFAULT_GPU_CONFIG
from repro.device import PLATFORMS
from repro.models import RobotArmParams


def table2_rows() -> list[dict]:
    """Table II: default filter and model parameters with noise terms."""
    arm = RobotArmParams()
    gpu, cpu = DEFAULT_GPU_CONFIG, DEFAULT_CPU_CONFIG
    return [
        {"parameter": "particles per sub-filter (GPU)", "value": gpu.n_particles},
        {"parameter": "particles per sub-filter (CPU)", "value": cpu.n_particles},
        {"parameter": "number of sub-filters", "value": gpu.n_filters},
        {"parameter": "exchange scheme", "value": gpu.topology},
        {"parameter": "particles per exchange", "value": gpu.n_exchange},
        {"parameter": "number of joints", "value": arm.n_joints},
        {"parameter": "state dimension (#joints + 4)", "value": arm.n_joints + 4},
        {"parameter": "arm length (meter)", "value": arm.arm_length},
        {"parameter": "sigma theta (process, rad)", "value": arm.sigma_theta},
        {"parameter": "sigma theta-hat (sensor, rad)", "value": arm.sigma_theta_meas},
        {"parameter": "sigma camera (m)", "value": arm.sigma_camera},
        {"parameter": "sigma x/y (m)", "value": arm.sigma_xy},
        {"parameter": "sigma vx/vy (m/s)", "value": arm.sigma_v},
    ]


def table3_rows() -> list[dict]:
    """Table III: the hardware platform sheet."""
    return [
        {
            "key": key,
            "name": dev.name,
            "type": dev.device_type,
            "cores_SMs_CUs": dev.n_sm,
            "clock_GHz": dev.core_clock_ghz,
            "SP_GFLOPs": dev.sp_gflops,
            "mem_bw_GBs": dev.mem_bandwidth_gbs,
            "local_mem_KB": dev.local_mem_kb,
            "TDP_W": dev.tdp_watt,
            "released": dev.released,
        }
        for key, dev in PLATFORMS.items()
    ]
