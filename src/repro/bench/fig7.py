"""Fig. 7: estimation error vs number of exchanged particles t in {0, 1, 2}.

The paper's finding: exchanging even one particle is a large win; more than
one is marginal ("we ran up to t = 8 to verify the trend").
"""

from __future__ import annotations

from repro.bench.harness import sweep_error
from repro.core import DistributedFilterConfig


def run_fig7(
    t_values: tuple[int, ...] = (0, 1, 2),
    particles_per_filter: tuple[int, ...] = (8, 16, 64),
    n_filters: tuple[int, ...] = (8, 16, 64),
    n_runs: int = 4,
    n_steps: int = 60,
    topology: str = "ring",
) -> list[dict]:
    rows = []
    for m in particles_per_filter:
        for N in n_filters:
            row: dict = {"particles_per_filter": m, "n_filters": N}
            for t in t_values:
                cfg = DistributedFilterConfig(
                    n_particles=m,
                    n_filters=N,
                    topology=topology,
                    n_exchange=t,
                    estimator="weighted_mean",
                )
                row[f"t={t}"] = sweep_error(cfg, n_runs=n_runs, n_steps=n_steps)
            rows.append(row)
    return rows
