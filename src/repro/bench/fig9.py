"""Fig. 9: estimation error of distributed vs centralized filtering at equal
total particle counts, across sub-filter sizes.

The paper's conclusion this sweep reproduces: for every filter size there
exist distributed configurations that match (or beat) the centralized
filter; only very small sub-filter sizes degrade accuracy, possibly severely.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import arm_truth, sweep_error
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    run_filter,
)
from repro.models import RobotArmModel


def run_fig9(
    totals: tuple[int, ...] = (256, 1024, 4096),
    subfilter_sizes: tuple[int, ...] = (4, 16, 64),
    n_runs: int = 4,
    n_steps: int = 60,
    warmup: int = 20,
) -> list[dict]:
    model = RobotArmModel()
    rows = []
    for total in totals:
        row: dict = {"total_particles": total}
        # Centralized reference at the same total (same estimator and
        # resampler so the comparison isolates the distribution scheme).
        errs = []
        for r in range(n_runs):
            truth = arm_truth(n_steps, seed=1000 + r, model=model)
            pf = CentralizedParticleFilter(
                model,
                CentralizedFilterConfig(
                    n_particles=total, resampler="rws", estimator="weighted_mean", seed=r
                ),
            )
            errs.append(run_filter(pf, model, truth).mean_error(warmup=warmup))
        row["centralized"] = float(np.mean(errs))
        for m in subfilter_sizes:
            if total // m < 2:
                continue
            cfg = DistributedFilterConfig(
                n_particles=m,
                n_filters=total // m,
                topology="ring",
                estimator="weighted_mean",
            )
            row[f"distributed_m={m}"] = sweep_error(cfg, n_runs=n_runs, n_steps=n_steps, warmup=warmup, model=model)
        rows.append(row)
    return rows
