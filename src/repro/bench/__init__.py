"""Benchmark harness: one runner per table/figure of the paper's evaluation.

Each ``run_figN`` function returns a list of row dicts (the same series the
paper plots) and is invoked both by the ``benchmarks/`` suite and by the
EXPERIMENTS.md regeneration script. Scales default to single-core-friendly
sizes; pass larger parameters to sweep further.
"""

from repro.bench.harness import format_table, sweep_error
from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4a, run_fig4b, run_fig4c, measured_breakdown
from repro.bench.fig5 import run_fig5_centralized, run_fig5_subfilter
from repro.bench.fig6 import run_fig6
from repro.bench.fig7 import run_fig7
from repro.bench.fig8 import run_fig8
from repro.bench.fig9 import run_fig9
from repro.bench.allocation import run_allocation_bench
from repro.bench.kernels import run_kernel_bench
from repro.bench.perf import run_multiprocess_bench, write_report
from repro.bench.sessions import run_sessions_bench
from repro.bench.shard import run_shard_bench
from repro.bench.tables import table2_rows, table3_rows

__all__ = [
    "run_allocation_bench",
    "run_kernel_bench",
    "run_multiprocess_bench",
    "run_sessions_bench",
    "run_shard_bench",
    "write_report",
    "format_table",
    "sweep_error",
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "measured_breakdown",
    "run_fig5_centralized",
    "run_fig5_subfilter",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "table2_rows",
    "table3_rows",
]
