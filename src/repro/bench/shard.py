"""Shard-cut benchmark: cross-shard traffic scales with the cut, not the run.

The shard-aware exchange (``shard_exchange``) serializes only *cut-edge*
particles across worker boundaries — each worker's local exchange slots are
filled from its own population without touching the wire. This benchmark
pins the resulting scaling law: at a fixed topology cut, growing the
per-filter population ``m`` leaves the measured cut bytes flat, while
growing the number of sub-filters (and with it the cut) grows them
linearly. Every row also carries a bit-parity verdict against the
single-process golden trace, so the byte savings are never bought with a
numerical divergence.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.bench.harness import resolve_grid
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.telemetry import run_metadata
from repro.topology import make_shard_plan, resolve_topology

#: (n_filters, m, n_workers) — one axis varies m at fixed cut, one varies
#: the filter count (and with it the ring cut) at fixed m.
GRIDS = {
    "smoke": [(8, 16, 2), (8, 64, 2), (16, 16, 2)],
    "default": [
        (16, 32, 2), (16, 128, 2), (16, 512, 2),   # m grows, cut fixed
        (16, 32, 4), (32, 32, 4), (64, 32, 4),     # cut grows, m fixed
    ],
    "full": [
        (32, 64, 4), (32, 256, 4), (32, 1024, 4),
        (32, 64, 8), (64, 64, 8), (128, 64, 8),
    ],
}


def _config(n_filters: int, m: int) -> DistributedFilterConfig:
    return DistributedFilterConfig(
        n_particles=m, n_filters=n_filters, topology="ring", n_exchange=2,
        estimator="weighted_mean", seed=7, rng_streams="filter",
    )


def run_shard_bench(grid: str | list = "default", *, steps: int = 12,
                    warmup: int = 2, transport: str = "tcp") -> dict:
    """Run the shard-cut benchmark; returns the JSON-ready report dict.

    For every ``(n_filters, m, n_workers)`` cell:

    - a single-worker pipe run produces the golden estimate trajectory;
    - an ``n_workers``-shard run over *transport* (shard exchange forced on)
      must reproduce it bitwise (``parity``);
    - the master's ``shard_cut_bytes`` counter, divided by the timed steps,
      is compared against :meth:`ShardPlan.cut_bytes_per_round`'s
      prediction from the topology cut alone.
    """
    from repro.backends import MultiprocessDistributedParticleFilter

    configs = resolve_grid(GRIDS, grid)
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    rows = []
    for n_filters, m, n_workers in configs:
        cfg = _config(n_filters, m)
        truth = model.simulate(steps + warmup, make_rng("numpy", seed=11))
        meas = np.asarray(truth.measurements, dtype=np.float64)

        with MultiprocessDistributedParticleFilter(
                model, cfg, n_workers=1, transport="pipe") as pf:
            golden = np.array([pf.step(z) for z in meas])

        plan = make_shard_plan(resolve_topology(cfg.topology, n_filters),
                               n_workers)
        with MultiprocessDistributedParticleFilter(
                model, cfg, n_workers=n_workers, transport=transport,
                shard_exchange="on") as pf:
            for z in meas[:warmup]:
                pf.step(z)
            base_bytes = pf.shard_cut_bytes
            t0 = time.perf_counter()
            ests = [pf.step(z) for z in meas[warmup:]]
            sec = (time.perf_counter() - t0) / max(steps, 1)
            cut_bytes = pf.shard_cut_bytes - base_bytes
            state_itemsize = np.dtype(pf.dtype_policy.state).itemsize
            weight_itemsize = np.dtype(pf.dtype_policy.weight).itemsize
        ests = np.array(ests)
        predicted = plan.cut_bytes_per_round(
            cfg.n_exchange, model.state_dim,
            state_itemsize=state_itemsize, weight_itemsize=weight_itemsize)
        rows.append({
            "n_filters": n_filters, "m": m, "n_workers": n_workers,
            "total_particles": n_filters * m,
            "cut_edges": plan.cut_size(),
            "predicted_cut_bytes_per_round": int(predicted),
            "measured_cut_bytes_per_round": cut_bytes / max(steps, 1),
            "steps_per_s": 1.0 / sec if sec > 0 else float("inf"),
            "parity": bool(np.array_equal(golden[warmup:], ests)),
        })

    # The headline claim, stated as data: same cut, 4x the particles,
    # same bytes; more cut edges, proportionally more bytes.
    by_cut: dict[int, set] = {}
    for r in rows:
        by_cut.setdefault(r["cut_edges"], set()).add(
            r["measured_cut_bytes_per_round"])
    return {
        "benchmark": "shard-cut",
        "grid": grid if isinstance(grid, str) else "custom",
        "transport": transport,
        "steps": steps,
        "warmup": warmup,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "metadata": run_metadata(),
        "rows": rows,
        "summary": {
            "parity": all(r["parity"] for r in rows),
            # One distinct byte figure per cut size ⇒ traffic is a function
            # of the cut alone, independent of the population.
            "bytes_depend_only_on_cut": all(
                len(v) == 1 for v in by_cut.values()),
        },
    }


def write_report(report: dict, path: str = "BENCH_shard.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return path
