"""Session-layer throughput benchmark: cohort batching vs per-session loops.

``esthera bench sessions`` measures the tentpole claim of the session layer:
packing ``S`` independent live filters into one cohort slab and stepping the
slab as a single vectorized (or fused compiled) pipeline pass beats stepping
``S`` private :class:`~repro.core.DistributedParticleFilter` instances in a
Python loop. Per grid point it reports both legs' session-steps/s, the
speedup, and the scheduler's submit-to-result latency percentiles — and it
spot-checks that the first few cohort-stepped sessions produce *bit-identical*
estimate trajectories to their naive counterparts, so the speedup can never
come from computing a different filter.

The benchmark model (:class:`SessionBenchModel`) is a scalar AR(1) with five
ufunc calls per evaluation: at the target shape (many sessions, one
sub-filter of ``m = 32`` particles each) a naive per-session round is almost
pure interpreter/dispatch overhead, which is exactly the per-session cost the
cohort amortizes across the slab — the paper's many-core batching argument
applied across *filters* instead of across particles.

Results are written as ``BENCH_sessions.json`` at the repo root (see the CI
``bench-sessions-smoke`` job), making the perf trajectory trackable
PR-over-PR.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.bench.harness import resolve_grid
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models.base import StateSpaceModel
from repro.prng import make_rng
from repro.sessions import SessionManager
from repro.telemetry import run_metadata

#: named grids of session counts. The largest "default" entry is the
#: acceptance config: 1024 live sessions of m = 32 particles each.
GRIDS: dict[str, list[int]] = {
    "smoke": [64],
    "default": [256, 1024],
    "full": [64, 256, 1024, 2048],
}

#: particles per session (one sub-filter, the session layer's common case).
PARTICLES = 32

#: execution legs; both are inside the cohort envelope, and the compiled
#: leg's default config is also inside the fused form's envelope, so it
#: exercises the fused cohort stage.
EXECUTIONS = ("reference", "compiled")

#: sessions whose full estimate trajectories are recorded in both legs and
#: compared bitwise.
PARITY_SESSIONS = 8


class SessionBenchModel(StateSpaceModel):
    """Scalar AR(1) with Gaussian noise, written for minimal dispatch cost.

    ``x_k = a x_{k-1} + sigma w_k``, ``z_k = x_k + sqrt(r) v_k``. Transition
    and log-likelihood are elementwise over every leading batch dim and
    ignore ``k``, and the likelihood indexes the measurement's trailing axis
    so a cohort's ``(rows, 1, 1)`` packed measurement broadcasts exactly like
    the solo filter's scalar one — the :attr:`supports_cohort_batch`
    contract.
    """

    state_dim = 1
    measurement_dim = 1
    control_dim = 0
    supports_cohort_batch = True

    def __init__(self, a: float = 0.95, sigma: float = 0.2, r: float = 0.1):
        self.a, self.sigma, self.r = float(a), float(sigma), float(r)

    def signature(self) -> tuple:
        return ("session_bench", self.a, self.sigma, self.r)

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, 1)).astype(dtype, copy=False)

    def transition(self, states, control, k, rng):
        states = np.asarray(states)
        noise = rng.normal(states.shape, dtype=np.float64)
        out = self.a * states + self.sigma * noise.astype(states.dtype, copy=False)
        return out.astype(states.dtype, copy=False)

    def log_likelihood(self, states, measurement, k):
        dz = np.asarray(states)[..., 0] - np.asarray(measurement)[..., 0]
        return -0.5 / self.r * dz * dz

    def initial_state(self, rng):
        return rng.normal((1,))

    def observe(self, state, k, rng):
        return np.asarray(state) + np.sqrt(self.r) * rng.normal((1,))


def _bench_config(m: int, execution: str, seed: int) -> DistributedFilterConfig:
    # One sub-filter per session, no exchange: the session layer's common
    # shape, and (at the defaults) inside the fused form's envelope too.
    return DistributedFilterConfig(
        n_particles=m, n_filters=1, n_exchange=0, seed=seed,
        execution=execution,
    )


def _measurements(n_sessions: int, n_steps: int) -> np.ndarray:
    """Independent per-session measurement trajectories, ``(S, T, 1)``."""
    rng = make_rng("numpy", seed=1234)
    return rng.normal((n_sessions, n_steps, 1))


def _run_naive(model, m, execution, meas, warmup):
    """S private filters stepped in a Python loop; returns (sec/step, ests)."""
    S, T, _ = meas.shape
    filters = [DistributedParticleFilter(model, _bench_config(m, execution, i))
               for i in range(S)]
    for pf in filters:
        pf.initialize()
    n_parity = min(S, PARITY_SESSIONS)
    ests = np.empty((n_parity, T))
    for k in range(warmup):
        for i, pf in enumerate(filters):
            e = pf.step(meas[i, k])
            if i < n_parity:
                ests[i, k] = e[0]
    t0 = time.perf_counter()
    for k in range(warmup, T):
        for i, pf in enumerate(filters):
            e = pf.step(meas[i, k])
            if i < n_parity:
                ests[i, k] = e[0]
    elapsed = time.perf_counter() - t0
    return elapsed / max(T - warmup, 1), ests


def _run_cohort(model, m, execution, meas, warmup):
    """The same S sessions through one SessionManager cohort slab.

    Returns ``(sec/tick, ests, latency)`` where the latency dict is the
    manager's submit-to-result percentile readout over the timed region.
    """
    S, T, _ = meas.shape
    mgr = SessionManager(max_queue=4)
    for i in range(S):
        mgr.attach(f"s{i}", model, _bench_config(m, execution, i))
    if mgr.stats()["solo_sessions"]:
        raise RuntimeError("benchmark config fell out of the cohort envelope")
    n_parity = min(S, PARITY_SESSIONS)
    ests = np.empty((n_parity, T))

    def tick(k):
        for i in range(S):
            mgr.submit(f"s{i}", meas[i, k])
        for res in mgr.tick():
            i = int(res.session_id[1:])
            if i < n_parity:
                ests[i, k] = res.estimate[0]

    for k in range(warmup):
        tick(k)
    mgr.reset_latency()  # percentiles over the timed region only
    t0 = time.perf_counter()
    for k in range(warmup, T):
        tick(k)
    elapsed = time.perf_counter() - t0
    return elapsed / max(T - warmup, 1), ests, mgr.stats()["latency"]


def run_sessions_bench(grid="default", steps: int = 25, warmup: int = 3,
                       m: int = PARTICLES) -> dict:
    """Time cohort-batched vs naive per-session stepping over *grid*.

    ``grid`` is a named grid (``smoke``/``default``/``full``) or an explicit
    list of session counts. Every row carries both legs' session-steps/s,
    the headline ``speedup`` (cohort over naive, same execution policy), the
    scheduler's p50/p99 submit-to-result latency, and the bit-parity verdict
    over the first :data:`PARITY_SESSIONS` sessions' estimate trajectories.
    Parity failures raise — a speedup that computes something else is not a
    speedup.
    """
    session_counts = [int(s) for s in resolve_grid(GRIDS, grid)]
    model = SessionBenchModel()
    T = steps + warmup
    rows = []
    for S in session_counts:
        meas = _measurements(S, T)
        for execution in EXECUTIONS:
            naive_sec, naive_ests = _run_naive(model, m, execution, meas, warmup)
            cohort_sec, cohort_ests, latency = _run_cohort(
                model, m, execution, meas, warmup)
            if not np.array_equal(naive_ests, cohort_ests):
                raise RuntimeError(
                    f"cohort/naive estimate mismatch at S={S} "
                    f"execution={execution}: the session layer broke parity")
            rows.append({
                "sessions": S, "m": m, "execution": execution,
                "total_particles": S * m,
                "naive_steps_per_s": S / naive_sec,
                "cohort_steps_per_s": S / cohort_sec,
                "speedup": naive_sec / cohort_sec,
                "latency_p50_s": latency["p50_s"],
                "latency_p99_s": latency["p99_s"],
                "parity_sessions": min(S, PARITY_SESSIONS),
                "parity_ok": True,
            })
    largest = max(session_counts)
    largest_rows = [r for r in rows if r["sessions"] == largest]
    best = max(rows, key=lambda r: r["speedup"])
    return {
        "benchmark": "sessions",
        "grid": grid if isinstance(grid, str) else list(session_counts),
        "steps": steps, "warmup": warmup,
        "metadata": run_metadata(),
        "rows": rows,
        "summary": {
            "best_speedup": best["speedup"],
            "best_config": {k: best[k] for k in ("sessions", "m", "execution")},
            "largest_sessions": largest,
            "largest_speedup": max(r["speedup"] for r in largest_rows),
        },
    }


def write_report(report: dict, path: str = "BENCH_sessions.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return path
