"""Fig. 6: estimation error vs number of sub-filters for the three exchange
schemes (All-to-All / Ring / 2D Torus) at several sub-filter sizes.

The paper's findings this sweep reproduces: All-to-All is the worst
(diversity collapse); a low particle count per filter can be compensated by
more sub-filters; the Ring wins for small networks, the Torus for large ones.
"""

from __future__ import annotations

from repro.bench.harness import sweep_error
from repro.core import DistributedFilterConfig


def run_fig6(
    schemes: tuple[str, ...] = ("all-to-all", "ring", "torus"),
    particles_per_filter: tuple[int, ...] = (8, 16, 64),
    n_filters: tuple[int, ...] = (8, 16, 64),
    n_runs: int = 4,
    n_steps: int = 60,
    n_exchange: int = 1,
) -> list[dict]:
    rows = []
    for m in particles_per_filter:
        for N in n_filters:
            row: dict = {"particles_per_filter": m, "n_filters": N}
            for scheme in schemes:
                cfg = DistributedFilterConfig(
                    n_particles=m,
                    n_filters=N,
                    topology=scheme,
                    n_exchange=n_exchange,
                    estimator="weighted_mean",
                )
                row[scheme] = sweep_error(cfg, n_runs=n_runs, n_steps=n_steps)
            rows.append(row)
    return rows
