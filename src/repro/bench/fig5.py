"""Fig. 5: Roulette Wheel Selection vs Vose's alias method resampling time.

Two regimes, as in the paper:

- **centralized**: one flat population of n particles (the sequential C
  filter). Vose's O(1)-per-sample generation beats RWS's O(log n) binary
  search as n grows — both in our measured wall-clock and in the cost model.
- **sub-filter**: many local populations of m=512. The alias table build
  cannot amortize at that size, so Vose is *not* faster (the paper's
  conclusion for all OpenCL platforms).
"""

from __future__ import annotations

import time

import numpy as np

from repro.device import get_platform
from repro.device.costmodel import centralized_resample_time, filter_round_cost
from repro.prng import make_rng
from repro.resampling import RouletteWheelResampler, VoseAliasResampler


def _measure(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_fig5_centralized(sizes: list[int] | None = None, platform: str = "i7-2820qm") -> list[dict]:
    """Centralized resampling: measured host wall-clock + modelled C time."""
    sizes = sizes or [1 << k for k in range(10, 21, 2)]
    dev = get_platform(platform)
    rng = make_rng("numpy", seed=0)
    rows = []
    rws = RouletteWheelResampler()
    vose = VoseAliasResampler(parallel_build=True)  # vectorized build for fair host timing
    for n in sizes:
        w = np.random.default_rng(1).random(n) + 1e-9
        rows.append(
            {
                "n_particles": n,
                "rws_measured_ms": _measure(lambda: rws.resample(w, n, rng)) * 1e3,
                "vose_measured_ms": _measure(lambda: vose.resample(w, n, rng)) * 1e3,
                "rws_model_ms": centralized_resample_time(dev, n, "rws") * 1e3,
                "vose_model_ms": centralized_resample_time(dev, n, "vose") * 1e3,
            }
        )
    return rows


def run_fig5_subfilter(
    totals: list[int] | None = None, n_particles: int = 512, platform: str = "gtx-680"
) -> list[dict]:
    """Sub-filter resampling: measured batched host wall-clock + device model."""
    totals = totals or [1 << k for k in range(13, 19, 2)]
    dev = get_platform(platform)
    rng = make_rng("numpy", seed=0)
    rws = RouletteWheelResampler()
    vose = VoseAliasResampler(parallel_build=True)
    rows = []
    for total in totals:
        F = max(total // n_particles, 1)
        w = np.random.default_rng(2).random((F, n_particles)) + 1e-9
        rows.append(
            {
                "total_particles": total,
                "rws_measured_ms": _measure(lambda: rws.resample_batch(w, n_particles, rng)) * 1e3,
                "vose_measured_ms": _measure(lambda: vose.resample_batch(w, n_particles, rng)) * 1e3,
                "rws_model_ms": filter_round_cost(dev, n_particles, F, 9, resampler="rws").seconds["resample"] * 1e3,
                "vose_model_ms": filter_round_cost(dev, n_particles, F, 9, resampler="vose").seconds["resample"] * 1e3,
            }
        )
    return rows
