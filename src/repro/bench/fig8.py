"""Fig. 8: lemniscate ground truth with a converging high-particle trace and
a non-converging low-particle trace.

Both filters start off the true path; the large filter locks on, the tiny
one does not — the paper's first correctness-validation technique.
"""

from __future__ import annotations

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.metrics.error import convergence_step
from repro.models import RobotArmModel, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def run_fig8(
    n_steps: int = 120,
    high: tuple[int, int] = (32, 32),  # paper: 32 x 32-class filter converges
    low: tuple[int, int] = (2, 2),  # paper: 2 x 2 does not
    seed: int = 0,
    threshold: float = 0.25,
) -> dict:
    """Returns the ground-truth path and both filters' object-position traces."""
    model = RobotArmModel()
    pos, vel = lemniscate(n_steps, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", seed))
    out: dict = {"ground_truth": pos}
    for label, (m, N) in (("high", high), ("low", low)):
        cfg = DistributedFilterConfig(
            n_particles=m, n_filters=N, estimator="weighted_mean", seed=seed + 1
        )
        pf = DistributedParticleFilter(model, cfg)
        run = run_filter(pf, model, truth)
        trace = run.estimates[:, model.n_joints : model.n_joints + 2]
        out[f"{label}_trace"] = trace
        out[f"{label}_errors"] = run.errors
        out[f"{label}_converged_at"] = convergence_step(run.errors, threshold=threshold, hold=10)
    return out
