"""RMSE-vs-cost benchmark for adaptive particle allocation.

Runs the vectorized distributed filter on the two committed tracking
workloads — the paper's robot-arm model (Section VII-A) and bearings-only
tracking — under each allocation policy at the *same total particle budget*,
and reports accuracy per simulated FLOP. The question the report answers:
given ``F * m`` particles, does letting the :class:`AllocationPolicy` move
them between sub-filters buy accuracy that an equal split leaves on the
table?

Cost accounting
---------------
Simulated FLOPs are charged per *live* particle per step using the device
cost model's sampling-dominated first-order term::

    flops_step = sum_i m_i(k) * (model_flops_per_particle(d)
                                 + d * RNG_FLOPS_PER_VALUE)

which is the importance-sampling + PRNG work of the paper's dominant kernel
(Fig. 5: sampling is the top cost at every size). All policies conserve the
total budget, so adaptive runs spend the same FLOPs as ``fixed`` up to
clamp rounding — the headline ``rmse_per_flop_gain`` is then driven by
accuracy, not by quietly simulating less.

Workload choice
---------------
Both workloads run several sub-filters from a diffuse prior at a starved
per-filter budget (m = 8), the regime the adaptive policies target: some
sub-filters lock onto the target while others chase clutter with all-but-
degenerate weight mass, so an equal split wastes a fixed fraction of the
budget every round. RMSE is averaged over many seeds because single runs
are dominated by whether the filter locks on at all; the mean captures how
often each policy avoids divergence, the median how well it tracks when it
does.

``esthera bench allocation`` writes the report as ``BENCH_allocation.json``
(see the CI ``allocation-parity`` job) and asserts the acceptance floor via
``--assert-gain``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.device.costmodel import RNG_FLOPS_PER_VALUE, model_flops_per_particle
from repro.prng import make_rng
from repro.telemetry import run_metadata

#: allocation policies compared by default; ``fixed`` is the equal-split
#: baseline every gain is measured against.
POLICIES = ("fixed", "ess", "mass")


def _bearings_model():
    from repro.models.bearings_only import BearingsOnlyModel

    # Diffuse prior (x0_spread) scatters the sub-filter populations so
    # their posterior mass diverges early — the heterogeneous regime where
    # non-proportional allocation matters.
    return BearingsOnlyModel(x0_spread=0.8, sigma_bearing=0.02)


def _robot_arm_model():
    from repro.models.robot_arm import RobotArmModel

    return RobotArmModel()


def _robot_arm_rmse_dims(model) -> slice:
    # Object position (x, y) after the joint angles: the camera-tracked
    # quantity, and the paper's reported error.
    k = model.params.n_joints
    return slice(k, k + 2)


#: committed workloads: name -> factory, per-workload shape, RMSE dims.
WORKLOADS: dict[str, dict] = {
    "bearings_only": {
        "model": _bearings_model,
        "rmse_dims": lambda model: slice(0, 2),  # target position
        "n_filters": 8, "m": 8, "steps": 60, "burn_in": 10, "n_exchange": 1,
    },
    "robot_arm": {
        "model": _robot_arm_model,
        "rmse_dims": _robot_arm_rmse_dims,
        "n_filters": 8, "m": 8, "steps": 40, "burn_in": 5, "n_exchange": 1,
    },
}


def _flops_per_particle_step(state_dim: int) -> float:
    return model_flops_per_particle(state_dim) + state_dim * RNG_FLOPS_PER_VALUE


def run_workload(name: str, policy: str, seed: int) -> dict:
    """One (workload, policy, seed) run: RMSE + simulated-FLOP totals."""
    spec = WORKLOADS[name]
    model = spec["model"]()
    cfg = DistributedFilterConfig(
        n_particles=spec["m"], n_filters=spec["n_filters"], topology="ring",
        n_exchange=spec["n_exchange"], estimator="weighted_mean", seed=seed,
        allocation=policy,
    )
    steps, burn = spec["steps"], spec["burn_in"]
    truth = model.simulate(steps, make_rng("numpy", seed=seed + 100))
    meas = np.asarray(truth.measurements, dtype=np.float64)
    ctrl = np.asarray(truth.controls, dtype=np.float64)
    has_ctrl = ctrl.shape[1] > 0

    pf = DistributedParticleFilter(model, cfg)
    pf.initialize()
    per_step = _flops_per_particle_step(model.state_dim)
    ests, flops = [], 0.0
    for k in range(steps):
        ests.append(pf.step(meas[k], ctrl[k] if has_ctrl else None))
        flops += pf._state.live_particles * per_step
    ests = np.asarray(ests)
    ts = np.asarray(truth.states)
    dims = spec["rmse_dims"](model)
    rmse = float(np.sqrt(np.mean((ests[burn:, dims] - ts[burn:, dims]) ** 2)))
    return {"rmse": rmse, "flops": flops,
            "widths": None if pf.widths is None else [int(w) for w in pf.widths]}


def run_allocation_bench(workloads=None, policies=POLICIES, *,
                         n_seeds: int = 16) -> dict:
    """Run the RMSE-vs-cost comparison; returns the JSON-ready report.

    Every policy row carries mean/median RMSE over the seeds, total
    simulated FLOPs, and ``rmse_per_flop_gain`` — the factor by which the
    policy's accuracy-per-FLOP (``1 / (rmse * flops)``) beats the ``fixed``
    equal split on the same workload (1.0 for ``fixed`` itself).
    """
    names = list(workloads) if workloads else list(WORKLOADS)
    rows = []
    for name in names:
        by_policy = {}
        for policy in policies:
            t0 = time.perf_counter()
            runs = [run_workload(name, policy, seed) for seed in range(n_seeds)]
            rmses = np.array([r["rmse"] for r in runs])
            flops = float(np.sum([r["flops"] for r in runs]))
            by_policy[policy] = {
                "policy": policy,
                "rmse_mean": float(rmses.mean()),
                "rmse_median": float(np.median(rmses)),
                "simulated_flops": flops,
                "final_widths": runs[-1]["widths"],
                "elapsed_s": time.perf_counter() - t0,
            }
        base = by_policy.get("fixed")
        for entry in by_policy.values():
            if base is None:
                entry["rmse_per_flop_gain"] = None
            else:
                entry["rmse_per_flop_gain"] = (
                    (base["rmse_mean"] * base["simulated_flops"])
                    / (entry["rmse_mean"] * entry["simulated_flops"]))
        spec = WORKLOADS[name]
        rows.append({
            "workload": name,
            "n_filters": spec["n_filters"], "m": spec["m"],
            "total_budget": spec["n_filters"] * spec["m"],
            "steps": spec["steps"], "burn_in": spec["burn_in"],
            "n_seeds": n_seeds,
            "policies": [by_policy[p] for p in policies],
        })
    best_gain = max(
        (entry["rmse_per_flop_gain"] or 0.0)
        for row in rows for entry in row["policies"]
        if entry["policy"] != "fixed"
    ) if rows else None
    return {
        "benchmark": "allocation-rmse-vs-cost",
        "policies": list(policies),
        "metadata": run_metadata(),
        "rows": rows,
        "summary": {
            "best_adaptive_gain": best_gain,
            "cost_model": "sampling-dominated: live_particles * "
                          "(model_flops_per_particle(d) + d * RNG_FLOPS_PER_VALUE)",
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of the allocation bench report."""
    lines = []
    for row in report["rows"]:
        lines.append(f"{row['workload']}  (F={row['n_filters']}, m={row['m']}, "
                     f"budget={row['total_budget']}, {row['n_seeds']} seeds):")
        lines.append(f"  {'policy':<8} {'rmse mean':>10} {'rmse med':>10} "
                     f"{'gflops':>8} {'gain/flop':>10}")
        for entry in row["policies"]:
            gain = entry["rmse_per_flop_gain"]
            lines.append(
                f"  {entry['policy']:<8} {entry['rmse_mean']:>10.4f} "
                f"{entry['rmse_median']:>10.4f} "
                f"{entry['simulated_flops'] / 1e9:>8.3f} "
                f"{'-' if gain is None else format(gain, '>9.2f') + 'x':>10}")
    gain = report["summary"]["best_adaptive_gain"]
    if gain is not None:
        lines.append(f"best adaptive accuracy-per-FLOP gain: {gain:.2f}x vs equal split")
    return "\n".join(lines)


def write_report(report: dict, path: str = "BENCH_allocation.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return path
