"""Shared benchmark utilities."""

from __future__ import annotations

import numpy as np

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import RobotArmModel, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def resolve_grid(grids: dict, grid):
    """Resolve a benchmark grid argument against a table of named grids.

    ``grid`` is either a name in *grids* or an explicit list of config
    tuples. An unknown name raises :class:`ValueError` listing the valid
    choices — the CLI turns that into a clean non-zero exit instead of the
    bare ``KeyError`` traceback a direct ``grids[grid]`` lookup would give.
    """
    if isinstance(grid, str):
        try:
            return grids[grid]
        except KeyError:
            raise ValueError(
                f"unknown grid {grid!r}; choose from {sorted(grids)}") from None
    return [tuple(c) if isinstance(c, (list, tuple)) else c for c in grid]


def format_table(rows: list[dict], floatfmt: str = "{:.4g}") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(dict.fromkeys(k for r in rows for k in r))

    def cell(r, c):
        v = r.get(c)
        if v is None:
            return "-"
        return floatfmt.format(v) if isinstance(v, float) else str(v)

    rendered = [[cell(r, c) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    lines = ["  ".join(c.ljust(w) for c, w in zip(cols, widths))]
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered]
    return "\n".join(lines)


def arm_truth(n_steps: int, seed: int, model: RobotArmModel | None = None):
    """A lemniscate-tracking ground truth for the robotic arm."""
    model = model or RobotArmModel()
    pos, vel = lemniscate(n_steps, h_s=model.params.h_s)
    return simulate_arm_tracking(model, pos, vel, make_rng("numpy", seed))


def sweep_error(
    config: DistributedFilterConfig,
    n_runs: int = 3,
    n_steps: int = 60,
    warmup: int = 20,
    model: RobotArmModel | None = None,
    filter_cls=DistributedParticleFilter,
) -> float:
    """Mean robotic-arm tracking error of one filter configuration,
    averaged over independent runs (the paper averages 100 runs of 200
    steps; defaults here are laptop-scale and configurable upward)."""
    model = model or RobotArmModel()
    errs = []
    for r in range(n_runs):
        truth = arm_truth(n_steps, seed=1000 + r, model=model)
        pf = filter_cls(model, config.with_(seed=r))
        errs.append(run_filter(pf, model, truth).mean_error(warmup=warmup))
    return float(np.mean(errs))
