"""The checkpoint container: atomicity, integrity, corruption detection."""

import json
import os
import zipfile

import numpy as np
import pytest

from repro.resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    corrupt_checkpoint_file,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.resilience.checkpoint import MANIFEST_MEMBER


def sample_arrays():
    return {
        "states": np.arange(24, dtype=np.float32).reshape(2, 4, 3),
        "logw": np.linspace(-3.0, 0.0, 8).reshape(2, 4),
    }


def write_sample(path, meta=None):
    return write_checkpoint(str(path), sample_arrays(),
                            meta or {"backend": "test", "k": 7})


class TestWriteRead:
    def test_roundtrip_bit_exact(self, tmp_path):
        path = tmp_path / "run.ckpt"
        manifest = write_sample(path)
        arrays, manifest2 = read_checkpoint(str(path))
        assert manifest2 == manifest
        assert manifest["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        assert manifest["meta"]["k"] == 7
        assert sorted(arrays) == ["logw", "states"]
        for name, ref in sample_arrays().items():
            np.testing.assert_array_equal(arrays[name], ref)
            assert arrays[name].dtype == ref.dtype

    def test_manifest_member_embedded_in_npz(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        with zipfile.ZipFile(path) as zf:
            names = zf.namelist()
            assert MANIFEST_MEMBER in names
            assert "states.npy" in names and "logw.npy" in names
            manifest = json.loads(zf.read(MANIFEST_MEMBER))
        assert manifest["format"] == "esthera-checkpoint"
        assert manifest["arrays"] == ["logw", "states"]
        assert "content_hash" in manifest and "git_sha" in manifest

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            read_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_read_manifest_alone(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path, meta={"backend": "x", "k": 3})
        assert read_manifest(str(path))["meta"]["k"] == 3


class TestAtomicity:
    def test_rewrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path, meta={"k": 1})
        write_sample(path, meta={"k": 2})
        assert read_manifest(str(path))["meta"]["k"] == 2
        # no staging files left behind
        assert os.listdir(tmp_path) == ["run.ckpt"]

    def test_interrupted_write_preserves_previous_checkpoint(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path, meta={"k": 1})
        out = write_checkpoint(str(path), sample_arrays(), {"k": 2},
                               interrupt_write=True)
        assert out is None
        # the simulated SIGKILL left a torn staging file, not a torn target
        assert read_manifest(str(path))["meta"]["k"] == 1
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert len(leftovers) == 1

    def test_interrupted_first_write_leaves_no_target(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_checkpoint(str(path), sample_arrays(), {"k": 0},
                         interrupt_write=True)
        assert not path.exists()


class TestIntegrity:
    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        n = corrupt_checkpoint_file(str(path), np.random.default_rng(0),
                                    mode="corrupt", fraction=0.02)
        assert n >= 1
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(str(path))

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        assert corrupt_checkpoint_file(str(path), np.random.default_rng(0),
                                       mode="truncate") > 0
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(str(path))

    def test_corrupt_mode_validation(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        with pytest.raises(ValueError):
            corrupt_checkpoint_file(str(path), np.random.default_rng(0), mode="melt")

    def test_verify_false_skips_hash_check(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        # hand-tamper the manifest's hash: verify=True must fail, False must not
        with zipfile.ZipFile(path) as zf:
            manifest = json.loads(zf.read(MANIFEST_MEMBER))
            members = {n: zf.read(n) for n in zf.namelist() if n != MANIFEST_MEMBER}
        manifest["content_hash"] = "0" * 64
        with zipfile.ZipFile(path, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
            zf.writestr(MANIFEST_MEMBER, json.dumps(manifest))
        with pytest.raises(CheckpointCorruptError, match="hash mismatch"):
            read_checkpoint(str(path))
        arrays, _ = read_checkpoint(str(path), verify=False)
        np.testing.assert_array_equal(arrays["logw"], sample_arrays()["logw"])

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(CheckpointCorruptError):
            read_manifest(str(path))


class TestSchemaPolicy:
    def _rewrite_manifest(self, path, **patch):
        with zipfile.ZipFile(path) as zf:
            manifest = json.loads(zf.read(MANIFEST_MEMBER))
            members = {n: zf.read(n) for n in zf.namelist() if n != MANIFEST_MEMBER}
        manifest.update(patch)
        with zipfile.ZipFile(path, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
            zf.writestr(MANIFEST_MEMBER, json.dumps(manifest))

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        self._rewrite_manifest(path, schema_version=CHECKPOINT_SCHEMA_VERSION + 1)
        with pytest.raises(CheckpointError, match="schema version"):
            read_manifest(str(path))

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        write_sample(path)
        self._rewrite_manifest(path, format="some-other-tool")
        with pytest.raises(CheckpointError, match="format"):
            read_manifest(str(path))
