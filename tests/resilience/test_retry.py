"""The shared retry primitives: backoff windows, deadlines, policy validation."""

import pytest

from repro.resilience import Backoff, Deadline, RetryPolicy
from repro.resilience.retry import POLL_FOREVER_WINDOW


class TestBackoff:
    def test_windows_double_and_sum_to_timeout(self):
        w = Backoff(timeout=7.0, max_retries=3).windows()
        assert w == (1.0, 2.0, 4.0)  # 7 * 2**i / (2**3 - 1)
        assert sum(w) == pytest.approx(7.0)

    def test_single_window(self):
        assert Backoff(timeout=5.0, max_retries=1).windows() == (5.0,)

    def test_unbounded_schedule(self):
        assert Backoff(timeout=None).windows() is None

    def test_windows_sum_exactly_for_any_retry_count(self):
        for n in (1, 2, 3, 5, 8):
            w = Backoff(timeout=13.0, max_retries=n).windows()
            assert len(w) == n
            assert sum(w) == pytest.approx(13.0)
            # strictly doubling
            for a, b in zip(w, w[1:]):
                assert b == pytest.approx(2 * a)


class TestDeadline:
    def test_retry_then_timeout(self):
        dl = Deadline((1.0, 2.0, 4.0), now=100.0)
        assert not dl.due(100.5)
        assert dl.due(101.0)
        assert dl.expire(101.0) == "retry"
        assert dl.due_at == pytest.approx(103.0)  # next window is 2 s
        assert dl.expire(103.0) == "retry"
        assert dl.due_at == pytest.approx(107.0)
        assert dl.expire(107.0) == "timeout"

    def test_remaining_clamps_at_zero(self):
        dl = Deadline((1.0,), now=0.0)
        assert dl.remaining(0.25) == pytest.approx(0.75)
        assert dl.remaining(99.0) == 0.0

    def test_unbounded_deadline_polls_forever(self):
        dl = Deadline(None, now=0.0)
        assert dl.due_at == pytest.approx(POLL_FOREVER_WINDOW)
        for i in range(10):
            assert dl.expire(float(i)) == "poll"
        assert dl.due_at == pytest.approx(9.0 + POLL_FOREVER_WINDOW)


class TestRetryPolicy:
    def test_defaults_and_deadline_minting(self):
        pol = RetryPolicy()
        assert pol.timeout == 30.0 and pol.max_retries == 3
        dl = pol.deadline(0.0)
        assert dl.due_at == pytest.approx(pol.windows()[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises((ValueError, TypeError)):
            RetryPolicy(max_retries=0)

    def test_none_timeout_is_poll_forever(self):
        pol = RetryPolicy(timeout=None)
        assert pol.windows() is None
        assert pol.deadline(0.0).expire(5.0) == "poll"

    def test_policy_is_immutable(self):
        pol = RetryPolicy(timeout=2.0)
        with pytest.raises(AttributeError):
            pol.timeout = 5.0
