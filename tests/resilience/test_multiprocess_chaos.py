"""Chaos tests: the multiprocess backend under injected faults.

These exercise the acceptance contract of the resilience subsystem:

- a killed worker block degrades accuracy gracefully (bounded RMSE blowup)
  instead of hanging the master,
- a hung worker trips the recv deadline and surfaces a typed
  ``WorkerTimeoutError`` (or is healed around),
- NaN-poisoned weights never reach the global estimate,
- a worker-side exception arrives as a structured remote traceback,
- ``close()`` never hangs, whatever state the workers died in.
"""

import time

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig, run_filter
from repro.models import LinearGaussianModel, RobotArmModel, RobotArmParams, lemniscate, simulate_arm_tracking
from repro.prng import make_rng
from repro.resilience import (
    FaultPlan,
    NoLiveWorkersError,
    WorkerCrashedError,
    WorkerTimeoutError,
)


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MultiprocessDistributedParticleFilter(lg_model(), cfg(), on_failure="panic")
    with pytest.raises(ValueError):
        MultiprocessDistributedParticleFilter(lg_model(), cfg(), recv_timeout=-1.0)
    with pytest.raises((ValueError, TypeError)):
        MultiprocessDistributedParticleFilter(lg_model(), cfg(), max_retries=0)


def test_killed_worker_on_robot_arm_stays_within_3x_rmse():
    # Acceptance: seeded FaultPlan kills 1 of 4 workers mid-run on the
    # robot-arm model; all steps complete, the dead block is reported, and
    # RMSE stays within 3x of the fault-free run on the same seed.
    model = RobotArmModel(RobotArmParams(n_joints=3))
    pos, vel = lemniscate(30, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", 42))
    config = cfg(n_particles=32, n_filters=8, seed=11)

    with MultiprocessDistributedParticleFilter(model, config, n_workers=4,
                                               recv_timeout=30.0) as pf:
        clean = run_filter(pf, model, truth)

    plan = FaultPlan(seed=0).kill(worker=1, step=12)
    with MultiprocessDistributedParticleFilter(model, config, n_workers=4,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=30.0) as pf:
        chaos = run_filter(pf, model, truth)
        diag = pf.diagnostics()

    assert chaos.n_steps == truth.n_steps  # completed every step, no hang
    assert np.isfinite(chaos.estimates).all()
    assert diag["dead_workers"] == [1]
    assert diag["failures"][0]["kind"] == "crash"
    assert diag["dead_filters"] == [2, 3]  # worker 1's block
    assert chaos.mean_error(warmup=10) <= 3.0 * max(clean.mean_error(warmup=10), 1e-9)


def test_killed_worker_heals_topology_and_keeps_tracking():
    model = lg_model()
    truth = model.simulate(25, make_rng("numpy", seed=1))
    plan = FaultPlan(seed=0).kill(worker=1, step=8)
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=10.0) as pf:
        run = run_filter(pf, model, truth)
        states, logw = pf.gather_population()
        diag = pf.diagnostics()
    assert np.isfinite(run.estimates).all()
    assert run.mean_error(warmup=10) < 0.5
    # dead block's slots are NaN, survivors finite
    assert np.isnan(states[2:4]).all()
    assert np.isfinite(states[[0, 1, 4, 5, 6, 7]]).all()
    assert diag["live_workers"] == [0, 2, 3]


def test_killed_worker_raise_mode_surfaces_typed_error():
    model = lg_model()
    plan = FaultPlan(seed=0).kill(worker=0, step=2)
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="raise",
                                               recv_timeout=10.0)
    try:
        with pytest.raises(WorkerCrashedError) as exc_info:
            for k in range(5):
                pf.step(np.array([0.1]))
        assert exc_info.value.worker_id == 0
        assert exc_info.value.step == 2
    finally:
        pf.close()


def test_hung_worker_times_out_within_deadline_not_forever():
    # Acceptance: an injected sleep > deadline triggers the timeout path —
    # a typed WorkerTimeoutError, not an indefinite block.
    model = lg_model()
    plan = FaultPlan(seed=0).hang(worker=0, step=1, duration=120.0)
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="raise",
                                               recv_timeout=1.5)
    try:
        pf.step(np.array([0.1]))
        start = time.perf_counter()
        with pytest.raises(WorkerTimeoutError) as exc_info:
            pf.step(np.array([0.1]))
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # bounded by deadline + slack, nowhere near 120 s
        assert exc_info.value.worker_id == 0
        assert pf.report.timeouts == 1
    finally:
        start = time.perf_counter()
        pf.close()  # must not wait for the 120 s sleeper
        assert time.perf_counter() - start < 15.0


def test_hung_worker_healed_around():
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=2))
    plan = FaultPlan(seed=0).hang(worker=0, step=2, duration=120.0)
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=1.5) as pf:
        run = run_filter(pf, model, truth)
        diag = pf.diagnostics()
    assert np.isfinite(run.estimates).all()
    assert diag["failures"][0]["kind"] == "timeout"
    assert diag["dead_workers"] == [0]


def test_delay_below_deadline_is_survived_without_failure():
    model = lg_model()
    truth = model.simulate(10, make_rng("numpy", seed=3))
    plan = FaultPlan(seed=0).delay(worker=0, step=2, duration=0.3)
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="raise",
                                               recv_timeout=10.0) as pf:
        run = run_filter(pf, model, truth)
        assert pf.report.n_failures == 0
    assert np.isfinite(run.estimates).all()


def test_nan_poisoned_weights_never_reach_global_estimate():
    # Acceptance: NaN-poisoned weights in one sub-filter block must leave
    # the global estimate finite every single round.
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=4))
    plan = FaultPlan(seed=0)
    for k in range(3, 12):
        plan.poison_weights(worker=0, step=k, value="nan")
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=10.0) as pf:
        for k in range(truth.n_steps):
            est = pf.step(truth.measurements[k])
            assert np.isfinite(est).all(), f"non-finite estimate at round {k}"
        diag = pf.diagnostics()
    assert diag["rejuvenated_filters"] > 0
    assert diag["dead_workers"] == []  # poisoning is healed, not fatal


def test_neginf_poison_and_max_weight_estimator():
    model = lg_model()
    plan = FaultPlan(seed=0).poison_weights(worker=1, step=2, value="-inf")
    with MultiprocessDistributedParticleFilter(model, cfg(estimator="max_weight"),
                                               n_workers=2, fault_plan=plan,
                                               on_failure="heal", recv_timeout=10.0) as pf:
        for k in range(6):
            est = pf.step(np.array([0.1]))
            assert np.isfinite(est).all()


def test_corrupted_exchange_particles_are_quarantined():
    model = lg_model()
    plan = FaultPlan(seed=0).corrupt_exchange(worker=0, step=3, fraction=1.0)
    with MultiprocessDistributedParticleFilter(model, cfg(n_exchange=4), n_workers=2,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=10.0) as pf:
        for k in range(8):
            est = pf.step(np.array([0.1]))
            assert np.isfinite(est).all()
        states, logw = pf.gather_population()
    # corrupt particles were never resampled into any population
    assert np.isfinite(states).all()


def test_worker_exception_reported_as_remote_traceback():
    class BoomModel(LinearGaussianModel):
        def log_likelihood(self, states, measurement, k):
            if k == 2:
                raise RuntimeError("boom at k=2")
            return super().log_likelihood(states, measurement, k)

    model = BoomModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               recv_timeout=10.0)
    try:
        with pytest.raises(WorkerCrashedError) as exc_info:
            for k in range(5):
                pf.step(np.array([0.1]))
        assert "boom at k=2" in (exc_info.value.remote_traceback or "")
    finally:
        pf.close()


def test_simultaneous_worker_exceptions_exhaust_quorum():
    # A model bug fires in *every* worker at the same round: heal mode
    # declares them all dead and the step fails loudly with
    # NoLiveWorkersError — never a silent hang.
    class BoomModel(LinearGaussianModel):
        def log_likelihood(self, states, measurement, k):
            if k == 2:
                raise RuntimeError("boom everywhere")
            return super().log_likelihood(states, measurement, k)

    model = BoomModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4,
                                               on_failure="heal", recv_timeout=10.0)
    try:
        with pytest.raises(NoLiveWorkersError):
            for k in range(5):
                pf.step(np.array([0.1]))
        diag = pf.diagnostics()
        assert diag["n_failures"] == 4
        assert all(f["kind"] == "error" for f in diag["failures"])
    finally:
        pf.close()


def test_all_workers_dead_raises_no_live_workers():
    model = lg_model()
    plan = FaultPlan(seed=0).kill(worker=0, step=1).kill(worker=1, step=1)
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=10.0)
    try:
        pf.step(np.array([0.1]))
        with pytest.raises(NoLiveWorkersError):
            for k in range(3):
                pf.step(np.array([0.1]))
    finally:
        pf.close()


def test_respawn_rebuilds_block_from_donors():
    model = lg_model()
    truth = model.simulate(25, make_rng("numpy", seed=5))
    plan = FaultPlan(seed=0).kill(worker=1, step=6)
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4,
                                               fault_plan=plan, on_failure="heal",
                                               respawn_dead=True, recv_timeout=10.0) as pf:
        run = run_filter(pf, model, truth)
        diag = pf.diagnostics()
        states, logw = pf.gather_population()
    assert diag["respawns"] == 1
    assert diag["dead_filters"] == []  # revived and restitched
    assert np.isfinite(states).all()  # full population restored
    assert np.isfinite(run.estimates).all()
    assert run.mean_error(warmup=10) < 0.5


def test_close_after_crash_does_not_hang_and_is_idempotent():
    model = lg_model()
    plan = FaultPlan(seed=0).kill(worker=0, step=1)
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=5.0)
    for k in range(3):
        pf.step(np.array([0.1]))
    start = time.perf_counter()
    pf.close()
    pf.close()
    assert time.perf_counter() - start < 10.0
    assert pf.dead_workers == ()


def test_random_chaos_plan_survives():
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=6))
    plan = FaultPlan.random(seed=13, n_workers=4, n_steps=20,
                            p_kill=0.01, p_poison=0.05, p_corrupt=0.05, max_kills=1)
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4,
                                               fault_plan=plan, on_failure="heal",
                                               recv_timeout=10.0) as pf:
        run = run_filter(pf, model, truth)
    assert np.isfinite(run.estimates).all()
