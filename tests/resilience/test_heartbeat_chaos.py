"""Heartbeat supervision under chaos: detection *during* compute phases.

Acceptance: a worker SIGKILLed during sampling is declared dead by the
heartbeat detector well before the (deliberately huge) gather deadline
would fire, and the run completes via respawn with the escalation recorded.
A hung worker is classified as a heartbeat timeout (process still alive);
a slow-heartbeat fault exercises the detector on a worker that was healthy
all along.
"""

import time

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience import FaultPlan, Supervisor

#: huge on purpose: if detection relied on the gather deadline, the chaos
#: steps below would take ≥ the first backoff window (60 * 1/7 ≈ 8.6 s).
RECV_TIMEOUT = 60.0
FIRST_WINDOW = RECV_TIMEOUT / 7.0


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, topology="ring", n_exchange=1,
                estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def measurements(n_steps, seed=4):
    model = lg_model()
    truth = model.simulate(n_steps, make_rng("numpy", seed=seed))
    return np.asarray(truth.measurements, dtype=np.float64)


@pytest.fixture
def no_eof_transport(monkeypatch):
    """Disable the local-pipe EOF shortcut: keep the worker-side pipe ends
    open in the master, the way a remote/socket transport would never see an
    EOF from a SIGKILLed peer. Heartbeats (or the deadline) must detect it."""
    from repro.backends import transport as tmod

    monkeypatch.setattr(tmod.PipeMasterChannel, "after_start", lambda self: None)
    monkeypatch.setattr(tmod.ShmMasterChannel, "after_start", lambda self: None)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_sigkill_mid_sampling_detected_by_heartbeat_before_deadline(
        transport, no_eof_transport):
    model, meas = lg_model(), measurements(8)
    plan = FaultPlan(seed=0).kill(worker=1, step=2)
    sup = Supervisor(beat_timeout=0.2, max_missed=2)
    with MultiprocessDistributedParticleFilter(
            model, cfg(), n_workers=2, transport=transport, fault_plan=plan,
            on_failure="heal", respawn_dead=True, recv_timeout=RECV_TIMEOUT,
            supervisor=sup) as pf:
        t0 = time.perf_counter()
        est = np.stack([pf.step(meas[k]) for k in range(meas.shape[0])])
        elapsed = time.perf_counter() - t0
        report = pf.report

    # detection latency ~ beat_timeout * max_missed = 0.4 s, nowhere near
    # the 8.6 s first gather window — the whole 8-step run must beat it.
    assert elapsed < FIRST_WINDOW
    assert np.isfinite(est).all() and est.shape[0] == meas.shape[0]
    assert report.respawns == 1
    assert report.failures[0].kind == "crash"  # corpse found at declaration
    assert report.escalations.get("heal") == 1
    assert report.escalations.get("respawn") == 1
    kinds = [e.kind for e in sup.events]
    assert "declared_dead" in kinds
    assert "escalate_respawn" in kinds
    assert kinds.index("declared_dead") < kinds.index("escalate_respawn")


def test_hung_worker_classified_as_heartbeat_timeout():
    model, meas = lg_model(), measurements(6)
    plan = FaultPlan(seed=0).hang(worker=1, step=2, duration=3600.0)
    sup = Supervisor(beat_timeout=0.2, max_missed=2)
    with MultiprocessDistributedParticleFilter(
            model, cfg(), n_workers=2, fault_plan=plan, on_failure="heal",
            recv_timeout=RECV_TIMEOUT, supervisor=sup) as pf:
        t0 = time.perf_counter()
        est = np.stack([pf.step(meas[k]) for k in range(meas.shape[0])])
        elapsed = time.perf_counter() - t0
        report = pf.report

    assert elapsed < FIRST_WINDOW
    assert np.isfinite(est).all()
    # the process is alive (hung), so the failure is a heartbeat timeout,
    # not a crash — that classification is the supervisor's whole point.
    assert report.failures[0].kind == "heartbeat"
    assert report.heartbeat_failures >= 1
    assert report.heartbeat_misses >= sup.max_missed


def test_slow_heartbeat_on_healthy_worker_records_misses_not_failures():
    # The worker computes normally but mutes its beats for one round (and a
    # delay fault stretches that round past several beat windows). The
    # detector must log misses and a recovery — and nothing must die.
    model, meas = lg_model(), measurements(5)
    plan = (FaultPlan(seed=0)
            .slow_heartbeat(worker=1, step=2)
            .delay(worker=1, step=2, duration=0.8))
    sup = Supervisor(beat_timeout=0.15, max_missed=100)
    with MultiprocessDistributedParticleFilter(
            model, cfg(), n_workers=2, fault_plan=plan, on_failure="heal",
            recv_timeout=RECV_TIMEOUT, supervisor=sup) as pf:
        est = np.stack([pf.step(meas[k]) for k in range(meas.shape[0])])
        report = pf.report

    assert np.isfinite(est).all()
    assert report.n_failures == 0 and pf.dead_workers == ()
    assert report.heartbeat_misses >= 1
    assert report.heartbeat_failures == 0
    assert sup.misses >= 1
    assert all(e.kind in ("beat_miss", "recovered") for e in sup.events)


def test_supervision_disabled_has_no_heartbeat_counters():
    # supervisor=None must leave the whole heartbeat plumbing dormant: no
    # beats, no misses, no events — the perf-gate configuration.
    model, meas = lg_model(), measurements(4)
    with MultiprocessDistributedParticleFilter(
            model, cfg(), n_workers=2) as pf:
        np.stack([pf.step(meas[k]) for k in range(meas.shape[0])])
        assert pf.report.heartbeat_misses == 0
        assert pf.report.heartbeat_failures == 0
        for chan in pf._chans:
            assert chan.heartbeat() in (0, -1)  # counter never advanced
