"""Numerical self-healing: degenerate-weight guards and rejuvenation.

Covers the satellite requirement: the existing degenerate-weight guards
(``repro/utils/arrays.py`` and ``repro/core/estimator.py``) must survive
all-NaN weights, all ``-inf`` log-weights and single-particle sub-filters
without producing NaN estimates — plus the new sanitize/rescue helpers and
the core filter's neighbour rejuvenation.
"""

import numpy as np

from repro.core import (
    DistributedFilterConfig,
    DistributedParticleFilter,
    local_estimates,
    max_weight_estimate,
    weighted_mean_estimate,
)
from repro.models import LinearGaussianModel
from repro.utils import (
    degenerate_rows,
    normalize_weights,
    rescue_degenerate_rows,
    sanitize_log_weights,
)


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


# -- existing guard: normalize_weights -----------------------------------------

def test_normalize_weights_all_nan_row_falls_back_to_uniform():
    w = np.array([[np.nan, np.nan, np.nan], [1.0, 1.0, 2.0]])
    out = normalize_weights(w)
    np.testing.assert_allclose(out[0], 1.0 / 3)
    np.testing.assert_allclose(out[1], [0.25, 0.25, 0.5])


def test_normalize_weights_all_zero_and_inf_total():
    out = normalize_weights(np.zeros((1, 4)))
    np.testing.assert_allclose(out, 0.25)
    out = normalize_weights(np.array([[np.inf, 1.0]]))
    np.testing.assert_allclose(out, 0.5)


def test_normalize_weights_single_particle():
    np.testing.assert_allclose(normalize_weights(np.array([[5.0]])), 1.0)
    np.testing.assert_allclose(normalize_weights(np.array([[0.0]])), 1.0)


# -- existing guard: estimators -------------------------------------------------

def test_max_weight_all_nan_weights_stays_finite():
    states = np.random.default_rng(0).normal(size=(3, 4, 2))
    lw = np.full((3, 4), np.nan)
    est = max_weight_estimate(states, lw)
    assert np.isfinite(est).all()


def test_max_weight_skips_nan_slot():
    states = np.arange(8, dtype=float).reshape(1, 4, 2)
    lw = np.array([[np.nan, -1.0, -5.0, np.nan]])
    np.testing.assert_array_equal(max_weight_estimate(states, lw), states[0, 1])


def test_max_weight_skips_nonfinite_states():
    states = np.ones((1, 3, 2))
    states[0, 0] = np.nan
    lw = np.array([[100.0, 0.0, -1.0]])  # best weight sits on a corrupt particle
    np.testing.assert_array_equal(max_weight_estimate(states, lw), states[0, 1])


def test_weighted_mean_all_neginf_weights_stays_finite():
    states = np.random.default_rng(1).normal(size=(2, 5, 3))
    lw = np.full((2, 5), -np.inf)
    est = weighted_mean_estimate(states, lw)
    assert np.isfinite(est).all()
    np.testing.assert_allclose(est, states.reshape(-1, 3).mean(axis=0))


def test_weighted_mean_zero_weight_nan_state_does_not_poison():
    states = np.array([[[1.0], [np.nan]]])
    lw = np.array([[0.0, -np.inf]])
    np.testing.assert_allclose(weighted_mean_estimate(states, lw), [1.0])


def test_weighted_mean_single_particle_subfilters():
    states = np.array([[[2.0]], [[4.0]]])  # (F=2, m=1, d=1)
    lw = np.zeros((2, 1))
    np.testing.assert_allclose(weighted_mean_estimate(states, lw), [3.0])
    est = weighted_mean_estimate(states, np.full((2, 1), -np.inf))
    assert np.isfinite(est).all()


def test_estimators_total_corruption_returns_zeros_not_nan():
    states = np.full((1, 3, 2), np.nan)
    lw = np.full((1, 3), np.nan)
    np.testing.assert_array_equal(max_weight_estimate(states, lw), np.zeros(2))
    np.testing.assert_array_equal(weighted_mean_estimate(states, lw), np.zeros(2))


def test_local_estimates_degenerate_rows_finite():
    states = np.random.default_rng(2).normal(size=(3, 4, 2))
    lw = np.zeros((3, 4))
    lw[1] = -np.inf
    lw[2] = np.nan
    for kind in ("max_weight", "weighted_mean"):
        assert np.isfinite(local_estimates(states, lw, kind)).all()


# -- new helpers -----------------------------------------------------------------

def test_sanitize_log_weights_masks_nan_and_corrupt_states():
    lw = np.array([[0.0, np.nan, -1.0]])
    states = np.ones((1, 3, 2))
    states[0, 2, 1] = np.inf
    n = sanitize_log_weights(lw, states)
    assert n == 2
    np.testing.assert_array_equal(lw, [[0.0, -np.inf, -np.inf]])
    # idempotent
    assert sanitize_log_weights(lw, states) == 0


def test_degenerate_rows_mask():
    lw = np.array([[0.0, -np.inf], [-np.inf, -np.inf], [np.nan, np.nan]])
    sanitize_log_weights(lw)
    np.testing.assert_array_equal(degenerate_rows(lw), [False, True, True])


def test_rescue_degenerate_rows_uniform_reset():
    lw = np.array([[-np.inf, -np.inf], [0.0, -1.0]])
    assert rescue_degenerate_rows(lw) == 1
    np.testing.assert_array_equal(lw[0], [0.0, 0.0])
    np.testing.assert_array_equal(lw[1], [0.0, -1.0])


def test_rescue_degenerate_rows_respects_corrupt_states():
    lw = np.full((1, 3), -np.inf)
    states = np.ones((1, 3, 1))
    states[0, 1] = np.nan
    assert rescue_degenerate_rows(lw, states) == 1
    np.testing.assert_array_equal(lw[0], [0.0, -np.inf, 0.0])


def test_rescue_totally_corrupt_row_still_uniform():
    lw = np.full((1, 2), -np.inf)
    states = np.full((1, 2, 1), np.nan)
    assert rescue_degenerate_rows(lw, states) == 1
    np.testing.assert_array_equal(lw[0], [0.0, 0.0])


# -- core filter self-healing ------------------------------------------------------

def test_filter_heals_nan_poisoned_subfilter_from_neighbour():
    pf = DistributedParticleFilter(
        lg_model(),
        DistributedFilterConfig(n_particles=16, n_filters=8, estimator="weighted_mean", seed=0),
    )
    pf.initialize()
    pf.step(np.array([0.1]))
    pf.log_weights[3] = np.nan  # poison one sub-filter
    est = pf.step(np.array([0.2]))
    assert np.isfinite(est).all()
    assert np.isfinite(pf.states).all()
    assert pf.heal_counters["rejuvenated"] >= 1
    # and the filter keeps tracking afterwards
    for _ in range(5):
        est = pf.step(np.array([0.2]))
    assert np.isfinite(est).all()


def test_filter_heals_corrupt_particle_states():
    pf = DistributedParticleFilter(
        lg_model(),
        DistributedFilterConfig(n_particles=16, n_filters=8, estimator="max_weight", seed=1),
    )
    pf.initialize()
    pf.step(np.array([0.0]))
    pf.states[2, :4] = np.nan  # corrupt some particles
    est = pf.step(np.array([0.1]))
    assert np.isfinite(est).all()
    assert np.isfinite(pf.states).all()  # resampling never selected the corrupt ones
    assert pf.heal_counters["sanitized"] >= 4


def test_self_heal_off_is_bit_identical_on_healthy_run():
    model = lg_model()
    def run(self_heal):
        pf = DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=16, n_filters=8, seed=7, self_heal=self_heal),
        )
        return np.stack([pf.step(np.array([0.1])) for _ in range(5)])
    np.testing.assert_array_equal(run(True), run(False))


def test_single_particle_subfilters_survive_poison():
    pf = DistributedParticleFilter(
        lg_model(),
        DistributedFilterConfig(n_particles=1, n_filters=8, n_exchange=1,
                                estimator="weighted_mean", seed=2),
    )
    pf.initialize()
    pf.log_weights[:] = np.nan
    est = pf.step(np.array([0.1]))
    assert np.isfinite(est).all()
    assert np.isfinite(pf.states).all()
