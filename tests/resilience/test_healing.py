"""Topology healing: rerouting, bridging, donors, revival."""

import numpy as np
import pytest

from repro.kernels.exchange import mask_dead_sources
from repro.resilience import TopologyHealer
from repro.topology import make_topology


def test_ring_heals_back_into_a_ring():
    h = TopologyHealer(make_topology("ring", 8))
    h.mark_dead([3])
    table, mask = h.neighbor_table()
    # dead row fully masked
    assert not mask[3].any()
    # 2 and 4 (the dead node's neighbours) are now each other's neighbours
    assert 4 in table[2][mask[2]]
    assert 2 in table[4][mask[4]]
    # no live row references the dead id
    assert (table[mask] != 3).all()
    # the healed topology is still a valid symmetric graph
    h.healed_topology().validate()


def test_adjacent_deaths_bridge_through():
    h = TopologyHealer(make_topology("ring", 8))
    h.mark_dead([2, 3, 4])
    table, mask = h.neighbor_table()
    # survivors 1 and 5 bridge across the dead run; ring stays connected
    assert 5 in table[1][mask[1]]
    assert 1 in table[5][mask[5]]
    import networkx as nx
    g = h.healed_topology().as_networkx()
    live = [i for i in range(8) if i not in (2, 3, 4)]
    assert nx.is_connected(g.subgraph(live))


def test_no_bridge_mode_drops_edges_only():
    h = TopologyHealer(make_topology("ring", 8), bridge=False)
    h.mark_dead([3])
    table, mask = h.neighbor_table()
    assert not mask[3].any()
    assert 4 not in table[2][mask[2]]


def test_mark_dead_is_incremental_and_idempotent():
    h = TopologyHealer(make_topology("ring", 8))
    assert h.mark_dead([1]) == [1]
    assert h.mark_dead([1]) == []  # already dead
    assert h.mark_dead([2, 5]) == [2, 5]
    assert h.dead == (1, 2, 5)
    assert h.n_dead == 3
    assert not h.is_alive(5) and h.is_alive(0)


def test_mark_dead_out_of_range():
    h = TopologyHealer(make_topology("ring", 4))
    with pytest.raises(ValueError):
        h.mark_dead([4])


def test_revive_restores_original_edges():
    topo = make_topology("ring", 8)
    h = TopologyHealer(topo)
    orig_table = topo.neighbor_table().copy()
    h.mark_dead([3, 6])
    h.revive([3])
    table, mask = h.neighbor_table()
    assert 3 in table[2][mask[2]] and 3 in table[4][mask[4]]
    h.revive([6])
    np.testing.assert_array_equal(h.neighbor_table()[0], orig_table)
    assert h.n_dead == 0


def test_donor_map_prefers_nearest_live_neighbour():
    h = TopologyHealer(make_topology("ring", 8))
    h.mark_dead([3])
    assert h.donor_map() == {3: 2}  # both 2 and 4 are one hop; smallest id wins
    h.mark_dead([2])
    donors = h.donor_map()
    assert donors[2] == 1
    assert donors[3] in (1, 4)  # nearest live around the dead run


def test_donor_map_on_torus():
    h = TopologyHealer(make_topology("torus", 16))
    h.mark_dead([5])
    donor = h.donor_map()[5]
    assert donor in h.topology.neighbors(5)


def test_alive_vector():
    h = TopologyHealer(make_topology("ring", 4))
    h.mark_dead([1])
    np.testing.assert_array_equal(h.alive, [True, False, True, True])


def test_healed_view_validation():
    topo = make_topology("ring", 4)
    with pytest.raises(ValueError):
        topo.healed_view([7])


def test_mask_dead_sources_kernel():
    topo = make_topology("ring", 6)
    table = topo.neighbor_table()
    mask = table >= 0
    alive = np.array([True, True, False, True, True, True])
    out = mask_dead_sources(table, mask, alive)
    # receiver 2 is dead: row fully masked
    assert not out[2].any()
    # slots sourcing from 2 are masked for its neighbours
    assert not out[1][table[1] == 2].any()
    assert not out[3][table[3] == 2].any()
    # unrelated edges untouched
    assert out[0].all()
    with pytest.raises(ValueError):
        mask_dead_sources(table, mask, alive[:-1])
    with pytest.raises(ValueError):
        mask_dead_sources(table, mask[:, :1], alive)
