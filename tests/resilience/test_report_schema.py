"""``ResilienceReport.summary()`` schema pin + checkpoint roundtrip.

The summary record is consumed by the CLI's JSON export, the CI chaos-smoke
artifact, and — via ``from_summary`` — checkpoint restore. Its key set is a
contract: extend it deliberately (and update this pin), never accidentally.
"""

import json

from repro.resilience import ResilienceReport

EXPECTED_KEYS = {
    "n_failures",
    "dead_workers",
    "failures",
    "retries",
    "timeouts",
    "sanitized_particles",
    "rejuvenated_filters",
    "respawns",
    "segments_reclaimed",
    "heartbeat_misses",
    "heartbeat_failures",
    "checkpoints_saved",
    "checkpoints_restored",
    "escalations",
}


def populated_report():
    r = ResilienceReport()
    r.record_failure(step=3, worker_id=1, kind="crash", detail="boom",
                     filters=(2, 3))
    r.retries = 4
    r.timeouts = 1
    r.sanitized_particles = 7
    r.rejuvenated_filters = 2
    r.respawns = 1
    r.segments_reclaimed = 5
    r.heartbeat_misses = 6
    r.heartbeat_failures = 1
    r.checkpoints_saved = 2
    r.checkpoints_restored = 1
    r.record_escalation("heal")
    r.record_escalation("heal")
    r.record_escalation("respawn")
    return r


def test_summary_schema_frozen():
    assert set(populated_report().summary().keys()) == EXPECTED_KEYS
    assert set(ResilienceReport().summary().keys()) == EXPECTED_KEYS


def test_summary_is_json_ready():
    json.dumps(populated_report().summary())


def test_escalation_counters():
    s = populated_report().summary()
    assert s["escalations"] == {"heal": 2, "respawn": 1}
    assert s["heartbeat_misses"] == 6
    assert s["heartbeat_failures"] == 1
    assert s["checkpoints_saved"] == 2
    assert s["checkpoints_restored"] == 1


def test_from_summary_roundtrip():
    original = populated_report().summary()
    rebuilt = ResilienceReport.from_summary(original)
    assert rebuilt.summary() == original


def test_from_summary_tolerates_old_records():
    # a record written before the heartbeat/checkpoint counters existed
    old = {"n_failures": 0, "dead_workers": [], "failures": [],
           "retries": 2, "timeouts": 0, "sanitized_particles": 0,
           "rejuvenated_filters": 0, "respawns": 0, "segments_reclaimed": 0}
    rebuilt = ResilienceReport.from_summary(old)
    assert rebuilt.retries == 2
    assert rebuilt.heartbeat_misses == 0
    assert rebuilt.escalations == {}
    assert set(rebuilt.summary().keys()) == EXPECTED_KEYS
