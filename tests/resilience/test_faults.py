"""The fault-injection plan: deterministic, seeded, serializable."""

import numpy as np
import pytest

from repro.resilience import FAULT_KINDS, Fault, FaultPlan, corrupt_send_states, poison_log_weights


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("explode", 0, 0)
    with pytest.raises(ValueError):
        Fault("kill", -1, 0)
    with pytest.raises(ValueError):
        Fault("kill", 0, -1)
    with pytest.raises(ValueError):
        Fault("hang", 0, 0, duration=-1.0)
    with pytest.raises(ValueError):
        Fault("poison_nan", 0, 0, fraction=0.0)
    with pytest.raises(ValueError):
        Fault("poison_nan", 0, 0, fraction=1.5)


def test_builder_and_lookup():
    plan = (FaultPlan(seed=7)
            .kill(worker=1, step=10)
            .hang(worker=2, step=4, duration=60.0)
            .delay(worker=0, step=4, duration=0.01)
            .poison_weights(worker=0, step=3, value="nan")
            .poison_weights(worker=0, step=3, value="-inf")
            .corrupt_exchange(worker=1, step=5, fraction=0.5))
    assert len(plan) == 6
    assert plan.faults_for(1, 10)[0].kind == "kill"
    assert plan.faults_for(2, 4)[0].duration == 60.0
    kinds = [f.kind for f in plan.faults_for(0, 3)]
    assert kinds == ["poison_nan", "poison_neginf"]
    assert plan.faults_for(5, 5) == ()


def test_invalid_poison_value():
    with pytest.raises(ValueError):
        FaultPlan().poison_weights(0, 0, value="inf")


def test_serialization_roundtrip():
    plan = FaultPlan(seed=3).kill(0, 1).corrupt_exchange(1, 2, fraction=0.25)
    clone = FaultPlan.from_dicts(plan.to_dicts())
    assert clone.seed == 3
    assert clone.faults == plan.faults


def test_random_plan_is_reproducible_and_caps_kills():
    a = FaultPlan.random(9, n_workers=4, n_steps=50, p_kill=0.2, p_poison=0.1, max_kills=2)
    b = FaultPlan.random(9, n_workers=4, n_steps=50, p_kill=0.2, p_poison=0.1, max_kills=2)
    assert a.faults == b.faults
    assert sum(f.kind == "kill" for f in a) <= 2
    c = FaultPlan.random(10, n_workers=4, n_steps=50, p_kill=0.2, p_poison=0.1, max_kills=2)
    assert c.faults != a.faults


def test_poison_log_weights_deterministic():
    plan = FaultPlan(seed=5).poison_weights(worker=0, step=2, value="nan", fraction=0.5)
    lw1 = np.zeros((8, 4))
    lw2 = np.zeros((8, 4))
    n1 = poison_log_weights(plan, 0, 2, lw1)
    n2 = poison_log_weights(plan, 0, 2, lw2)
    assert n1 == n2 == 4
    np.testing.assert_array_equal(np.isnan(lw1), np.isnan(lw2))
    # other (worker, step) cells untouched
    lw3 = np.zeros((8, 4))
    assert poison_log_weights(plan, 1, 2, lw3) == 0
    assert not np.isnan(lw3).any()


def test_poison_neginf():
    plan = FaultPlan(seed=5).poison_weights(worker=0, step=0, value="-inf", fraction=1.0)
    lw = np.zeros((4, 3))
    poison_log_weights(plan, 0, 0, lw)
    assert np.isneginf(lw).all()


def test_corrupt_send_states():
    plan = FaultPlan(seed=1).corrupt_exchange(worker=0, step=0, fraction=1.0)
    states = np.ones((4, 2, 3))
    n = corrupt_send_states(plan, 0, 0, states)
    assert n == 8
    assert np.isnan(states).all()


def test_none_plan_is_noop():
    lw = np.zeros((2, 2))
    assert poison_log_weights(None, 0, 0, lw) == 0
    assert corrupt_send_states(None, 0, 0, np.ones((1, 1, 1))) == 0


def test_fault_kinds_frozen():
    assert set(FAULT_KINDS) == {
        "kill", "hang", "delay", "poison_nan", "poison_neginf",
        "corrupt_exchange", "slow_heartbeat",
        "ckpt_corrupt", "ckpt_truncate", "ckpt_partial_write",
    }
